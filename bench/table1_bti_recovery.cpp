// Reproduces Table I: "Summary of the BTI recovery test results for a
// 6-hour recovery following a 24-hour constant accelerated stress with
// high voltage and temperature."
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/accelerated_test.hpp"

int main() {
  using namespace dh;
  std::printf(
      "== Table I: BTI recovery after 24h accelerated stress, 6h recovery "
      "==\n\n");

  const auto rows = core::run_table1();
  Table table({"Test Case", "Recovery Condition", "Measurement", "Model",
               "Paper Meas.", "Paper Model"});
  for (const auto& r : rows) {
    char cond[64];
    std::snprintf(cond, sizeof cond, "%.0fC and %.1fV",
                  r.condition.temperature.value(),
                  r.condition.gate_bias.value());
    table.add_row({r.label, cond, Table::pct(r.measured_fraction, 2),
                   Table::pct(r.model_fraction, 2),
                   Table::pct(r.paper_measured, 2),
                   Table::pct(r.paper_model, 2)});
  }
  table.print(std::cout);

  // Section III-C headline: "72.4% of the wearout is recovered within only
  // 1/4 of the stress time".
  std::printf(
      "\nheadline check: condition No. 4 recovers %.1f%% in 1/4 of the "
      "stress time (paper: 72.4%%)\n",
      rows[3].model_fraction * 100.0);

  // Recovery-time sweep at condition No. 4 (extra series: how the deep
  // recovery saturates — the >27%% permanent component).
  std::printf("\nrecovery-time sweep at No. 4 (110C, -0.3V):\n");
  using namespace dh::device;
  for (const double h : {0.5, 1.0, 2.0, 4.0, 6.0, 12.0, 24.0}) {
    auto model = BtiModel::paper_calibrated();
    const auto out = run_stress_recovery(
        model, paper_conditions::accelerated_stress(), table1_stress_time(),
        paper_conditions::recovery_no4(), hours(h));
    std::printf("  %5.1f h -> %5.1f%% recovered\n", h,
                out.recovery_fraction() * 100.0);
  }
  std::printf("(saturates well below 100%%: the permanent component that\n"
              " one-shot recovery cannot remove — motivating Fig. 4)\n");
  return 0;
}
