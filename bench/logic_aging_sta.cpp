// Combinational-logic aging with static timing analysis: compares the
// prior-work mitigation line the paper cites (signal-probability
// rebalancing / input-vector control — Penelope [15], GNOMO [14]) against
// the paper's active recovery, on the ISCAS c17 benchmark circuit with a
// buffered output chain.
#include <cstdio>
#include <iostream>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/time_series.hpp"
#include "logic/logic_netlist.hpp"

int main() {
  using namespace dh;
  using namespace dh::logic;

  std::printf("== Logic aging STA: c17+, 85 C, 3 years, 50%% duty ==\n\n");

  struct Strategy {
    const char* name;
    LogicMode idle_mode;
    bool use_best_vector;
  };
  const Strategy strategies[] = {
      {"clock-gated idle w/ random data", LogicMode::kOperating, false},
      {"idle parked at all-ones vector", LogicMode::kIdleVector, false},
      {"idle parked at optimized vector (IVC)", LogicMode::kIdleVector,
       true},
      {"idle in active recovery (deep healing)", LogicMode::kActiveRecovery,
       false},
  };

  Table table({"strategy", "delay deg @1y", "delay deg @3y",
               "worst dVth @3y", "needed timing margin"});
  // Each strategy ages its own netlist (deterministic, no shared state):
  // run the four 3-year sweeps concurrently over the pool.
  struct StrategyResult {
    std::vector<std::string> row;
    TimeSeries trace;
  };
  auto results = parallel_map(
      std::size(strategies), [&](std::size_t si) {
        const auto& s = strategies[si];
        LogicNetlist net = make_c17_plus();
        const auto best = net.best_idle_vector();
        const std::vector<bool> ones(net.input_count(), true);
        double deg_1y = 0.0;
        double guardband = 0.0;
        TimeSeries trace{s.name, "%"};
        for (int d = 0; d < 3 * 365; ++d) {
          if (s.idle_mode == LogicMode::kOperating) {
            net.age(LogicMode::kOperating, Celsius{85.0}, hours(24.0));
          } else {
            net.age(LogicMode::kOperating, Celsius{85.0}, hours(12.0));
            net.age(s.idle_mode, Celsius{85.0}, hours(12.0),
                    s.use_best_vector ? best : ones);
          }
          const double deg = net.delay_degradation();
          guardband = std::max(guardband, deg);
          if (d == 364) deg_1y = deg;
          if (d % 30 == 0) trace.append(days(d), deg * 100.0);
        }
        StrategyResult res;
        res.row = {s.name, Table::pct(deg_1y, 2),
                   Table::pct(net.delay_degradation(), 2),
                   Table::num(net.worst_dvth().value() * 1e3, 1) + " mV",
                   Table::pct(guardband, 2)};
        res.trace = std::move(trace);
        return res;
      });
  std::vector<TimeSeries> traces;
  for (auto& r : results) {
    table.add_row(r.row);
    traces.push_back(std::move(r.trace));
  }
  table.print(std::cout);

  std::printf("\ncritical-path degradation vs time (%%):\n");
  std::printf("%8s", "day");
  for (const auto& t : traces) std::printf(" %30.30s", t.name().c_str());
  std::printf("\n");
  for (int day = 90; day <= 1080; day += 90) {
    std::printf("%8d", day);
    for (const auto& t : traces) {
      std::printf(" %30.2f", t.sample(days(day)));
    }
    std::printf("\n");
  }

  std::printf(
      "\nInput-vector control helps only the gates the vector happens to\n"
      "relax; active recovery (the assist circuitry's BTI mode) heals\n"
      "every device and needs no favourable vector — the paper's point\n"
      "about fixing wearout 'in a fundamental way'.\n");
  return 0;
}
