// Reproduces the quantitative content of Fig. 11: the global PDN grid
// (wide, thick top metals) is robust against EM while the local grids
// (thin lower metals, high current density) are the hazard the assist
// circuitry must protect.
//
// The local-mesh dimensions are configurable — `--rows=N` / `--cols=N`
// on the command line, or the DH_PDN_ROWS / DH_PDN_COLS environment
// variables (CLI wins) — so the same binary can exercise the banded
// direct path (default 8x8) or the IC(0)-CG path (e.g. --rows=64
// --cols=64) of the sparse solver engine.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "pdn/aging_pdn.hpp"

namespace {

std::size_t dim_option(int argc, char** argv, const char* cli_prefix,
                       const char* env_name, std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], cli_prefix, std::strlen(cli_prefix)) == 0) {
      const long v = std::atol(argv[i] + std::strlen(cli_prefix));
      if (v > 0) return static_cast<std::size_t>(v);
      std::fprintf(stderr, "ignoring %s (need a positive integer)\n",
                   argv[i]);
    }
  }
  if (const char* env = std::getenv(env_name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
    std::fprintf(stderr, "ignoring %s=%s (need a positive integer)\n",
                 env_name, env);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dh;
  using namespace dh::em;

  const std::size_t mesh_rows =
      dim_option(argc, argv, "--rows=", "DH_PDN_ROWS", 8);
  const std::size_t mesh_cols =
      dim_option(argc, argv, "--cols=", "DH_PDN_COLS", 8);

  std::printf("== Fig. 11: global vs local PDN layers as EM hazards ==\n\n");

  const EmMaterialParams mat = paper_calibrated_em_material();
  struct Layer {
    const char* name;
    WireGeometry wire;
    double current_a;  // per segment under the same delivered power
  };
  const Layer layers[] = {
      {"global grid (M9/M10-class)",
       {.length = Meters{500e-6}, .width = Meters{5e-6},
        .thickness = Meters{2e-6}, .resistivity_ref = 1.9e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 5e7},
       0.04},
      {"intermediate (M5/M6-class)",
       {.length = Meters{300e-6}, .width = Meters{1.5e-6},
        .thickness = Meters{0.6e-6}, .resistivity_ref = 2.0e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 1.5e8},
       0.025},
      {"local grid (M2/M3-class)",
       {.length = Meters{200e-6}, .width = Meters{0.5e-6},
        .thickness = Meters{0.2e-6}, .resistivity_ref = 2.2e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 2.5e8},
       0.012},
  };

  const Celsius t{105.0};
  Table table({"layer", "j (MA/cm^2)", "Blech jL / crit", "EM status",
               "t_nuc estimate"});
  for (const auto& l : layers) {
    const double j = l.current_a / l.wire.cross_section_m2();
    const double blech = j * l.wire.length.value();
    const double crit =
        mat.blech_threshold(l.wire.resistivity_at(to_kelvin(t)));
    std::string status;
    std::string tnuc;
    if (blech < crit) {
      status = "immortal (Blech)";
      tnuc = "-";
    } else {
      status = "mortal";
      const Seconds tn = CompactEm::analytic_nucleation_time(
          mat, l.wire, AmpsPerM2{j}, t);
      tnuc = Table::num(in_years(tn), 1) + " years";
    }
    table.add_row({l.name, Table::num(j / 1e10, 2),
                   Table::num(blech / crit, 2), status, tnuc});
  }
  table.print(std::cout);

  std::printf(
      "\nThe local layer is the EM-sensitive one, as Fig. 11 argues —\n"
      "which is why the assist circuitry sits between the global and the\n"
      "local grids and protects the latter.\n\n");

  // Show the protection on an actual local mesh.
  pdn::PdnParams mesh_params;
  mesh_params.rows = mesh_rows;
  mesh_params.cols = mesh_cols;
  std::printf(
      "local %zux%zu mesh (engine: %s), hot accelerated corner "
      "(compressed test):\n",
      mesh_rows, mesh_cols,
      to_string(pdn::PdnGrid{mesh_params}.solver_method()));
  const auto run = [&](bool protect) {
    pdn::AgingPdn pdn{mesh_params, mat};
    const std::vector<double> loads(pdn.grid().node_count(), 0.003);
    for (int h = 0; h < 48; ++h) {
      // 40% duty EM recovery when protected (the planner's prescription
      // for this current density and horizon).
      pdn.step(loads, Celsius{230.0}, minutes(36.0), false);
      pdn.step(loads, Celsius{230.0}, minutes(24.0), protect);
    }
    return pdn.stats();
  };
  const auto raw = run(false);
  const auto prot = run(true);
  std::printf("  unprotected: %zu broken, max void %.1f nm\n",
              raw.broken_segments, raw.max_void_len_m * 1e9);
  std::printf("  protected:   %zu broken, max void %.1f nm\n",
              prot.broken_segments, prot.max_void_len_m * 1e9);
  return 0;
}
