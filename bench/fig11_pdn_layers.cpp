// Reproduces the quantitative content of Fig. 11: the global PDN grid
// (wide, thick top metals) is robust against EM while the local grids
// (thin lower metals, high current density) are the hazard the assist
// circuitry must protect.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "pdn/aging_pdn.hpp"

int main() {
  using namespace dh;
  using namespace dh::em;

  std::printf("== Fig. 11: global vs local PDN layers as EM hazards ==\n\n");

  const EmMaterialParams mat = paper_calibrated_em_material();
  struct Layer {
    const char* name;
    WireGeometry wire;
    double current_a;  // per segment under the same delivered power
  };
  const Layer layers[] = {
      {"global grid (M9/M10-class)",
       {.length = Meters{500e-6}, .width = Meters{5e-6},
        .thickness = Meters{2e-6}, .resistivity_ref = 1.9e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 5e7},
       0.04},
      {"intermediate (M5/M6-class)",
       {.length = Meters{300e-6}, .width = Meters{1.5e-6},
        .thickness = Meters{0.6e-6}, .resistivity_ref = 2.0e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 1.5e8},
       0.025},
      {"local grid (M2/M3-class)",
       {.length = Meters{200e-6}, .width = Meters{0.5e-6},
        .thickness = Meters{0.2e-6}, .resistivity_ref = 2.2e-8,
        .reference_temperature = Celsius{20.0}, .tcr_per_k = 3.93e-3,
        .liner_ohm_per_m = 2.5e8},
       0.012},
  };

  const Celsius t{105.0};
  Table table({"layer", "j (MA/cm^2)", "Blech jL / crit", "EM status",
               "t_nuc estimate"});
  for (const auto& l : layers) {
    const double j = l.current_a / l.wire.cross_section_m2();
    const double blech = j * l.wire.length.value();
    const double crit =
        mat.blech_threshold(l.wire.resistivity_at(to_kelvin(t)));
    std::string status;
    std::string tnuc;
    if (blech < crit) {
      status = "immortal (Blech)";
      tnuc = "-";
    } else {
      status = "mortal";
      const Seconds tn = CompactEm::analytic_nucleation_time(
          mat, l.wire, AmpsPerM2{j}, t);
      tnuc = Table::num(in_years(tn), 1) + " years";
    }
    table.add_row({l.name, Table::num(j / 1e10, 2),
                   Table::num(blech / crit, 2), status, tnuc});
  }
  table.print(std::cout);

  std::printf(
      "\nThe local layer is the EM-sensitive one, as Fig. 11 argues —\n"
      "which is why the assist circuitry sits between the global and the\n"
      "local grids and protects the latter.\n\n");

  // Show the protection on an actual local mesh.
  std::printf("local 8x8 mesh, hot accelerated corner (compressed test):\n");
  const auto run = [&](bool protect) {
    pdn::AgingPdn pdn{pdn::PdnParams{}, mat};
    const std::vector<double> loads(pdn.grid().node_count(), 0.003);
    for (int h = 0; h < 48; ++h) {
      // 40% duty EM recovery when protected (the planner's prescription
      // for this current density and horizon).
      pdn.step(loads, Celsius{230.0}, minutes(36.0), false);
      pdn.step(loads, Celsius{230.0}, minutes(24.0), protect);
    }
    return pdn.stats();
  };
  const auto raw = run(false);
  const auto prot = run(true);
  std::printf("  unprotected: %zu broken, max void %.1f nm\n",
              raw.broken_segments, raw.max_void_len_m * 1e9);
  std::printf("  protected:   %zu broken, max void %.1f nm\n",
              prot.broken_segments, prot.max_void_len_m * 1e9);
  return 0;
}
