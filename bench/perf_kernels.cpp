// Google-benchmark microbenchmarks of the numerical kernels, so solver
// performance regressions are caught alongside the physics.
//
// Before the google-benchmark suite runs, a wall-clock section times the
// parallel-execution layer (serial vs pool) and the cached PDN solver
// (cached vs fresh dense solve) and writes the numbers to
// BENCH_parallel.json (routed through obs::json_output_path, so
// DH_BENCH_DIR controls where results land), so future PRs can track the
// throughput trajectory machine-readably. A second section prices the
// observability layer itself — record-call micro-costs and whole-sim
// overhead — into BENCH_obs.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <vector>

#include "circuit/assist.hpp"
#include "common/obs/bench_io.hpp"
#include "common/obs/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "device/compact_bti.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"
#include "pdn/pdn_grid.hpp"
#include "sched/system_sim.hpp"
#include "sram/sram_array.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

using namespace dh;

void BM_TrapEnsembleStep(benchmark::State& state) {
  auto model = device::BtiModel::paper_calibrated();
  const auto cond = device::paper_conditions::accelerated_stress();
  for (auto _ : state) {
    model.apply(cond, minutes(10.0));
    benchmark::DoNotOptimize(model.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleStep);

void BM_CompactBtiStep(benchmark::State& state) {
  device::CompactBti model{};
  const auto cond = device::paper_conditions::accelerated_stress();
  for (auto _ : state) {
    model.apply(cond, minutes(10.0));
    benchmark::DoNotOptimize(model.delta_vth());
  }
}
BENCHMARK(BM_CompactBtiStep);

void BM_KorhonenStep(benchmark::State& state) {
  em::KorhonenSolver solver{em::paper_wire(),
                            em::paper_calibrated_em_material()};
  // Operating (not oven) temperature so the wire neither nucleates nor
  // breaks within the benchmark: every iteration does full solver work.
  for (auto _ : state) {
    solver.step(em::paper_em_conditions::stress_density(), Celsius{105.0},
                Seconds{30.0});
    benchmark::DoNotOptimize(solver.stress_at(em::WireEnd::kStart));
  }
}
BENCHMARK(BM_KorhonenStep);

void BM_CompactEmStep(benchmark::State& state) {
  em::CompactEm model{em::CompactEmParams{
      .wire = em::paper_wire(),
      .material = em::paper_calibrated_em_material()}};
  for (auto _ : state) {
    model.step(em::paper_em_conditions::stress_density(), Celsius{105.0},
               Seconds{30.0});
    benchmark::DoNotOptimize(model.end_stress());
  }
}
BENCHMARK(BM_CompactEmStep);

void BM_ThermalSteadySolve(benchmark::State& state) {
  thermal::ThermalGridParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  thermal::ThermalGrid grid{p};
  for (std::size_t i = 0; i < grid.tile_count(); ++i) {
    grid.set_power(i, Watts{1.0 + 0.01 * static_cast<double>(i)});
  }
  for (auto _ : state) {
    grid.solve_steady();
    benchmark::DoNotOptimize(grid.max_temperature());
  }
}
BENCHMARK(BM_ThermalSteadySolve)->Arg(4)->Arg(8)->Arg(16);

void BM_PdnIrSolve(benchmark::State& state) {
  pdn::PdnParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  const pdn::PdnGrid grid{p};
  const std::vector<double> loads(grid.node_count(), 0.002);
  const auto r = grid.fresh_segment_resistances(Celsius{85.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve_uncached(loads, r));
  }
}
BENCHMARK(BM_PdnIrSolve)->Arg(4)->Arg(8)->Arg(12);

// Dense-vs-sparse solve kernels at n in {64, 256, 1024, 4096} nodes
// (grid sides 8..64). Dense is the from-scratch LU reference
// (solve_uncached); sparse is a fresh engine solve — CSR assembly +
// factorization + solve — so the comparison is end-to-end, not
// back-substitution vs LU. The 64x64 dense case takes tens of seconds
// per iteration; filter with --benchmark_filter if that matters.
void BM_PdnDenseSolve(benchmark::State& state) {
  pdn::PdnParams p;
  p.rows = p.cols = static_cast<std::size_t>(state.range(0));
  const pdn::PdnGrid grid{p};
  const std::vector<double> loads(grid.node_count(), 0.002);
  const auto r = grid.fresh_segment_resistances(Celsius{85.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve_uncached(loads, r));
  }
  state.SetComplexityN(static_cast<std::int64_t>(grid.node_count()));
}
BENCHMARK(BM_PdnDenseSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_PdnSparseSolve(benchmark::State& state) {
  pdn::PdnParams p;
  p.rows = p.cols = static_cast<std::size_t>(state.range(0));
  const std::vector<double> loads(p.rows * p.cols, 0.002);
  for (auto _ : state) {
    state.PauseTiming();
    const pdn::PdnGrid grid{p};  // fresh cache: time factor + solve
    const auto r = grid.fresh_segment_resistances(Celsius{85.0});
    state.ResumeTiming();
    benchmark::DoNotOptimize(grid.solve(loads, r));
  }
  state.SetComplexityN(static_cast<std::int64_t>(p.rows * p.cols));
}
BENCHMARK(BM_PdnSparseSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Complexity();

// The cached solver on a slowly drifting grid (EM-like aging): most
// iterations are back-substitutions plus a few refinement sweeps.
void BM_PdnIrSolveCached(benchmark::State& state) {
  pdn::PdnParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  const pdn::PdnGrid grid{p};
  const std::vector<double> loads(grid.node_count(), 0.002);
  auto r = grid.fresh_segment_resistances(Celsius{85.0});
  for (auto _ : state) {
    for (double& x : r) x *= 1.0 + 1e-5;  // slow EM drift
    benchmark::DoNotOptimize(grid.solve(loads, r));
  }
}
BENCHMARK(BM_PdnIrSolveCached)->Arg(4)->Arg(8)->Arg(12);

void BM_ParallelForOverhead(benchmark::State& state) {
  std::vector<double> out(1024, 0.0);
  for (auto _ : state) {
    parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead);

void BM_AssistDcSolve(benchmark::State& state) {
  circuit::AssistCircuit assist{circuit::AssistCircuitParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assist.solve(circuit::AssistMode::kNormal));
  }
}
BENCHMARK(BM_AssistDcSolve);

void BM_SystemSimStep(benchmark::State& state) {
  sched::SystemParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  sched::SystemSimulator sim{p, sched::make_periodic_active_policy()};
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_SystemSimStep)->Arg(2)->Arg(4)->Arg(8);

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// EM wire-population kernel shared by the serial/parallel timing below —
// a scaled-down bench/em_population_ttf inner loop.
double em_population_member(std::size_t i) {
  using namespace dh::em;
  Rng r = Rng::stream(2026, i);
  EmMaterialParams m = paper_calibrated_em_material();
  m.d0_m2_per_s *= r.lognormal(0.0, 0.25);
  m.critical_stress =
      Pascals{m.critical_stress.value() * r.lognormal(0.0, 0.10)};
  CompactEm em{CompactEmParams{.wire = paper_wire(), .material = m}};
  const Celsius t = paper_em_conditions::chamber();
  double elapsed = 0.0;
  const double horizon = hours(120.0).value();
  while (!em.broken() && elapsed < horizon) {
    em.step(paper_em_conditions::stress_density(), t, minutes(60.0));
    elapsed += minutes(60.0).value();
  }
  return em.broken() ? elapsed : horizon;
}

/// Times the parallel layer and the cached PDN solver, writes
/// BENCH_parallel.json. Runs before the google-benchmark suite so the
/// file is emitted even under a --benchmark_filter that excludes all.
void write_parallel_json() {
  const std::size_t threads = global_thread_count();

  // 1. EM Monte-Carlo population: serial loop vs pool.
  constexpr std::size_t kWires = 64;
  std::vector<double> serial_ttf(kWires);
  const double em_serial_ms = wall_ms([&] {
    for (std::size_t i = 0; i < kWires; ++i) {
      serial_ttf[i] = em_population_member(i);
    }
  });
  std::vector<double> parallel_ttf;
  const double em_parallel_ms = wall_ms([&] {
    parallel_ttf = parallel_map(kWires, em_population_member);
  });
  const bool em_identical = serial_ttf == parallel_ttf;

  // 2. SRAM array health scan: per-cell butterfly solves over the pool.
  sram::SramArrayParams sp;
  sp.cells = 96;
  sram::SramArray array{sp};
  array.step(Celsius{85.0}, hours(1000.0));
  sram::SramArrayHealth serial_h, parallel_h;
  // Route the serial scan through a single-thread global pool.
  set_global_thread_count(1);
  const double sram_serial_ms =
      wall_ms([&] { serial_h = array.scan_health(); });
  set_global_thread_count(threads);
  const double sram_parallel_ms =
      wall_ms([&] { parallel_h = array.scan_health(); });
  const bool sram_identical =
      serial_h.worst_snm.value() == parallel_h.worst_snm.value() &&
      serial_h.mean_snm.value() == parallel_h.mean_snm.value();

  // 3. PDN aging-style solve sequence: fresh dense solve every step vs
  // the drift-tolerance LU cache.
  pdn::PdnParams pp;
  pp.rows = pp.cols = 16;
  const pdn::PdnGrid grid{pp};
  const std::vector<double> loads(grid.node_count(), 0.002);
  constexpr int kSteps = 200;
  const double uncached_ms = wall_ms([&] {
    auto r = grid.fresh_segment_resistances(Celsius{85.0});
    for (int s = 0; s < kSteps; ++s) {
      for (double& x : r) x *= 1.0 + 2e-5;
      benchmark::DoNotOptimize(grid.solve_uncached(loads, r));
    }
  });
  const double cached_ms = wall_ms([&] {
    auto r = grid.fresh_segment_resistances(Celsius{85.0});
    for (int s = 0; s < kSteps; ++s) {
      for (double& x : r) x *= 1.0 + 2e-5;
      benchmark::DoNotOptimize(grid.solve(loads, r));
    }
  });
  const auto& st = grid.solve_stats();

  std::ostringstream json;
  json << "{\n";
  json << "  \"threads\": " << threads << ",\n";
  json << "  \"em_population\": {\"wires\": " << kWires
       << ", \"serial_ms\": " << em_serial_ms
       << ", \"parallel_ms\": " << em_parallel_ms << ", \"speedup\": "
       << (em_parallel_ms > 0.0 ? em_serial_ms / em_parallel_ms : 0.0)
       << ", \"bit_identical\": " << (em_identical ? "true" : "false")
       << "},\n";
  json << "  \"sram_scan\": {\"cells\": " << sp.cells
       << ", \"serial_ms\": " << sram_serial_ms
       << ", \"parallel_ms\": " << sram_parallel_ms << ", \"speedup\": "
       << (sram_parallel_ms > 0.0 ? sram_serial_ms / sram_parallel_ms
                                  : 0.0)
       << ", \"bit_identical\": " << (sram_identical ? "true" : "false")
       << "},\n";
  json << "  \"pdn_solve\": {\"nodes\": " << grid.node_count()
       << ", \"steps\": " << kSteps << ", \"uncached_ms\": " << uncached_ms
       << ", \"cached_ms\": " << cached_ms << ", \"speedup\": "
       << (cached_ms > 0.0 ? uncached_ms / cached_ms : 0.0)
       << ", \"factorizations\": " << st.factorizations
       << ", \"refinement_iterations\": " << st.refinement_iterations
       << "}\n";
  json << "}\n";
  obs::write_file_atomic(obs::json_output_path("BENCH_parallel.json"),
                         json.str());
  std::printf(
      "BENCH_parallel.json written: %zu thread(s); em %.0f/%.0f ms, "
      "sram %.0f/%.0f ms, pdn %.0f/%.0f ms (%zu factorizations in %d "
      "cached steps)\n",
      threads, em_serial_ms, em_parallel_ms, sram_serial_ms,
      sram_parallel_ms, uncached_ms, cached_ms, st.factorizations,
      kSteps);
}

/// Prices the observability layer at the record-call level (counter add,
/// histogram observe, gated-off flag check) and on a short system-sim
/// run, writing BENCH_obs_kernels.json. fig12_system_schedule owns the
/// canonical BENCH_obs.json (full 2-year workload); this file tracks the
/// per-call micro-costs so a regression shows up even without the long
/// run.
void write_obs_kernels_json() {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kOps = 2'000'000;
  obs::Counter& counter = obs::registry().counter("bench.obs.counter");
  obs::Histogram& hist =
      obs::registry().histogram("bench.obs.hist", "ms");

  const auto time_ns_per_op = [&](const std::function<void()>& body) {
    const auto t0 = Clock::now();
    body();
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
               .count() /
           static_cast<double>(kOps);
  };
  const double counter_on_ns = time_ns_per_op([&] {
    for (std::size_t i = 0; i < kOps; ++i) counter.add();
  });
  const double hist_on_ns = time_ns_per_op([&] {
    for (std::size_t i = 0; i < kOps; ++i) {
      hist.observe(static_cast<double>(i & 1023) + 0.5);
    }
  });
  obs::set_enabled(false);
  const double counter_off_ns = time_ns_per_op([&] {
    for (std::size_t i = 0; i < kOps; ++i) counter.add();
  });
  const double hist_off_ns = time_ns_per_op([&] {
    for (std::size_t i = 0; i < kOps; ++i) {
      hist.observe(static_cast<double>(i & 1023) + 0.5);
    }
  });
  obs::set_enabled(true);

  // Whole-sim overhead on a short default-chip run (fig12 measures the
  // full 2-year workload; this is the fast canary). Two sims stepped in
  // alternating 50-quantum blocks so both modes see the same machine
  // state; best-of-block minima stand in for the unperturbed times.
  constexpr int kQuanta = 400;
  constexpr int kSimBlock = 50;
  sched::SystemParams p;
  sched::SystemSimulator sim_base{p, sched::make_periodic_active_policy()};
  sched::SystemSimulator sim_inst{p, sched::make_periodic_active_policy()};
  const auto sim_block_ms = [&](sched::SystemSimulator& sim) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kSimBlock; ++i) sim.step();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };
  double sim_baseline_ms = 0.0;
  double sim_metrics_ms = 0.0;
  std::vector<double> sim_ratio;
  for (int done = 0; done < kQuanta; done += kSimBlock) {
    obs::set_enabled(false);
    const double tb = sim_block_ms(sim_base);
    obs::set_enabled(true);
    const double tm = sim_block_ms(sim_inst);
    sim_baseline_ms += tb;
    sim_metrics_ms += tm;
    if (done > 0 && tb > 0.0) sim_ratio.push_back(tm / tb);
  }
  std::sort(sim_ratio.begin(), sim_ratio.end());
  const double sim_overhead_pct =
      sim_ratio.empty()
          ? 0.0
          : 100.0 * (sim_ratio[sim_ratio.size() / 2] - 1.0);

  std::ostringstream json;
  json << "{\n";
  json << "  \"record_ns_per_op\": {\"counter_on\": " << counter_on_ns
       << ", \"counter_off\": " << counter_off_ns
       << ", \"histogram_on\": " << hist_on_ns
       << ", \"histogram_off\": " << hist_off_ns << "},\n";
  json << "  \"system_sim\": {\"quanta\": " << kQuanta
       << ", \"baseline_ms\": " << sim_baseline_ms
       << ", \"metrics_ms\": " << sim_metrics_ms
       << ", \"overhead_pct\": " << sim_overhead_pct << "}\n";
  json << "}\n";
  obs::write_file_atomic(obs::json_output_path("BENCH_obs_kernels.json"),
                         json.str());
  std::printf(
      "BENCH_obs_kernels.json written: counter %.1f/%.1f ns on/off, "
      "histogram %.1f/%.1f ns on/off, sim overhead %+.2f%%\n",
      counter_on_ns, counter_off_ns, hist_on_ns, hist_off_ns,
      sim_overhead_pct);
}

/// Dense-LU vs sparse-engine scaling curve for the PDN IR solve at
/// n in {64, 256, 1024, 4096} nodes, written to BENCH_sparse.json. Each
/// row times: the from-scratch dense reference (solve_uncached), a cold
/// sparse solve (CSR assembly + factorization + solve), and the
/// steady-state cached sparse solve under slow EM drift — plus which
/// engine ran and how many CG iterations it spent. The acceptance bar is
/// the 64x64 row: cold sparse must beat dense by >= 10x.
void write_sparse_json() {
  struct Row {
    std::size_t side = 0;
    std::size_t nodes = 0;
    double dense_ms = 0.0;
    double sparse_cold_ms = 0.0;
    double sparse_cached_ms = 0.0;
    double speedup_cold = 0.0;
    const char* method = "";
    std::size_t cg_iterations = 0;
  };
  std::vector<Row> rows;
  for (const std::size_t side : {8ul, 16ul, 32ul, 64ul}) {
    Row row;
    row.side = side;
    row.nodes = side * side;
    pdn::PdnParams p;
    p.rows = p.cols = side;
    const pdn::PdnGrid grid{p};
    const std::vector<double> loads(grid.node_count(), 0.002);
    const auto r = grid.fresh_segment_resistances(Celsius{85.0});

    // Repetition counts sized so small grids get a measurable window
    // while the O(n^3) dense solve at n = 4096 runs exactly once.
    const int dense_reps = side <= 8 ? 50 : side <= 16 ? 10 : side <= 32 ? 2 : 1;
    row.dense_ms = wall_ms([&] {
                     for (int i = 0; i < dense_reps; ++i) {
                       benchmark::DoNotOptimize(grid.solve_uncached(loads, r));
                     }
                   }) /
                   dense_reps;

    const int sparse_reps = side <= 32 ? 20 : 5;
    row.sparse_cold_ms = wall_ms([&] {
                           for (int i = 0; i < sparse_reps; ++i) {
                             const pdn::PdnGrid cold{p};
                             benchmark::DoNotOptimize(cold.solve(loads, r));
                           }
                         }) /
                         sparse_reps;

    auto drift_r = r;
    (void)grid.solve(loads, drift_r);  // warm the cache
    constexpr int kCachedReps = 50;
    row.sparse_cached_ms = wall_ms([&] {
                             for (int i = 0; i < kCachedReps; ++i) {
                               for (double& x : drift_r) x *= 1.0 + 1e-5;
                               benchmark::DoNotOptimize(
                                   grid.solve(loads, drift_r));
                             }
                           }) /
                           kCachedReps;
    row.speedup_cold =
        row.sparse_cold_ms > 0.0 ? row.dense_ms / row.sparse_cold_ms : 0.0;
    row.method = to_string(grid.solver_method());
    row.cg_iterations = grid.solve_stats().cg_iterations;
    rows.push_back(row);
  }

  std::ostringstream json;
  json << "{\n  \"pdn_solve_scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"grid\": \"" << row.side << "x" << row.side
         << "\", \"nodes\": " << row.nodes << ", \"method\": \""
         << row.method << "\", \"dense_ms\": " << row.dense_ms
         << ", \"sparse_cold_ms\": " << row.sparse_cold_ms
         << ", \"sparse_cached_ms\": " << row.sparse_cached_ms
         << ", \"speedup_cold\": " << row.speedup_cold
         << ", \"cg_iterations\": " << row.cg_iterations << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  obs::write_file_atomic(obs::json_output_path("BENCH_sparse.json"),
                         json.str());
  for (const Row& row : rows) {
    std::printf(
        "BENCH_sparse %2zux%-2zu (%4zu nodes, %-15s): dense %9.3f ms, "
        "sparse cold %7.3f ms (%.0fx), cached %7.3f ms, cg_iters %zu\n",
        row.side, row.side, row.nodes, row.method, row.dense_ms,
        row.sparse_cold_ms, row.speedup_cold, row.sparse_cached_ms,
        row.cg_iterations);
  }
}

}  // namespace

int main(int argc, char** argv) {
  write_parallel_json();
  write_obs_kernels_json();
  write_sparse_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
