// Google-benchmark microbenchmarks of the numerical kernels, so solver
// performance regressions are caught alongside the physics.
#include <benchmark/benchmark.h>

#include "circuit/assist.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "device/compact_bti.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"
#include "pdn/pdn_grid.hpp"
#include "sched/system_sim.hpp"
#include "thermal/thermal_grid.hpp"

namespace {

using namespace dh;

void BM_TrapEnsembleStep(benchmark::State& state) {
  auto model = device::BtiModel::paper_calibrated();
  const auto cond = device::paper_conditions::accelerated_stress();
  for (auto _ : state) {
    model.apply(cond, minutes(10.0));
    benchmark::DoNotOptimize(model.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleStep);

void BM_CompactBtiStep(benchmark::State& state) {
  device::CompactBti model{};
  const auto cond = device::paper_conditions::accelerated_stress();
  for (auto _ : state) {
    model.apply(cond, minutes(10.0));
    benchmark::DoNotOptimize(model.delta_vth());
  }
}
BENCHMARK(BM_CompactBtiStep);

void BM_KorhonenStep(benchmark::State& state) {
  em::KorhonenSolver solver{em::paper_wire(),
                            em::paper_calibrated_em_material()};
  // Operating (not oven) temperature so the wire neither nucleates nor
  // breaks within the benchmark: every iteration does full solver work.
  for (auto _ : state) {
    solver.step(em::paper_em_conditions::stress_density(), Celsius{105.0},
                Seconds{30.0});
    benchmark::DoNotOptimize(solver.stress_at(em::WireEnd::kStart));
  }
}
BENCHMARK(BM_KorhonenStep);

void BM_CompactEmStep(benchmark::State& state) {
  em::CompactEm model{em::CompactEmParams{
      .wire = em::paper_wire(),
      .material = em::paper_calibrated_em_material()}};
  for (auto _ : state) {
    model.step(em::paper_em_conditions::stress_density(), Celsius{105.0},
               Seconds{30.0});
    benchmark::DoNotOptimize(model.end_stress());
  }
}
BENCHMARK(BM_CompactEmStep);

void BM_ThermalSteadySolve(benchmark::State& state) {
  thermal::ThermalGridParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  thermal::ThermalGrid grid{p};
  for (std::size_t i = 0; i < grid.tile_count(); ++i) {
    grid.set_power(i, Watts{1.0 + 0.01 * static_cast<double>(i)});
  }
  for (auto _ : state) {
    grid.solve_steady();
    benchmark::DoNotOptimize(grid.max_temperature());
  }
}
BENCHMARK(BM_ThermalSteadySolve)->Arg(4)->Arg(8)->Arg(16);

void BM_PdnIrSolve(benchmark::State& state) {
  pdn::PdnParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  const pdn::PdnGrid grid{p};
  const std::vector<double> loads(grid.node_count(), 0.002);
  const auto r = grid.fresh_segment_resistances(Celsius{85.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve(loads, r));
  }
}
BENCHMARK(BM_PdnIrSolve)->Arg(4)->Arg(8)->Arg(12);

void BM_AssistDcSolve(benchmark::State& state) {
  circuit::AssistCircuit assist{circuit::AssistCircuitParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assist.solve(circuit::AssistMode::kNormal));
  }
}
BENCHMARK(BM_AssistDcSolve);

void BM_SystemSimStep(benchmark::State& state) {
  sched::SystemParams p;
  p.rows = static_cast<std::size_t>(state.range(0));
  p.cols = p.rows;
  sched::SystemSimulator sim{p, sched::make_periodic_active_policy()};
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_SystemSimStep)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
