// Reproduces Fig. 4: "how BTI permanent components accumulate over time
// under different stress vs. recovery patterns (recovery condition is the
// same as in No. 4): Under 1 hour vs. 1 hour case, the permanent
// component is practically 0."
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/accelerated_test.hpp"

int main() {
  using namespace dh;
  std::printf(
      "== Fig. 4: permanent BTI component vs. scheduled recovery pattern "
      "==\n\n");

  constexpr int kCycles = 8;
  const auto patterns = core::run_fig4(kCycles);

  std::vector<std::string> headers{"pattern"};
  for (int c = 1; c <= kCycles; ++c) headers.push_back("C" + std::to_string(c));
  Table table{headers};
  for (const auto& p : patterns) {
    std::vector<std::string> row{p.label};
    for (const double mv : p.permanent_mv) row.push_back(Table::num(mv, 2));
    table.add_row(row);
  }
  std::printf("permanent component at the end of each cycle (mV):\n");
  table.print(std::cout);

  const double balanced = patterns[2].permanent_mv.back();
  const double worst = patterns[0].permanent_mv.back();
  std::printf(
      "\n1h:1h after %d cycles: %.2f mV — practically 0 on the plot scale\n"
      "(4h:1h accumulates %.2f mV, %.0fx more). Paper: balanced schedule\n"
      "=> permanent component ~0; unbalanced => accumulation.\n",
      kCycles, balanced, worst, worst / balanced);
  return 0;
}
