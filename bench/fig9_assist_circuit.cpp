// Reproduces Fig. 9: "Functionality simulation in 28nm FDSOI: (a) The
// current direction is reversed under EM Active Recovery Mode, and the
// current value is still the same; (b) Under BTI Active Recovery Mode,
// load VDD and VSS values are switched."
#include <cmath>
#include <cstdio>
#include <iostream>

#include "circuit/assist.hpp"
#include "common/table.hpp"

int main() {
  using namespace dh;
  using namespace dh::circuit;

  std::printf("== Fig. 9: assist circuitry functionality (MNA transient) "
              "==\n\n");
  AssistCircuit assist{AssistCircuitParams{}};

  // (a) Normal -> EM Active Recovery: grid current reverses, same value.
  std::printf("(a) VDD grid current across the Normal -> EM switch:\n");
  const TransientResult em = assist.transition(
      AssistMode::kNormal, AssistMode::kEmActiveRecovery, Seconds{10e-9},
      Seconds{60e-9}, Seconds{2e-10});
  const auto& i = em.trace("grid_current");
  for (double t = 0.0; t <= 60e-9; t += 5e-9) {
    std::printf("  t=%5.1f ns  I=%+9.3e A\n", t * 1e9,
                i.sample(Seconds{t}));
  }
  std::printf("  |I_normal| = %.3e A, |I_em| = %.3e A (paper: ~5e-4 A, "
              "same magnitude)\n\n",
              std::abs(i.front_value()), std::abs(i.back_value()));

  // (b) Normal -> BTI Active Recovery: load rails swap.
  std::printf("(b) load rail voltages across the Normal -> BTI switch:\n");
  const TransientResult bti = assist.transition(
      AssistMode::kNormal, AssistMode::kBtiActiveRecovery, Seconds{50e-9},
      Seconds{1.2e-6}, Seconds{2e-9});
  const auto& vdd = bti.trace("load_vdd");
  const auto& vss = bti.trace("load_vss");
  for (double t = 0.0; t <= 1.2e-6; t += 1.2e-7) {
    std::printf("  t=%7.1f ns  loadVdd=%.3f V  loadVss=%.3f V\n", t * 1e9,
                vdd.sample(Seconds{t}), vss.sample(Seconds{t}));
  }

  Table table({"quantity", "this work", "paper"});
  const AssistOperating op = assist.solve(AssistMode::kBtiActiveRecovery);
  table.add_row({"load VSS node in BTI mode (V)", Table::num(op.load_vss, 3),
                 "~0.816"});
  table.add_row({"load VDD node in BTI mode (V)", Table::num(op.load_vdd, 3),
                 "~0.223"});
  table.add_row({"droop/increase dV (V)",
                 Table::num(1.0 - op.load_vss, 3) + " / " +
                     Table::num(op.load_vdd, 3),
                 "0.2 ~ 0.3"});
  table.add_row({"negative bias available (V)",
                 Table::num(assist.bti_recovery_bias().value(), 3),
                 "-0.816 (>> -0.3 needed)"});
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
