// Reproduces Fig. 12(b): "Illustration of periodic scheduled EM/BTI
// active recovery" — the system-level payoff. We simulate a hot many-core
// chip over two years under different recovery policies and report the
// timing guardband each policy requires, the degradation-vs-time series
// (the sawtooth of Fig. 12b), and the cost side (availability, energy).
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sched/system_sim.hpp"

namespace {

dh::sched::SystemParams hot_chip() {
  using namespace dh;
  using namespace dh::sched;
  SystemParams p;
  p.rows = 4;
  p.cols = 4;
  p.quantum = hours(6.0);
  p.workload.kind = WorkloadKind::kDiurnal;
  p.workload.utilization = 0.80;
  p.workload.period = hours(24.0);
  p.core.dynamic_power_peak = Watts{2.2};
  p.thermal.ambient = Celsius{55.0};
  p.thermal.vertical_g_w_per_k = 0.07;
  return p;
}

}  // namespace

int main() {
  using namespace dh;
  using namespace dh::sched;

  std::printf("== Fig. 12: system-level scheduled recovery, 4x4 cores, "
              "2 years ==\n\n");

  struct Entry {
    const char* label;
    std::unique_ptr<RecoveryPolicy> policy;
  };
  Entry entries[] = {
      {"worst-case (no recovery)", make_no_recovery_policy()},
      {"passive idle only", make_passive_idle_policy()},
      {"periodic active (25%)",
       make_periodic_active_policy({.period = hours(24.0),
                                    .bti_recovery_fraction = 0.25,
                                    .em_recovery_duty = 0.2})},
      {"adaptive sensor-driven",
       make_adaptive_sensor_policy({.threshold = Volts{0.005},
                                    .release = Volts{0.002},
                                    .em_recovery_duty = 0.2})},
      {"dark-silicon rotation",
       make_dark_silicon_policy({.spares = 2,
                                 .rotation_period = hours(6.0),
                                 .em_recovery_duty = 0.2})},
  };

  Table table({"policy", "guardband", "margin vs worst-case",
               "availability", "throughput", "PDN voids", "energy (MJ)"});
  double worst_case = 0.0;
  std::vector<TimeSeries> traces;
  for (auto& e : entries) {
    SystemSimulator sim{hot_chip(), std::move(e.policy)};
    sim.run(years(2.0));
    const SystemSummary s = sim.summary();
    if (worst_case == 0.0) worst_case = s.guardband_fraction;
    table.add_row(
        {e.label, Table::pct(s.guardband_fraction, 2),
         Table::num(100.0 * (1.0 - s.guardband_fraction / worst_case), 0) +
             "% smaller",
         Table::pct(s.availability, 1),
         Table::num(s.mean_throughput, 2),
         std::to_string(s.pdn_stats.nucleated_segments),
         Table::num(s.energy_joules / 1e6, 0)});
    TimeSeries tr = sim.degradation_trace().resampled(600).scaled(100.0);
    tr.set_name(e.label);
    traces.push_back(std::move(tr));
  }
  table.print(std::cout);

  std::printf(
      "\nworst-core degradation vs time (%%) — Fig. 12b's margin picture:\n");
  std::printf("%10s %26s %26s %26s\n", "day", traces[0].name().c_str(),
              traces[2].name().c_str(), traces[3].name().c_str());
  for (int day = 45; day <= 730; day += 45) {
    const Seconds t = days(day);
    std::printf("%10d %26.2f %26.2f %26.2f\n", day, traces[0].sample(t),
                traces[2].sample(t), traces[3].sample(t));
  }

  std::printf(
      "\nThe scheduled policies keep the chip in a 'refreshing' mode: the\n"
      "wearout guardband a designer must provision shrinks by the margin\n"
      "column — the paper's new design dimension. Two honest notes from\n"
      "the reproduction: (1) recovery windows cost availability, which is\n"
      "the knob the designer trades; (2) naive dark-silicon rotation can\n"
      "lose — migrating the displaced work ages the remaining cores about\n"
      "as fast as the parked ones heal, so recovery must be scheduled\n"
      "deliberately (the paper's 'in-time scheduled recovery').\n");
  return 0;
}
