// Reproduces Fig. 12(b): "Illustration of periodic scheduled EM/BTI
// active recovery" — the system-level payoff. We simulate a hot many-core
// chip over two years under different recovery policies and report the
// timing guardband each policy requires, the degradation-vs-time series
// (the sawtooth of Fig. 12b), and the cost side (availability, energy).
// A trailing section prices the observability layer on this very
// workload (metrics off / metrics on / metrics + JSONL tracing) and
// writes BENCH_obs.json via obs::json_output_path, so the "near-zero
// cost when disabled" claim is measured here, not asserted.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/obs/bench_io.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/table.hpp"
#include "sched/system_sim.hpp"

namespace {

dh::sched::SystemParams hot_chip() {
  using namespace dh;
  using namespace dh::sched;
  SystemParams p;
  p.rows = 4;
  p.cols = 4;
  p.quantum = hours(6.0);
  p.workload.kind = WorkloadKind::kDiurnal;
  p.workload.utilization = 0.80;
  p.workload.period = hours(24.0);
  p.core.dynamic_power_peak = Watts{2.2};
  p.thermal.ambient = Celsius{55.0};
  p.thermal.vertical_g_w_per_k = 0.07;
  return p;
}

/// A fresh fig12 periodic-active simulator (deterministic: same seed and
/// parameters every time, so the three overhead modes do identical work).
dh::sched::SystemSimulator make_obs_sim() {
  using namespace dh;
  using namespace dh::sched;
  return SystemSimulator{hot_chip(), make_periodic_active_policy(
                                         {.period = hours(24.0),
                                          .bti_recovery_fraction = 0.25,
                                          .em_recovery_duty = 0.2})};
}

/// Instrumented-vs-uninstrumented overhead on the fig12 workload,
/// written to BENCH_obs.json. Three modes:
///   baseline — obs::set_enabled(false): every record is one flag load
///   metrics  — the shipping default (registry on, tracing off)
///   traced   — DH_TRACE-style JSONL tracing of every quantum
///
/// One simulator per mode, all three stepped in alternation through the
/// same 2-year schedule in ~64-quantum blocks (sub-millisecond), so the
/// modes sample the same machine conditions. Individual block times on
/// this box swing by up to ~2x (scheduler preemption, frequency drift) —
/// whole-run comparisons and even per-block paired ratios are hopeless —
/// but the fastest blocks of each mode are unperturbed and land within a
/// couple percent of each other run over run. The reported overhead
/// therefore compares the mean of each mode's 5 fastest per-step block
/// times: a trimmed-minimum estimator for additive, spiky noise.
void write_obs_json() {
  using namespace dh;
  constexpr std::size_t kBlock = 64;
  const std::string trace_path =
      obs::json_output_path("BENCH_obs_fig12_trace.jsonl");

  sched::SystemSimulator sims[3] = {make_obs_sim(), make_obs_sim(),
                                    make_obs_sim()};
  const auto target = static_cast<std::size_t>(
      std::ceil(years(2.0).value() / hot_chip().quantum.value() - 1e-9));

  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(trace_path));
  obs::set_trace_paused(true);

  const auto set_mode = [](int mode) {
    obs::set_enabled(mode >= 1);
    obs::set_trace_paused(mode != 2);
  };
  const auto run_block = [](sched::SystemSimulator& sim,
                            std::size_t steps) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < steps; ++i) sim.step();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  double total_ms[3] = {0.0, 0.0, 0.0};
  std::vector<double> step_ms[3];  // per-block wall time per quantum
  bool warm = false;  // first block absorbs lazy init, excluded below
  for (std::size_t done = 0; done < target; done += kBlock) {
    const std::size_t steps = std::min(kBlock, target - done);
    double block_ms[3];
    for (int mode = 0; mode < 3; ++mode) {
      set_mode(mode);
      block_ms[mode] = run_block(sims[mode], steps);
      total_ms[mode] += block_ms[mode];
    }
    if (warm) {
      for (int mode = 0; mode < 3; ++mode) {
        step_ms[mode].push_back(block_ms[mode] /
                                static_cast<double>(steps));
      }
      if (std::getenv("DH_OBS_BENCH_DEBUG")) {
        std::printf("block %3zu: b=%.3f m=%.3f t=%.3f  m/b=%.3f\n",
                    done / kBlock, block_ms[0], block_ms[1], block_ms[2],
                    block_ms[1] / block_ms[0]);
      }
    }
    warm = true;
  }
  obs::set_trace_sink(nullptr);  // flush + close the trace file
  obs::set_trace_paused(false);
  obs::set_enabled(true);

  const std::size_t q0 = sims[0].recovery_quanta();
  const std::size_t q1 = sims[1].recovery_quanta();
  const std::size_t q2 = sims[2].recovery_quanta();

  // Mean of the 5 fastest per-step block times for one mode.
  const auto trimmed_min = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t k = std::min<std::size_t>(5, v.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += v[i];
    return sum / static_cast<double>(k);
  };
  const double base = trimmed_min(step_ms[0]);
  const double metrics_pct =
      base > 0.0 ? 100.0 * (trimmed_min(step_ms[1]) / base - 1.0) : 0.0;
  const double traced_pct =
      base > 0.0 ? 100.0 * (trimmed_min(step_ms[2]) / base - 1.0) : 0.0;

  const std::string path = obs::json_output_path("BENCH_obs.json");
  std::ostringstream json;
  json << "{\n";
  json << "  \"workload\": \"fig12_system_schedule periodic-active 2y\",\n";
  json << "  \"block_quanta\": " << kBlock << ",\n";
  json << "  \"blocks\": " << step_ms[0].size() << ",\n";
  json << "  \"baseline_ms\": " << total_ms[0] << ",\n";
  json << "  \"metrics_ms\": " << total_ms[1] << ",\n";
  json << "  \"traced_ms\": " << total_ms[2] << ",\n";
  json << "  \"metrics_overhead_pct\": " << metrics_pct << ",\n";
  json << "  \"traced_overhead_pct\": " << traced_pct << ",\n";
  json << "  \"recovery_quanta\": " << q1 << ",\n";
  json << "  \"results_identical\": "
       << ((q0 == q1 && q1 == q2) ? "true" : "false") << ",\n";
  json << "  \"trace_file\": \"" << trace_path << "\"\n";
  json << "}\n";
  obs::write_file_atomic(path, json.str());
  std::printf(
      "\n%s written: baseline %.1f ms, metrics %.1f ms (%+.2f%%), "
      "traced %.1f ms (%+.2f%%); recovery_quanta=%zu "
      "(trace: %s — feed it to tools/trace_report)\n",
      path.c_str(), total_ms[0], total_ms[1], metrics_pct, total_ms[2],
      traced_pct, q1, trace_path.c_str());
}

/// Crash-recovery demo mode (exercised by tools/crash_recovery_smoke.sh):
/// run the fig12 chip for 120 days with env-driven checkpointing into
/// `dir`, printing a bit-exact digest line at the end. With
/// `kill_after_steps > 0` the process instead runs that many quanta and
/// then SIGKILLs itself — no atexit, no flushes, the honest crash — so a
/// subsequent invocation without the kill must resume from the surviving
/// checkpoint and print the same digest as an uninterrupted run.
int run_ckpt_demo(const std::string& dir, long kill_after_steps) {
  using namespace dh;
  using namespace dh::sched;
  setenv("DH_CKPT_DIR", dir.c_str(), 1);
  setenv("DH_CKPT_EVERY", "8", 1);
  const SystemParams p = hot_chip();
  SystemSimulator sim{p, make_periodic_active_policy(
                             {.period = hours(24.0),
                              .bti_recovery_fraction = 0.25,
                              .em_recovery_duty = 0.2})};
  if (kill_after_steps > 0) {
    sim.run(Seconds{p.quantum.value() *
                    static_cast<double>(kill_after_steps)});
    std::raise(SIGKILL);  // never returns
  }
  sim.run(days(120.0));
  const SystemSummary s = sim.summary();
  // %.17g round-trips doubles exactly: equal lines mean bit-equal state.
  std::printf("CKPT_DEMO_DIGEST guardband=%.17g energy=%.17g "
              "availability=%.17g recovery_quanta=%zu steps=%.17g\n",
              s.guardband_fraction, s.energy_joules, s.availability,
              s.recovery_quanta, sim.now().value());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dh;
  using namespace dh::sched;

  std::string ckpt_demo_dir;
  long kill_after_steps = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ckpt-demo") == 0 && i + 1 < argc) {
      ckpt_demo_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--kill-after-steps") == 0 &&
               i + 1 < argc) {
      kill_after_steps = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ckpt-demo DIR [--kill-after-steps N]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!ckpt_demo_dir.empty()) {
    return run_ckpt_demo(ckpt_demo_dir, kill_after_steps);
  }

  std::printf("== Fig. 12: system-level scheduled recovery, 4x4 cores, "
              "2 years ==\n\n");

  struct Entry {
    const char* label;
    std::unique_ptr<RecoveryPolicy> policy;
  };
  Entry entries[] = {
      {"worst-case (no recovery)", make_no_recovery_policy()},
      {"passive idle only", make_passive_idle_policy()},
      {"periodic active (25%)",
       make_periodic_active_policy({.period = hours(24.0),
                                    .bti_recovery_fraction = 0.25,
                                    .em_recovery_duty = 0.2})},
      {"adaptive sensor-driven",
       make_adaptive_sensor_policy({.threshold = Volts{0.005},
                                    .release = Volts{0.002},
                                    .em_recovery_duty = 0.2})},
      {"dark-silicon rotation",
       make_dark_silicon_policy({.spares = 2,
                                 .rotation_period = hours(6.0),
                                 .em_recovery_duty = 0.2})},
  };

  Table table({"policy", "guardband", "margin vs worst-case",
               "availability", "throughput", "PDN voids", "energy (MJ)"});
  double worst_case = 0.0;
  std::vector<TimeSeries> traces;
  for (auto& e : entries) {
    SystemSimulator sim{hot_chip(), std::move(e.policy)};
    sim.run(years(2.0));
    const SystemSummary s = sim.summary();
    if (worst_case == 0.0) worst_case = s.guardband_fraction;
    table.add_row(
        {e.label, Table::pct(s.guardband_fraction, 2),
         Table::num(100.0 * (1.0 - s.guardband_fraction / worst_case), 0) +
             "% smaller",
         Table::pct(s.availability, 1),
         Table::num(s.mean_throughput, 2),
         std::to_string(s.pdn_stats.nucleated_segments),
         Table::num(s.energy_joules / 1e6, 0)});
    TimeSeries tr = sim.degradation_trace().resampled(600).scaled(100.0);
    tr.set_name(e.label);
    traces.push_back(std::move(tr));
  }
  table.print(std::cout);

  std::printf(
      "\nworst-core degradation vs time (%%) — Fig. 12b's margin picture:\n");
  std::printf("%10s %26s %26s %26s\n", "day", traces[0].name().c_str(),
              traces[2].name().c_str(), traces[3].name().c_str());
  for (int day = 45; day <= 730; day += 45) {
    const Seconds t = days(day);
    std::printf("%10d %26.2f %26.2f %26.2f\n", day, traces[0].sample(t),
                traces[2].sample(t), traces[3].sample(t));
  }

  std::printf(
      "\nThe scheduled policies keep the chip in a 'refreshing' mode: the\n"
      "wearout guardband a designer must provision shrinks by the margin\n"
      "column — the paper's new design dimension. Two honest notes from\n"
      "the reproduction: (1) recovery windows cost availability, which is\n"
      "the knob the designer trades; (2) naive dark-silicon rotation can\n"
      "lose — migrating the displaced work ages the remaining cores about\n"
      "as fast as the parked ones heal, so recovery must be scheduled\n"
      "deliberately (the paper's 'in-time scheduled recovery').\n");

  write_obs_json();
  return 0;
}
