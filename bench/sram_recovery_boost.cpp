// SRAM recovery boost (the paper's §II-B prior-work line, Shin et al.
// [17], re-quantified with the calibrated BTI model): static noise margin
// of a 64-cell array over one year at hot retention conditions, under
// three data/recovery strategies.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sram/sram_array.hpp"

int main() {
  using namespace dh;
  using namespace dh::sram;

  std::printf("== SRAM recovery boost: 64 cells, 95 C retention, 1 year "
              "==\n\n");

  struct Strategy {
    const char* name;
    DataPattern pattern;
    double boost_fraction;
  };
  const Strategy strategies[] = {
      {"static data, no recovery", DataPattern::kStatic, 0.0},
      {"bit flipping (signal-prob balancing)", DataPattern::kFlipping, 0.0},
      {"static data + 10% recovery boost", DataPattern::kStatic, 0.10},
      {"flipping + 10% recovery boost", DataPattern::kFlipping, 0.10},
  };

  double fresh_snm = 0.0;
  Table table({"strategy", "worst SNM @3mo", "worst SNM @1y",
               "SNM loss vs fresh", "worst pull-up dVth"});
  for (const auto& s : strategies) {
    SramArrayParams p;
    p.cells = 64;
    p.pattern = s.pattern;
    SramArray arr{p};
    if (fresh_snm == 0.0) fresh_snm = arr.cell(0).fresh_snm().value();
    double snm_3mo = 0.0;
    for (int d = 0; d < 365; ++d) {
      arr.step(Celsius{95.0}, hours(24.0), s.boost_fraction);
      if (d == 90) snm_3mo = arr.worst_cell_health().worst_snm.value();
    }
    const auto h = arr.worst_cell_health();
    table.add_row({s.name, Table::num(snm_3mo * 1e3, 1) + " mV",
                   Table::num(h.worst_snm.value() * 1e3, 1) + " mV",
                   Table::pct(1.0 - h.worst_snm.value() / fresh_snm, 1),
                   Table::num(h.worst_pmos_dvth.value() * 1e3, 1) + " mV"});
  }
  std::printf("fresh-cell hold SNM: %.1f mV\n\n", fresh_snm * 1e3);
  table.print(std::cout);

  std::printf(
      "\n[17] could only estimate the benefit by simulation ('it was still\n"
      "unclear how much benefit recovery boost could achieve due to lack\n"
      "of experimental data'); with the Table-I-calibrated recovery model\n"
      "the boost schedule's SNM retention is quantified above.\n");
  return 0;
}
