// Reproduces Fig. 6: "Measurement results for EM accelerated and active
// recovery during the early period of the void growth phase (at 230C and
// +/-7.96 MA/cm^2): full recovery" — including the reverse-current-
// induced EM that appears when the reverse stress is held past full
// healing.
#include <cstdio>
#include <iostream>

#include "common/time_series.hpp"
#include "core/accelerated_test.hpp"

int main() {
  using namespace dh;
  std::printf(
      "== Fig. 6: full EM recovery when scheduled early in void growth "
      "==\n\n");

  const core::EmExperimentResult r = core::run_fig6(minutes(700.0));
  TimeSeries series = r.resistance;
  series.set_name("resistance (ohm)");
  print_series_table(std::cout, {series}, 28);

  const double r0 = r.fresh_resistance.value();
  const double dr_peak = r.peak_resistance.value() - r0;
  const double dr_healed = r.final_resistance.value() - r0;
  std::printf("\nnucleation at %.0f min; early-growth dR = %.2f ohm\n",
              in_minutes(r.nucleation_time), dr_peak);
  std::printf("after active recovery: dR = %.3f ohm -> %.0f%% recovered "
              "(paper: full recovery)\n",
              dr_healed, (1.0 - dr_healed / dr_peak) * 100.0);
  std::printf("holding the reverse current past full healing: R rises "
              "again to dR = %.2f ohm\n"
              "(reverse-current-induced EM at the opposite end — exactly "
              "the hazard the paper flags)\n",
              r.resistance.back_value() - r0);
  return 0;
}
