// Reproduces Fig. 10: "Load Size vs. Performance and Switching time:
// Increasing the number of loads will reduce the performance as well as
// the switching time between modes."
#include <cstdio>
#include <iostream>

#include "circuit/assist.hpp"
#include "common/table.hpp"

int main() {
  using namespace dh;
  using namespace dh::circuit;

  std::printf("== Fig. 10: load size vs. normalized delay and switching "
              "time ==\n\n");

  double delay1 = 0.0;
  double switch1 = 0.0;
  Table table({"load size", "normalized delay", "switching time (ns)",
               "normalized switching"});
  for (int n = 1; n <= 5; ++n) {
    AssistCircuitParams p;
    p.load_units = n;
    AssistCircuit assist{p};
    const double delay = assist.normalized_load_delay(AssistMode::kNormal);
    const double tsw = assist
                           .switching_time(AssistMode::kNormal,
                                           AssistMode::kBtiActiveRecovery)
                           .value();
    if (n == 1) {
      delay1 = delay;
      switch1 = tsw;
    }
    table.add_row({std::to_string(n), Table::num(delay / delay1, 3),
                   Table::num(tsw * 1e9, 1),
                   Table::num(tsw / switch1, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper: delay grows roughly linearly to ~1.8x at 5 loads (droop\n"
      "across the shared header/footer), while the switching time falls\n"
      "with load size at a slower (sub-linear) rate — larger loads help\n"
      "slew the mode transition. Both trends reproduce above.\n");
  return 0;
}
