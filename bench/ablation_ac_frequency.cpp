// Extension study: EM lifetime under AC / bipolar stress vs. frequency.
//
// The paper builds on Tao et al. [21] ("the lifetime increases with the
// frequency") and Abella & Vera [22] ("healing can increase the lifetime
// by several orders of magnitude"). Our Korhonen solver reproduces the
// mechanism: a 50% bipolar square wave cancels the average wind, and the
// residual stress ripple shrinks as 1/sqrt(period), so above a crossover
// frequency the line never reaches the critical stress at all.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"

int main() {
  using namespace dh;
  using namespace dh::em;

  std::printf("== EM lifetime vs. bipolar stress frequency (extension) "
              "==\n   50%% duty square wave at +/-7.96 MA/cm^2, 230 C\n\n");

  const auto wire = paper_wire();
  const auto mat = paper_calibrated_em_material();
  const auto t = paper_em_conditions::chamber();
  const Seconds horizon = hours(50.0);

  Table table({"half-period", "peak stress / critical", "nucleated?",
               "lifetime vs DC"});
  // DC baseline nucleation time.
  double dc_nucleation = 0.0;
  {
    KorhonenSolver s{wire, mat};
    while (!s.ever_nucleated()) {
      s.step(paper_em_conditions::stress_density(), t, minutes(10.0));
    }
    dc_nucleation = s.elapsed().value();
  }

  for (const double half_period_min : {480.0, 240.0, 120.0, 30.0, 3.0}) {
    KorhonenSolver s{wire, mat};
    double peak = 0.0;
    bool forward = true;
    while (!s.ever_nucleated() && s.elapsed().value() < horizon.value()) {
      s.step(forward ? paper_em_conditions::stress_density()
                     : paper_em_conditions::reverse_density(),
             t, minutes(half_period_min));
      forward = !forward;
      peak = std::max(peak, std::abs(s.stress_at(WireEnd::kStart).value()));
      peak = std::max(peak, std::abs(s.stress_at(WireEnd::kEnd).value()));
    }
    std::string life;
    if (s.ever_nucleated()) {
      life = Table::num(s.elapsed().value() / dc_nucleation, 1) + "x";
    } else {
      life = "> " + Table::num(horizon.value() / dc_nucleation, 0) +
             "x (immortal in window)";
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.0f min", half_period_min);
    table.add_row({label,
                   Table::num(peak / mat.critical_stress.value(), 2),
                   s.ever_nucleated() ? "yes" : "no", life});
  }
  table.print(std::cout);
  std::printf(
      "\nDC nucleation: %.0f min. Peak ripple scales ~sqrt(half-period),\n"
      "so faster alternation -> lower peak stress -> longer (eventually\n"
      "unbounded) lifetime: the [21]/[22] frequency effect, and the\n"
      "physics behind the paper's EM Active Recovery duty cycling.\n",
      dc_nucleation / 60.0);
  return 0;
}
