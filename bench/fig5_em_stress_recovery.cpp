// Reproduces Fig. 5: "Measurement results for EM degradation and recovery
// under passive recovery and proposed recovery conditions (at 230C and
// +/-7.96 MA/cm^2) during the void growth phase: there is still a
// permanent component even under accelerated and active recovery."
#include <cstdio>
#include <iostream>

#include "common/time_series.hpp"
#include "core/accelerated_test.hpp"

int main() {
  using namespace dh;
  std::printf(
      "== Fig. 5: EM R(t) — nucleation, void growth, active vs passive "
      "recovery ==\n   (230 C, +/-7.96 MA/cm^2, paper wire: 2.673mm x "
      "1.57um x 0.8um)\n\n");

  core::EmExperimentResult active = core::run_fig5(true);
  core::EmExperimentResult passive = core::run_fig5(false);

  TimeSeries a = active.resistance;
  a.set_name("active+accel rec (ohm)");
  TimeSeries p = passive.resistance;
  p.set_name("passive rec (ohm)");
  print_series_table(std::cout, {a, p}, 25);

  const double r0 = active.fresh_resistance.value();
  const double dr = active.peak_resistance.value() - r0;
  std::printf("\nvoid nucleation at %.0f min (flat R before; paper: ~6 h "
              "scale)\n",
              in_minutes(active.nucleation_time));
  std::printf("void growth dR = %.2f ohm by end of stress (paper: ~1.6 "
              "ohm)\n", dr);

  // The 1/5-stress-time recovery claim.
  const core::EmExperimentResult fifth = core::run_fig5(true, minutes(120.0));
  std::printf("active recovery undoes %.0f%% within 1/5 of the stress time "
              "(paper: >75%%)\n",
              fifth.recovery_fraction() * 100.0);
  std::printf("passive recovery undoes %.0f%% in the same window (paper: "
              "slow/ineffective)\n",
              core::run_fig5(false, minutes(120.0)).recovery_fraction() *
                  100.0);
  std::printf("permanent component after extended recovery: %.2f ohm "
              "(stable — paper: 'stable even with extended recovery')\n",
              active.final_resistance.value() - r0);
  return 0;
}
