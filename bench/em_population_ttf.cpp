// EM lifetime statistics: a Monte-Carlo population of wires with
// process spread, with and without scheduled EM active recovery. EM
// budgets are set by the *early* percentiles of the lognormal TTF
// population (one broken rail kills the chip), so the recovery benefit at
// t0.1% matters more than the median shift.
//
// The population runs over the thread pool (DH_THREADS or all cores);
// each wire derives its random stream from the wire index, so the
// statistics are bit-identical at any thread count.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"

int main() {
  using namespace dh;
  using namespace dh::em;

  std::printf("== EM TTF population: 400 wires, process spread, 230 C "
              "accelerated ==\n\n");

  const WireGeometry wire = paper_wire();
  const EmMaterialParams nominal = paper_calibrated_em_material();
  const Celsius t = paper_em_conditions::chamber();
  constexpr std::uint64_t kSeed = 2026;
  constexpr std::size_t kWires = 400;

  const auto sample_ttf = [&](bool recovery, Rng& r) {
    // Process spread: diffusivity and critical stress vary wire to wire.
    EmMaterialParams m = nominal;
    m.d0_m2_per_s *= r.lognormal(0.0, 0.25);
    m.critical_stress = Pascals{nominal.critical_stress.value() *
                                r.lognormal(0.0, 0.10)};
    CompactEm em{CompactEmParams{.wire = wire, .material = m}};
    const Seconds fwd = minutes(60.0);
    const Seconds rev = minutes(15.0);
    double elapsed = 0.0;
    const double horizon = hours(400.0).value();
    while (!em.broken() && elapsed < horizon) {
      em.step(paper_em_conditions::stress_density(), t, fwd);
      elapsed += fwd.value();
      if (recovery && !em.broken()) {
        em.step(paper_em_conditions::reverse_density(), t, rev);
        elapsed += rev.value();
      }
    }
    return em.broken() ? elapsed : horizon;
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto pairs = parallel_map(kWires, [&](std::size_t i) {
    // Per-wire stream from the index: order- and thread-independent.
    Rng r1 = Rng::stream(kSeed, i);
    Rng r2 = r1;  // identical process draw for the pair
    return std::pair{sample_ttf(false, r1), sample_ttf(true, r2)};
  });
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> base, healed;
  int base_survived = 0, healed_survived = 0;
  for (const auto& [tb, th] : pairs) {
    base.push_back(tb);
    healed.push_back(th);
    if (tb >= hours(400.0).value()) ++base_survived;
    if (th >= hours(400.0).value()) ++healed_survived;
  }

  const auto row = [&](const char* name, std::vector<double>& xs,
                       int survived) {
    return std::vector<std::string>{
        name, Table::num(stats::percentile(xs, 0.001) / 3600.0, 1),
        Table::num(stats::percentile(xs, 0.01) / 3600.0, 1),
        Table::num(stats::median(xs) / 3600.0, 1),
        std::to_string(survived) + "/400"};
  };
  Table table({"population", "t0.1% (h)", "t1% (h)", "t50 (h)",
               "survived 400h window"});
  table.add_row(row("constant stress", base, base_survived));
  table.add_row(row("with 60:15 recovery duty", healed, healed_survived));
  table.print(std::cout);

  // Lognormal fit of the failing portion of the baseline (Black's view).
  std::vector<double> failures;
  for (const double x : base) {
    if (x < hours(400.0).value()) failures.push_back(x);
  }
  if (failures.size() >= 10) {
    const auto fit = stats::fit_lognormal(failures);
    std::printf("\nbaseline failures fit lognormal: t50 = %.1f h, sigma = "
                "%.2f (the classical Black/lognormal EM picture)\n",
                fit.t50() / 3600.0, fit.sigma);
  }
  std::printf(
      "\nScheduled recovery moves the *whole distribution* out — including\n"
      "the early percentiles that set design budgets — rather than only\n"
      "the median, because it attacks stress buildup before nucleation.\n");
  std::printf("\n[pool] %zu thread(s), population wall time %.0f ms\n",
              global_thread_count(), wall_ms);
  return 0;
}
