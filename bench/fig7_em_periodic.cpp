// Reproduces Fig. 7: "Measurement results for scheduled periodic recovery
// intervals during void nucleation phase: It takes much longer for voids
// to nucleate, and the overall TTF is extended."
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/time_series.hpp"
#include "core/accelerated_test.hpp"

int main() {
  using namespace dh;
  std::printf(
      "== Fig. 7: periodic recovery during nucleation extends TTF ==\n\n");

  const core::Fig7Result r = core::run_fig7();
  TimeSeries series = r.periodic.resistance;
  series.set_name("resistance (ohm)");
  print_series_table(std::cout, {series}, 25);

  Table table({"metric", "constant stress", "periodic recovery (60f/20r)"});
  table.add_row({"void nucleation (min)",
                 Table::num(in_minutes(r.baseline_nucleation), 0),
                 Table::num(in_minutes(r.periodic.nucleation_time), 0)});
  table.add_row(
      {"nucleation delay factor", "1.0x",
       Table::num(r.nucleation_delay_factor(), 2) + "x"});
  table.add_row({"metal broke at (min)", "-",
                 r.periodic.broke
                     ? Table::num(in_minutes(r.periodic.break_time), 0)
                     : std::string("survived window")});
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\npaper: 'almost 3x slower' nucleation with scheduled recovery, and\n"
      "the overall time-to-failure is extended accordingly.\n");

  // Sweep the reverse-interval share (extension beyond the paper's single
  // schedule): duty vs achieved delay.
  std::printf("\nreverse-interval sweep (60 min forward):\n");
  for (const double rev_min : {5.0, 10.0, 20.0, 30.0}) {
    const auto sweep = core::run_fig7(minutes(60.0), minutes(rev_min));
    std::printf("  %4.0f min reverse -> delay %.2fx\n", rev_min,
                sweep.nucleation_delay_factor());
  }
  return 0;
}
