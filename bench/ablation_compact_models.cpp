// Ablation: how faithful are the fast compact models (used for
// system-scale simulation) to the full physics solvers? This is the
// paper's stated future work — "high-level compact models that capture
// the accurate device and circuit level BTI/EM recovery information".
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "device/compact_bti.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"

int main() {
  using namespace dh;
  std::printf("== Ablation: compact models vs full solvers ==\n\n");

  // --- BTI: compact 2-pool vs 360-bin trap ensemble -----------------------
  {
    using namespace dh::device;
    struct Scenario {
      const char* name;
      BtiCondition stress;
      double stress_h, recover_h;
      int cycles;
    };
    const Scenario scenarios[] = {
        {"accelerated 24h + No.4 6h", paper_conditions::accelerated_stress(),
         24.0, 6.0, 1},
        {"8x (1h:1h) balanced", paper_conditions::accelerated_stress(), 1.0,
         1.0, 8},
        {"nominal 0.9V/80C, 30x(22h:2h)", {Volts{0.9}, Celsius{80.0}}, 22.0,
         2.0, 30},
        {"near-Vt 0.7V/37C, 30x(12h:12h)", {Volts{0.7}, Celsius{37.0}}, 12.0,
         12.0, 30},
    };
    Table table({"scenario", "full model dVth", "compact dVth", "ratio"});
    for (const auto& sc : scenarios) {
      auto full = BtiModel::paper_calibrated();
      CompactBti compact{};
      const BtiCondition rec{Volts{-0.3}, sc.stress.temperature};
      for (int c = 0; c < sc.cycles; ++c) {
        full.apply(sc.stress, hours(sc.stress_h));
        full.apply(rec, hours(sc.recover_h));
        compact.apply(sc.stress, hours(sc.stress_h));
        compact.apply(rec, hours(sc.recover_h));
      }
      const double f = full.delta_vth().value() * 1e3;
      const double c = compact.delta_vth().value() * 1e3;
      table.add_row({sc.name, Table::num(f, 2) + " mV",
                     Table::num(c, 2) + " mV",
                     Table::num(f > 1e-9 ? c / f : 0.0, 2)});
    }
    std::printf("BTI: full trap ensemble (360 bins) vs compact (2 pools):\n");
    table.print(std::cout);
  }

  // --- EM: compact 3-pool Prony vs Korhonen PDE ---------------------------
  {
    using namespace dh::em;
    const auto wire = paper_wire();
    const auto mat = paper_calibrated_em_material();
    const auto t = paper_em_conditions::chamber();
    Table table({"quantity", "Korhonen PDE", "compact (3-pool)"});

    // Nucleation time under constant stress.
    KorhonenSolver pde{wire, mat};
    while (!pde.ever_nucleated() && in_minutes(pde.elapsed()) < 1200) {
      pde.step(paper_em_conditions::stress_density(), t, minutes(5.0));
    }
    CompactEm compact{CompactEmParams{.wire = wire, .material = mat}};
    double compact_nuc = -1.0;
    for (int m = 0; m < 1200 && compact_nuc < 0; m += 5) {
      compact.step(paper_em_conditions::stress_density(), t, minutes(5.0));
      if (compact.void_open()) compact_nuc = m + 5;
    }
    table.add_row({"nucleation time (min)",
                   Table::num(in_minutes(pde.elapsed()), 0),
                   Table::num(compact_nuc, 0)});

    // Void length after 3 h of growth.
    KorhonenSolver pde2{wire, mat};
    pde2.step(paper_em_conditions::stress_density(), t, minutes(600.0));
    CompactEm c2{CompactEmParams{.wire = wire, .material = mat}};
    c2.step(paper_em_conditions::stress_density(), t, minutes(600.0));
    table.add_row({"void length @600min (nm)",
                   Table::num(pde2.total_void_length().value() * 1e9, 1),
                   Table::num(c2.void_length().value() * 1e9, 1)});

    // Healing after 2 h reverse.
    pde2.step(paper_em_conditions::reverse_density(), t, minutes(120.0));
    c2.step(paper_em_conditions::reverse_density(), t, minutes(120.0));
    table.add_row({"void after 120min reverse (nm)",
                   Table::num(pde2.total_void_length().value() * 1e9, 1),
                   Table::num(c2.void_length().value() * 1e9, 1)});
    std::printf("\nEM: Korhonen finite-volume PDE vs compact Prony model:\n");
    table.print(std::cout);
    std::printf(
        "\n(The compact models trade ~tens of %% absolute accuracy for\n"
        " ~1000x speed; the system simulator uses them per core/segment.)\n");
  }
  return 0;
}
