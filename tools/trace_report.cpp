// trace_report: summarize a recorded JSONL trace (DH_TRACE output).
//
//   trace_report <trace.jsonl>        analyze a file
//   trace_report -                    analyze stdin
//
// Prints per-category event counts with an attributed wall-time breakdown,
// per-event-group field summaries (p50/p95/max), and — when the trace
// contains sim/quantum events — the exact recovery-quanta count the
// simulator's registry reported while recording.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common/obs/trace_report.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fprintf(stderr,
                 "usage: trace_report <trace.jsonl>   (or '-' for stdin)\n"
                 "\n"
                 "Summarizes a JSONL trace recorded via DH_TRACE=<path>:\n"
                 "  - event counts per category, wall-time breakdown\n"
                 "  - per-group field histogram summaries (p50/p95/max)\n"
                 "  - scheduler recovery-quanta reconstruction\n");
    return argc == 2 ? 0 : 2;
  }

  dh::obs::TraceReport report;
  if (std::strcmp(argv[1], "-") == 0) {
    report = dh::obs::analyze_trace(std::cin);
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "trace_report: cannot open '%s'\n", argv[1]);
      return 1;
    }
    report = dh::obs::analyze_trace(in);
  }
  if (report.total_events == 0) {
    std::fprintf(stderr,
                 "trace_report: no events found (%zu malformed lines) — "
                 "was the trace recorded with DH_TRACE?\n",
                 report.malformed_lines);
    return 1;
  }
  dh::obs::print_trace_report(std::cout, report);
  return 0;
}
