// ckpt_inspect: describe *.dhck snapshot files without loading them into
// a simulator — the debugging companion to the checkpoint layer.
//
//   ckpt_inspect <file.dhck> [more files...]
//
// For every file it prints the container header (kind, schema version,
// payload size, CRC status) and, for the kinds it knows, the leading
// payload fields: a system_sim snapshot's configuration digest and step
// counter, a population_member's index/seed/headline metrics, a
// population_manifest's sweep pins. Exit status is the number of files
// that failed validation, so the crash-recovery smoke test can assert
// "all snapshots healthy" with a single invocation.
#include <cstdio>
#include <exception>
#include <string>

#include "common/ckpt/serialize.hpp"
#include "common/ckpt/snapshot.hpp"
#include "common/error.hpp"

namespace {

using dh::ckpt::Deserializer;

void describe_system_sim(Deserializer& d) {
  d.expect_section("SSIM");
  const auto rows = d.read_u64();
  const auto cols = d.read_u64();
  const double quantum_s = d.read_f64();
  const auto seed = d.read_u64();
  const std::string policy = d.read_string();
  for (int i = 0; i < 4; ++i) (void)d.read_f64();  // accumulators
  const double guardband = d.read_f64();
  const double first_failure_s = d.read_f64();
  const auto steps = d.read_u64();
  const auto recovery_quanta = d.read_u64();
  std::printf("  grid            %llux%llu cores\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(cols));
  std::printf("  quantum         %.0f s\n", quantum_s);
  std::printf("  seed            %llu\n",
              static_cast<unsigned long long>(seed));
  std::printf("  policy          %s\n", policy.c_str());
  std::printf("  steps           %llu (sim time %.1f days)\n",
              static_cast<unsigned long long>(steps),
              static_cast<double>(steps) * quantum_s / 86400.0);
  std::printf("  recovery_quanta %llu\n",
              static_cast<unsigned long long>(recovery_quanta));
  std::printf("  guardband       %.4f\n", guardband);
  if (first_failure_s >= 0.0) {
    std::printf("  first_failure   %.1f days\n", first_failure_s / 86400.0);
  }
}

void describe_population_member(Deserializer& d) {
  d.expect_section("PMEM");
  const auto index = d.read_u64();
  const auto seed = d.read_u64();
  const double lifetime_s = d.read_f64();
  d.expect_section("SSUM");
  const double guardband = d.read_f64();
  const double final_degradation = d.read_f64();
  const double ttf_s = d.read_f64();
  std::printf("  member          %llu (seed %llu)\n",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(seed));
  std::printf("  lifetime        %.1f days\n", lifetime_s / 86400.0);
  std::printf("  guardband       %.4f\n", guardband);
  std::printf("  final_degrad    %.4f\n", final_degradation);
  if (ttf_s >= 0.0) {
    std::printf("  time_to_failure %.1f days\n", ttf_s / 86400.0);
  } else {
    std::printf("  time_to_failure (survived)\n");
  }
}

void describe_population_manifest(Deserializer& d) {
  d.expect_section("PMAN");
  const auto count = d.read_u64();
  const double lifetime_s = d.read_f64();
  const auto seed = d.read_u64();
  std::printf("  members         %llu\n",
              static_cast<unsigned long long>(count));
  std::printf("  lifetime        %.1f days\n", lifetime_s / 86400.0);
  std::printf("  base seed       %llu\n",
              static_cast<unsigned long long>(seed));
}

/// Returns true when the file validated cleanly.
bool inspect(const std::string& path) {
  std::printf("%s\n", path.c_str());
  bool crc_ok = false;
  dh::ckpt::SnapshotHeader header;
  try {
    header = dh::ckpt::read_snapshot_header(path, &crc_ok);
  } catch (const dh::Error& e) {
    std::printf("  INVALID: %s\n\n", e.what());
    return false;
  }
  std::printf("  kind            %s\n", header.kind.c_str());
  std::printf("  schema version  %u\n", header.version);
  std::printf("  payload         %llu bytes, CRC %s\n",
              static_cast<unsigned long long>(header.payload_size),
              crc_ok ? "ok" : "MISMATCH");
  if (!crc_ok) {
    std::printf("\n");
    return false;
  }
  try {
    Deserializer d{dh::ckpt::read_snapshot(path)};
    if (header.kind == "system_sim") {
      describe_system_sim(d);
    } else if (header.kind == "population_member") {
      describe_population_member(d);
    } else if (header.kind == "population_manifest") {
      describe_population_manifest(d);
    }
  } catch (const std::exception& e) {
    std::printf("  PAYLOAD DECODE FAILED: %s\n\n", e.what());
    return false;
  }
  std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ckpt_inspect <file.dhck> [more files...]\n"
                 "Prints snapshot headers and known-kind payload digests; "
                 "exit status = number of invalid files.\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    if (!inspect(argv[i])) ++failures;
  }
  return failures;
}
