// Development-time check of the EM solver against the shapes of the
// paper's Figs. 5-7.
#include <cstdio>

#include "em/compact_em.hpp"
#include "em/korhonen.hpp"
#include "em/em_sensor.hpp"

int main() {
  using namespace dh;
  using namespace dh::em;
  const auto wire = paper_wire();
  const auto mat = paper_calibrated_em_material();
  const auto temp = paper_em_conditions::chamber();
  const auto j_fwd = paper_em_conditions::stress_density();
  const auto j_rev = paper_em_conditions::reverse_density();

  std::printf("fresh R @20C = %.2f ohm, @230C = %.2f ohm\n",
              wire.resistance_at(to_kelvin(Celsius{20})).value(),
              wire.resistance_at(to_kelvin(temp)).value());
  std::printf("analytic t_nuc @230C = %.0f min\n",
              in_minutes(CompactEm::analytic_nucleation_time(mat, wire, j_fwd,
                                                             temp)));

  // Fig. 5: stress until deep void growth, then active recovery.
  {
    KorhonenSolver s{wire, mat};
    double t_nuc_min = -1.0;
    for (int m = 0; m < 600; m += 5) {
      s.step(j_fwd, temp, minutes(5));
      if (t_nuc_min < 0 && s.ever_nucleated()) t_nuc_min = m + 5;
    }
    const double r_peak = s.resistance(temp).value();
    const double r0 = wire.resistance_at(to_kelvin(temp)).value();
    std::printf("Fig5: t_nuc=%.0f min, R after 600min stress = %.2f (dR=%.2f)\n",
                t_nuc_min, r_peak, r_peak - r0);
    // 120 min active recovery (1/5 of stress time).
    s.step(j_rev, temp, minutes(120));
    const double r_rec = s.resistance(temp).value();
    std::printf("Fig5: after 120min active rec: R=%.2f, recovered %.0f%%"
                " (fixed void=%.1f nm)\n",
                r_rec, (r_peak - r_rec) / (r_peak - r0) * 100.0,
                s.void_at(WireEnd::kStart).fixed_len_m * 1e9);
    s.step(j_rev, temp, minutes(240));
    std::printf("Fig5: extended rec: R=%.2f (permanent dR=%.2f)\n",
                s.resistance(temp).value(),
                s.resistance(temp).value() - r0);
  }

  // Fig. 6: recovery early in void growth -> full recovery, then reverse EM.
  {
    KorhonenSolver s{wire, mat};
    while (!s.ever_nucleated() && in_minutes(s.elapsed()) < 600) {
      s.step(j_fwd, temp, minutes(2));
    }
    s.step(j_fwd, temp, minutes(30));  // short growth
    const double r0 = wire.resistance_at(to_kelvin(temp)).value();
    const double r_peak = s.resistance(temp).value();
    s.step(j_rev, temp, minutes(240));
    const double r_rec = s.resistance(temp).value();
    std::printf("Fig6: dR at rec start=%.2f, after 240min rec dR=%.3f\n",
                r_peak - r0, r_rec - r0);
    // Keep reversing: reverse-current-induced EM at the other end.
    s.step(j_rev, temp, minutes(600));
    std::printf("Fig6: after 600min more reverse: dR=%.2f, anode void=%d, "
                "cathode residue=%.1fnm anode=%.1fnm\n",
                s.resistance(temp).value() - r0,
                s.nucleated(WireEnd::kEnd) ? 1 : 0,
                s.void_at(WireEnd::kStart).total_m() * 1e9,
                s.void_at(WireEnd::kEnd).total_m() * 1e9);
  }

  // Fig. 7: periodic recovery during nucleation delays nucleation ~3x.
  {
    KorhonenSolver s{wire, mat};
    double t_nuc = -1;
    while (in_minutes(s.elapsed()) < 3000) {
      s.step(j_fwd, temp, minutes(60));
      if (s.ever_nucleated()) { t_nuc = in_minutes(s.elapsed()); break; }
      s.step(j_rev, temp, minutes(20));
      if (s.ever_nucleated()) { t_nuc = in_minutes(s.elapsed()); break; }
    }
    std::printf("Fig7: periodic (60f/20r) nucleation at %.0f min\n", t_nuc);
  }

  // Compact model vs PDE nucleation.
  {
    CompactEm c{CompactEmParams{.wire = wire, .material = mat}};
    double t_nuc = -1;
    for (int m = 0; m < 1200 && t_nuc < 0; m += 5) {
      c.step(j_fwd, temp, minutes(5));
      if (c.void_open()) t_nuc = m + 5;
    }
    std::printf("compact: nucleation at %.0f min\n", t_nuc);
  }
  return 0;
}
