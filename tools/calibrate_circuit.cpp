// Development-time check of the assist circuitry against Figs. 9-10.
#include <cstdio>

#include "circuit/assist.hpp"

int main() {
  using namespace dh;
  using namespace dh::circuit;

  AssistCircuitParams p;
  AssistCircuit ac{p};

  for (const auto mode :
       {AssistMode::kNormal, AssistMode::kEmActiveRecovery,
        AssistMode::kBtiActiveRecovery}) {
    const auto op = ac.solve(mode);
    std::printf("%-20s loadVdd=%.3f loadVss=%.3f Igrid=%+.3e A\n",
                to_string(mode), op.load_vdd, op.load_vss, op.grid_current);
  }
  std::printf("BTI recovery bias: %.3f V\n", ac.bti_recovery_bias().value());

  std::printf("\nFig10: load size sweep\n");
  for (int n = 1; n <= 5; ++n) {
    AssistCircuitParams q;
    q.load_units = n;
    AssistCircuit a2{q};
    const double delay = a2.normalized_load_delay(AssistMode::kNormal);
    const double tsw =
        a2.switching_time(AssistMode::kNormal, AssistMode::kEmActiveRecovery)
            .value();
    const double tsw_bti =
        a2.switching_time(AssistMode::kNormal, AssistMode::kBtiActiveRecovery)
            .value();
    std::printf("  N=%d delay=%.3f  switch(N->EM)=%.2f ns  switch(N->BTI)=%.1f ns\n",
                n, delay, tsw * 1e9, tsw_bti * 1e9);
  }
  return 0;
}
