// Development-time calibration check for the BTI model: runs the Table I
// protocol and Fig. 4 cycling patterns and prints model-vs-target so the
// density weights in device/calibration.cpp can be tuned.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstddef>

#include "device/bti_model.hpp"
#include "device/calibration.hpp"

namespace {

// Iterative proportional fitting of the four density segment weights (and
// the permanent generation rate) to the Table I model column.
dh::device::BtiModelParams auto_fit() {
  using namespace dh;
  using namespace dh::device;
  BtiModelParams p = paper_calibrated_bti_params();
  const auto targets = table1_targets();
  const auto stress = paper_conditions::accelerated_stress();
  // Indices of the tunable segments (segment 3 is the deliberate gap).
  const std::size_t seg_for_cond[4] = {0, 2, 4, 6};
  for (int iter = 0; iter < 60; ++iter) {
    double m[4];
    for (int j = 0; j < 4; ++j) {
      BtiModel model{p};
      const auto out = run_stress_recovery(model, stress,
                                           table1_stress_time(),
                                           targets[j].condition,
                                           table1_recovery_time());
      m[j] = out.recovery_fraction();
    }
    double worst = 0.0;
    for (int j = 0; j < 4; ++j) {
      worst = std::max(worst,
                       std::abs(m[j] - targets[j].model_fraction));
    }
    if (worst < 5e-5) break;
    // Segment weights track the per-condition increments.
    auto& w = p.ensemble.density.segment_weights;
    for (int j = 0; j < 4; ++j) {
      const double tgt_inc = targets[j].model_fraction -
                             (j > 0 ? targets[j - 1].model_fraction : 0.0);
      const double got_inc = m[j] - (j > 0 ? m[j - 1] : 0.0);
      if (got_inc > 1e-6) {
        const double ratio = std::clamp(tgt_inc / got_inc, 0.6, 1.6);
        w[seg_for_cond[j]] *= ratio;
      }
    }
    // Permanent share tracks the condition-4 residual.
    const double perm_target = 1.0 - targets[3].model_fraction;
    const double perm_got = 1.0 - m[3];
    if (perm_got > 1e-4) {
      p.permanent.gen_rate_ref_v_per_s *=
          std::clamp(perm_target / perm_got, 0.7, 1.4);
    }
  }
  return p;
}

}  // namespace

int main() {
  using namespace dh;
  using namespace dh::device;

  const auto fitted = auto_fit();
  std::printf("fitted segment weights:");
  for (const double w : fitted.ensemble.density.segment_weights) {
    std::printf(" %.6f", w);
  }
  std::printf("\nfitted gen_rate_ref_v_per_s: %.6e\n\n",
              fitted.permanent.gen_rate_ref_v_per_s);

  const auto stress = paper_conditions::accelerated_stress();
  std::printf("== Table I protocol: 24h stress @ (%.2fV, %.0fC), 6h recovery\n",
              stress.gate_bias.value(), stress.temperature.value());
  for (const auto& target : table1_targets()) {
    BtiModel model{fitted};
    const auto out =
        run_stress_recovery(model, stress, table1_stress_time(),
                            target.condition, table1_recovery_time());
    std::printf(
        "%-22s model=%6.2f%%  target=%6.2f%%  (dVth: %5.1f -> %5.1f mV)\n",
        target.label, out.recovery_fraction() * 100.0,
        target.model_fraction * 100.0,
        out.dvth_after_stress.value() * 1e3,
        out.dvth_after_recovery.value() * 1e3);
  }

  // Breakdown after 24h stress.
  {
    BtiModel model{fitted};
    model.apply(stress, table1_stress_time());
    const auto b = model.breakdown();
    std::printf(
        "after 24h stress: R=%.1f mV, Pu=%.1f mV, Pl=%.1f mV, total=%.1f mV\n",
        b.recoverable.value() * 1e3, b.unlocked.value() * 1e3,
        b.locked.value() * 1e3, b.total().value() * 1e3);
  }

  std::printf("\n== Fig. 4 cycling: stress:recovery patterns (recovery No.4)\n");
  const auto rec = paper_conditions::recovery_no4();
  const struct {
    const char* name;
    double stress_h;
    double rec_h;
  } patterns[] = {{"4h:1h", 4, 1}, {"2h:1h", 2, 1}, {"1h:1h", 1, 1},
                  {"1h:2h", 1, 2}};
  for (const auto& p : patterns) {
    BtiModel model{fitted};
    std::printf("%-6s permanent(mV):", p.name);
    for (int c = 0; c < 8; ++c) {
      model.apply(stress, hours(p.stress_h));
      model.apply(rec, hours(p.rec_h));
      std::printf(" %5.2f", model.delta_vth().value() * 1e3);
    }
    std::printf("\n");
  }
  return 0;
}
