#!/bin/sh
# Crash-recovery smoke test (registered with ctest, label `ckpt`).
#
# Establishes the end-to-end checkpoint contract at the process level:
#   1. an uninterrupted run prints its bit-exact digest line,
#   2. a second run is SIGKILLed mid-flight (no flushes, no atexit),
#   3. ckpt_inspect must validate every snapshot the dead run left,
#   4. re-running the killed command must resume from the surviving
#      checkpoint and print the SAME digest as the uninterrupted run.
#
# usage: crash_recovery_smoke.sh <fig12_system_schedule> <ckpt_inspect> <scratch_dir>
set -eu

BIN="$1"
INSPECT="$2"
SCRATCH="$3"

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/ref" "$SCRATCH/crash"

echo "== reference run (uninterrupted) =="
REF_DIGEST=$("$BIN" --ckpt-demo "$SCRATCH/ref" | grep CKPT_DEMO_DIGEST)
echo "$REF_DIGEST"

echo "== crash run (SIGKILL after 200 quanta) =="
set +e
"$BIN" --ckpt-demo "$SCRATCH/crash" --kill-after-steps 200
status=$?
set -e
# 128 + SIGKILL(9) = 137: the process must die by the signal, not exit.
if [ "$status" -ne 137 ]; then
    echo "FAIL: expected the crash run to die with SIGKILL (status 137), got $status"
    exit 1
fi

echo "== inspecting snapshots left by the dead process =="
"$INSPECT" "$SCRATCH"/crash/*.dhck

echo "== resumed run =="
RESUME_DIGEST=$("$BIN" --ckpt-demo "$SCRATCH/crash" | grep CKPT_DEMO_DIGEST)
echo "$RESUME_DIGEST"

if [ "$REF_DIGEST" != "$RESUME_DIGEST" ]; then
    echo "FAIL: resumed digest differs from uninterrupted reference"
    echo "  reference: $REF_DIGEST"
    echo "  resumed:   $RESUME_DIGEST"
    exit 1
fi

rm -rf "$SCRATCH"
echo "PASS: resume after SIGKILL is bit-identical to the uninterrupted run"
