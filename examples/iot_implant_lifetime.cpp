// IoT / medical-implant lifetime study.
//
// The paper's motivation: "some biomedical applications will require a
// lifetime of more than 50 years for medical implants". This example
// simulates a duty-cycled ULP device and compares three strategies:
//   1. run-to-failure (no recovery),
//   2. conventional power gating (passive recovery during OFF time),
//   3. deep healing (the OFF time is turned into *active* recovery by the
//      assist circuitry, accelerated by the body's warmth).
//
// Build & run:  ./build/examples/iot_implant_lifetime
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/deep_healing.hpp"

namespace {

using namespace dh;
using namespace dh::device;

struct Strategy {
  const char* name;
  BtiCondition off_condition;  // what the device sees while idle
};

/// Simulate `years_total` of duty-cycled operation; returns end-of-life
/// Vth shift (V). The implant senses for 6 min every hour (10% duty).
double simulate(const Strategy& strategy, double years_total,
                BtiModel& model) {
  model.reset();
  const BtiCondition on{Volts{0.7}, Celsius{37.0}};  // near-threshold, body T
  // Compress simulation: one representative day per month (the model's
  // per-bin updates are exact, so scaling hours directly is legitimate).
  const double days_per_step = 30.4;
  const int steps = static_cast<int>(years_total * 12.0);
  for (int s = 0; s < steps; ++s) {
    model.apply(on, hours(2.4 * days_per_step));                  // 10% duty
    model.apply(strategy.off_condition, hours(21.6 * days_per_step));
  }
  return model.delta_vth().value();
}

}  // namespace

int main() {
  std::printf("== 50-year medical implant: BTI margin study ==\n");
  std::printf("device: near-threshold (0.7 V) sensor node, 10%% duty, "
              "37 C body temperature\n\n");

  const Strategy strategies[] = {
      {"run-to-failure (always biased)", {Volts{0.7}, Celsius{37.0}}},
      {"power gating (passive recovery)", {Volts{0.0}, Celsius{37.0}}},
      {"deep healing (active recovery)", {Volts{-0.3}, Celsius{37.0}}},
  };

  // In the near/sub-threshold regime the paper stresses that ON-current
  // sensitivity to Vth is much higher: a ULP design might only tolerate a
  // ~15 mV shift before timing collapses.
  const Volts budget{0.015};
  RingOscillator ro{RingOscillatorParams{
      .vdd = Volts{0.7}, .vth0 = Volts{0.30}, .alpha = 1.2,
      .fresh_frequency = Hertz{4e6}}};

  Table table({"strategy", "dVth @10y", "dVth @50y", "freq loss @50y",
               "meets 50y budget?"});
  for (const auto& s : strategies) {
    auto model = BtiModel::paper_calibrated();
    // Note: strategy 1 keeps the device biased during "off" time, the
    // worst case for NBTI.
    const double dv10 = simulate(s, 10.0, model);
    auto model50 = BtiModel::paper_calibrated();
    const double dv50 = simulate(s, 50.0, model50);
    table.add_row({s.name, Table::num(dv10 * 1e3, 2) + " mV",
                   Table::num(dv50 * 1e3, 2) + " mV",
                   Table::pct(ro.degradation(Volts{dv50}), 2),
                   dv50 <= budget.value() ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf(
      "\nThe OFF periods are identical in all three strategies — deep\n"
      "healing differs only in *what the circuit does with them*, which is\n"
      "exactly the paper's point: sleep time becomes healing time.\n");
  return 0;
}
