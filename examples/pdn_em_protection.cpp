// Power-delivery-network EM protection with the assist circuitry.
//
// The paper: "power rails suffer from single-direction DC current mostly,
// [so] we focus on EM-induced effects in power delivery networks". This
// example ages a local PDN mesh under a hot, high-current workload and
// compares (a) unprotected operation against (b) the assist circuitry
// alternating into EM Active Recovery mode on a duty cycle planned by the
// RejuvenationPlanner — the system stays fully operational in both cases.
//
// Build & run:  ./build/examples/pdn_em_protection
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/deep_healing.hpp"

int main() {
  using namespace dh;
  using namespace dh::pdn;

  std::printf("== Local PDN under accelerated EM stress ==\n\n");

  // Plan the EM recovery duty for the worst expected segment current.
  core::EmPlanningInput plan_in;
  plan_in.wire = PdnParams{}.segment_wire;
  plan_in.material = em::paper_calibrated_em_material();
  plan_in.operating_density = mega_amps_per_cm2(12.0);  // pad segments
  plan_in.temperature = Celsius{230.0};
  plan_in.lifetime = hours(50.0);
  plan_in.stress_budget = 0.6;
  const core::EmSchedule plan = core::plan_em_recovery(plan_in);
  std::printf("planned duty: %.1f min forward / %.1f min reverse "
              "(nucleation margin %.1fx)\n\n",
              in_minutes(plan.forward_interval),
              in_minutes(plan.reverse_interval),
              plan.nucleation_margin_factor);

  const auto run = [&](bool protect) {
    AgingPdn pdn{PdnParams{}, em::paper_calibrated_em_material()};
    const std::vector<double> loads(pdn.grid().node_count(), 0.003);
    const Seconds quantum = minutes(30.0);
    const double cycle = plan.forward_interval.value() +
                         plan.reverse_interval.value();
    const double fwd_share =
        cycle > 0.0 ? plan.forward_interval.value() / cycle : 1.0;
    double t = 0.0;
    while (t < hours(50.0).value()) {
      if (protect && cycle > 0.0) {
        // Apply the planned duty within each quantum.
        pdn.step(loads, Celsius{230.0},
                 Seconds{quantum.value() * fwd_share}, false);
        pdn.step(loads, Celsius{230.0},
                 Seconds{quantum.value() * (1.0 - fwd_share)}, true);
      } else {
        pdn.step(loads, Celsius{230.0}, quantum, false);
      }
      t += quantum.value();
    }
    return pdn.stats();
  };

  const AgingPdnStats unprotected = run(false);
  const AgingPdnStats protected_ = run(true);

  Table table({"metric", "unprotected", "with EM active recovery"});
  table.add_row({"nucleated segments",
                 std::to_string(unprotected.nucleated_segments),
                 std::to_string(protected_.nucleated_segments)});
  table.add_row({"broken segments",
                 std::to_string(unprotected.broken_segments),
                 std::to_string(protected_.broken_segments)});
  table.add_row({"max void length (nm)",
                 Table::num(unprotected.max_void_len_m * 1e9, 1),
                 Table::num(protected_.max_void_len_m * 1e9, 1)});
  const auto drop_cell = [](const AgingPdnStats& st) {
    return st.broken_segments > 0 ? std::string("grid failed (open)")
                                  : Table::num(st.worst_drop_v * 1e3, 1);
  };
  table.add_row({"worst IR drop (mV, 230C oven)", drop_cell(unprotected),
                 drop_cell(protected_)});
  table.print(std::cout);

  std::printf(
      "\nEM recovery happens while the load keeps running (the grid\n"
      "current reverses with the same magnitude), so protection costs\n"
      "only the mode-switch overhead measured in Fig. 10.\n");
  return 0;
}
