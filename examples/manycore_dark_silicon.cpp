// Many-core dark-silicon rotation (the paper's Fig. 12a).
//
// A 4x4 many-core chip can only power a subset of its cores ("dark
// silicon"). This example turns that constraint into an asset: parked
// cores enter BTI active recovery, rotate across the die, and are healed
// faster by the heat of their active neighbours. Compare the resulting
// timing guardband against a no-recovery baseline and plain power gating.
//
// Build & run:  ./build/examples/manycore_dark_silicon
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/deep_healing.hpp"

int main() {
  using namespace dh;
  using namespace dh::sched;

  std::printf("== 4x4 many-core, 2 dark cores, 2 simulated years ==\n\n");

  SystemParams params;
  params.rows = 4;
  params.cols = 4;
  params.quantum = hours(6.0);
  params.workload.kind = WorkloadKind::kDiurnal;
  params.workload.utilization = 0.75;
  params.workload.period = hours(24.0);
  // A dense, hot design: ~100 C hot spots. The heat is what makes the
  // recovery intervals effective (Fig. 12a's heat-assisted healing) —
  // the same Arrhenius terms that accelerate wearout accelerate healing.
  params.core.dynamic_power_peak = Watts{2.2};
  params.thermal.ambient = Celsius{55.0};
  params.thermal.vertical_g_w_per_k = 0.07;

  struct Entry {
    const char* label;
    std::unique_ptr<RecoveryPolicy> policy;
  };
  Entry entries[] = {
      {"no recovery (worst-case margin)", make_no_recovery_policy()},
      {"power gating (passive)", make_passive_idle_policy()},
      {"periodic active recovery (25%)",
       make_periodic_active_policy({.period = hours(24.0),
                                    .bti_recovery_fraction = 0.25,
                                    .em_recovery_duty = 0.2})},
      {"dark-silicon rotation (deep healing)",
       make_dark_silicon_policy({.spares = 2,
                                 .rotation_period = hours(6.0),
                                 .em_recovery_duty = 0.2})},
  };

  Table table({"policy", "guardband", "final degradation", "availability",
               "mean T (C)", "energy (MJ)"});
  for (auto& e : entries) {
    SystemSimulator sim{params, std::move(e.policy)};
    sim.run(years(2.0));
    const SystemSummary s = sim.summary();
    table.add_row({e.label, Table::pct(s.guardband_fraction, 2),
                   Table::pct(s.final_degradation, 2),
                   Table::pct(s.availability, 1),
                   Table::num(s.mean_temperature_c, 1),
                   Table::num(s.energy_joules / 1e6, 1)});
  }
  table.print(std::cout);

  std::printf(
      "\nReadings: passive gating cannot beat the baseline on a busy chip\n"
      "(no idle time means no passive recovery). Scheduled periodic active\n"
      "recovery cuts the required wearout guardband by about a third for a\n"
      "quarter of capacity (Fig. 12b's margin reduction). Naive rotation\n"
      "keeps availability high but displaces load onto the remaining cores,\n"
      "which ages them nearly as fast as it heals the parked ones — the\n"
      "paper's point that recovery must be scheduled *in time and deeply*,\n"
      "not merely opportunistically.\n");
  return 0;
}
