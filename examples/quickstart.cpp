// Quickstart: age a transistor the way the paper's FPGA experiment does,
// then heal it four ways (Table I's four recovery conditions) and show
// that scheduled balanced recovery keeps it practically fresh (Fig. 4).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/deep_healing.hpp"

int main() {
  using namespace dh;
  using namespace dh::device;

  std::printf("== Deep Healing quickstart ==\n\n");

  // 1. Stress a fresh device for 24 h at the accelerated condition.
  auto dev = BtiModel::paper_calibrated();
  const auto stress = paper_conditions::accelerated_stress();
  dev.apply(stress, hours(24.0));
  std::printf("after 24h stress @ (%.1f V, %.0f C): dVth = %.1f mV\n",
              stress.gate_bias.value(), stress.temperature.value(),
              dev.delta_vth().value() * 1e3);

  // 2. Try the paper's four recovery conditions (6 h each).
  const BtiCondition conditions[] = {
      paper_conditions::recovery_no1(), paper_conditions::recovery_no2(),
      paper_conditions::recovery_no3(), paper_conditions::recovery_no4()};
  const char* names[] = {"passive (20C, 0V)", "active (20C, -0.3V)",
                         "accelerated (110C, 0V)",
                         "active+accelerated (110C, -0.3V)"};
  for (int i = 0; i < 4; ++i) {
    auto probe = BtiModel::paper_calibrated();
    const auto out = run_stress_recovery(probe, stress, hours(24.0),
                                         conditions[i], hours(6.0));
    std::printf("  6h %-34s recovers %5.1f%%\n", names[i],
                out.recovery_fraction() * 100.0);
  }

  // 3. The deep-healing insight: schedule recovery *in time* and even the
  //    permanent component never forms.
  auto healed = BtiModel::paper_calibrated();
  for (int cycle = 0; cycle < 8; ++cycle) {
    healed.apply(stress, hours(1.0));
    healed.apply(paper_conditions::recovery_no4(), hours(1.0));
  }
  std::printf(
      "\nafter 8x (1h stress : 1h active recovery): residual = %.2f mV "
      "(practically fresh)\n",
      healed.delta_vth().value() * 1e3);

  // 4. Watch the frequency through the paper's measurement structure.
  RingOscillator ro{RingOscillatorParams{.vdd = Volts{1.1}}};
  std::printf("ring-oscillator degradation if left unhealed: %.2f%%\n",
              ro.degradation(dev.delta_vth()) * 100.0);
  std::printf("ring-oscillator degradation with deep healing: %.2f%%\n",
              ro.degradation(healed.delta_vth()) * 100.0);
  return 0;
}
