// Closed-loop deep healing: sensors -> health monitor -> recovery action.
//
// The feedback loop of the paper's Fig. 12b, end to end: an RO-pair BTI
// sensor and an EM canary bank watch a hot block; a health monitor smooths
// the noisy readings; when the BTI alarm trips the block takes an active
// recovery nap, and when the first canary trips the grid starts EM
// recovery duty cycling.
//
// Build & run:  ./build/examples/closed_loop_healing
#include <cstdio>

#include "core/deep_healing.hpp"

int main() {
  using namespace dh;
  std::printf("== Closed-loop healing: 60 days at 95 C, heavy duty ==\n\n");

  sensors::RoPairSensor bti_sensor{sensors::RoPairSensorParams{}, Rng{11}};
  sensors::HealthMonitor bti_monitor{
      sensors::HealthMonitorParams{.trip = 0.012, .clear = 0.006}};
  sensors::EmCanaryParams cp;
  cp.mission_wire = em::paper_wire();
  cp.material = em::paper_calibrated_em_material();
  sensors::EmCanaryBank canaries{cp};

  // The block being protected.
  auto block = device::BtiModel::paper_calibrated();
  auto shadow = device::BtiModel::paper_calibrated();  // no-loop baseline
  em::CompactEm rail{em::CompactEmParams{.wire = cp.mission_wire,
                                         .material = cp.material}};

  const Celsius t{95.0};         // logic block temperature
  const Celsius t_rail{200.0};   // power-rail hotspot near a hot via
  const auto j_hot = mega_amps_per_cm2(5.5);
  const Seconds quantum = hours(6.0);
  int bti_naps = 0;
  bool em_duty = false;

  for (int step = 0; step < 240; ++step) {  // 60 days
    const bool nap = bti_monitor.alarm();
    if (nap) {
      ++bti_naps;
      block.apply({Volts{-0.3}, t}, quantum);
      bti_sensor.step(0.0, Volts{1.1}, t, quantum);
    } else {
      block.apply({Volts{1.1}, t}, quantum);
      bti_sensor.step(1.0, Volts{1.1}, t, quantum);
    }
    shadow.apply({Volts{1.1}, t}, quantum);
    (void)bti_monitor.update(bti_sensor.measure().value());

    // EM side: once the first canary trips, alternate the rail current.
    canaries.step(j_hot, t_rail, quantum);
    if (!em_duty && canaries.tripped() > 0) {
      em_duty = true;
      std::printf("day %5.1f: EM canary tripped -> starting recovery duty "
                  "(mission life consumed ~%.0f%%)\n",
                  step * 0.25, canaries.estimated_life_consumed() * 100.0);
    }
    if (em_duty) {
      rail.step(j_hot, t_rail, Seconds{quantum.value() * 0.55});
      rail.step(AmpsPerM2{-j_hot.value()}, t_rail,
                Seconds{quantum.value() * 0.45});
    } else {
      rail.step(j_hot, t_rail, quantum);
    }
    if (step % 40 == 0) {
      std::printf("day %5.1f: sensed dVth=%5.1f mV (true %5.1f), alarm=%d, "
                  "rail stress=%4.0f%% of critical\n",
                  step * 0.25, bti_monitor.estimate() * 1e3,
                  block.delta_vth().value() * 1e3,
                  bti_monitor.alarm() ? 1 : 0,
                  rail.end_stress().value() /
                      cp.material.critical_stress.value() * 100.0);
    }
  }

  std::printf("\nafter 60 days: block dVth = %.1f mV (%d recovery naps), "
              "rail %s (stress %.0f%% of critical)\n",
              block.delta_vth().value() * 1e3, bti_naps,
              rail.void_open() ? "NUCLEATED" : "healthy",
              rail.end_stress().value() /
                  cp.material.critical_stress.value() * 100.0);
  std::printf("Without the loop the block would sit at %.1f mV and the "
              "rail would have nucleated within ~2 days — the sensors turn "
              "the paper's schedule into feedback control.\n",
              shadow.delta_vth().value() * 1e3);
  return 0;
}
