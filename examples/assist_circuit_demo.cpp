// Assist-circuitry walkthrough: solve the Fig. 8 scheme in all three
// modes with the built-in MNA circuit simulator and print the operating
// points and the mode-transition waveform (Fig. 9's content as text).
//
// Build & run:  ./build/examples/assist_circuit_demo
#include <cstdio>
#include <iostream>

#include "circuit/assist.hpp"
#include "common/table.hpp"

int main() {
  using namespace dh;
  using namespace dh::circuit;

  AssistCircuit assist{AssistCircuitParams{}};

  std::printf("== Assist circuitry (Fig. 8) operating points ==\n\n");
  Table table({"mode", "load VDD (V)", "load VSS (V)", "grid current (mA)",
               "load keeps running?"});
  for (const auto mode :
       {AssistMode::kNormal, AssistMode::kEmActiveRecovery,
        AssistMode::kBtiActiveRecovery}) {
    const AssistOperating op = assist.solve(mode);
    table.add_row({to_string(mode), Table::num(op.load_vdd, 3),
                   Table::num(op.load_vss, 3),
                   Table::num(op.grid_current * 1e3, 3),
                   mode == AssistMode::kBtiActiveRecovery ? "idle (healing)"
                                                          : "yes"});
  }
  table.print(std::cout);

  std::printf("\nBTI recovery bias delivered to the idle load: %.3f V "
              "(the paper needed only -0.3 V)\n",
              assist.bti_recovery_bias().value());

  std::printf("\n== Normal -> EM recovery transition (grid current) ==\n");
  const TransientResult tr = assist.transition(
      AssistMode::kNormal, AssistMode::kEmActiveRecovery, Seconds{2e-9},
      Seconds{40e-9}, Seconds{2e-10});
  const auto& i = tr.trace("grid_current");
  for (double t = 0.0; t <= 40e-9; t += 4e-9) {
    const double amps = i.sample(Seconds{t});
    const int bars = static_cast<int>((amps + 5e-4) / 1e-4 * 4.0);
    std::printf("  t=%5.1f ns  I=%+9.3e A  |", t * 1e9, amps);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nswitching time (Normal->EM): %.1f ns\n",
              assist
                  .switching_time(AssistMode::kNormal,
                                  AssistMode::kEmActiveRecovery)
                  .value() *
                  1e9);
  return 0;
}
