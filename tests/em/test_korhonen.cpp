#include "em/korhonen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"

namespace dh::em {
namespace {

KorhonenSolver make_solver() {
  return KorhonenSolver{paper_wire(), paper_calibrated_em_material()};
}

TEST(Korhonen, FreshWireHasNoStressOrVoid) {
  const KorhonenSolver s = make_solver();
  EXPECT_DOUBLE_EQ(s.stress_at(WireEnd::kStart).value(), 0.0);
  EXPECT_FALSE(s.nucleated(WireEnd::kStart));
  EXPECT_FALSE(s.broken());
  EXPECT_DOUBLE_EQ(s.total_void_length().value(), 0.0);
}

TEST(Korhonen, ForwardCurrentBuildsTensionAtCathode) {
  KorhonenSolver s = make_solver();
  s.step(paper_em_conditions::stress_density(),
         paper_em_conditions::chamber(), hours(1.0));
  EXPECT_GT(s.stress_at(WireEnd::kStart).value(), 0.0);
  EXPECT_LT(s.stress_at(WireEnd::kEnd).value(), 0.0);  // compression at anode
}

TEST(Korhonen, ReverseCurrentMirrorsTheProfile) {
  KorhonenSolver fwd = make_solver();
  KorhonenSolver rev = make_solver();
  fwd.step(paper_em_conditions::stress_density(),
           paper_em_conditions::chamber(), hours(2.0));
  rev.step(paper_em_conditions::reverse_density(),
           paper_em_conditions::chamber(), hours(2.0));
  EXPECT_NEAR(fwd.stress_at(WireEnd::kStart).value(),
              rev.stress_at(WireEnd::kEnd).value(),
              1e-6 * std::abs(fwd.stress_at(WireEnd::kStart).value()));
}

TEST(Korhonen, StressIntegralConservedWhileBlocked) {
  // d/dt integral(sigma) = q(L) - q(0) = 0 with blocked ends.
  KorhonenSolver s = make_solver();
  s.step(paper_em_conditions::stress_density(),
         paper_em_conditions::chamber(), hours(3.0));
  ASSERT_FALSE(s.ever_nucleated());
  const double integral = s.stress_integral();
  const double peak = std::abs(s.stress_at(WireEnd::kStart).value());
  // Integral stays near zero relative to peak*length scale.
  EXPECT_LT(std::abs(integral), 1e-3 * peak * s.wire().length.value());
}

TEST(Korhonen, EarlyStressFollowsSqrtTime) {
  KorhonenSolver s = make_solver();
  const auto j = paper_em_conditions::stress_density();
  const auto t = paper_em_conditions::chamber();
  s.step(j, t, hours(1.0));
  const double s1 = s.stress_at(WireEnd::kStart).value();
  s.step(j, t, hours(3.0));  // total 4 h
  const double s4 = s.stress_at(WireEnd::kStart).value();
  EXPECT_NEAR(s4 / s1, 2.0, 0.1);  // sqrt(4/1)
}

TEST(Korhonen, NucleationNearAnalyticPrediction) {
  KorhonenSolver s = make_solver();
  const Seconds analytic = CompactEm::analytic_nucleation_time(
      s.material(), s.wire(), paper_em_conditions::stress_density(),
      paper_em_conditions::chamber());
  while (!s.ever_nucleated() && s.elapsed().value() < 3.0 * analytic.value()) {
    s.step(paper_em_conditions::stress_density(),
           paper_em_conditions::chamber(), minutes(5.0));
  }
  ASSERT_TRUE(s.ever_nucleated());
  EXPECT_NEAR(s.elapsed().value(), analytic.value(), 0.15 * analytic.value());
}

TEST(Korhonen, ResistanceFlatDuringNucleationPhase) {
  KorhonenSolver s = make_solver();
  const auto t = paper_em_conditions::chamber();
  const double r0 = s.resistance(t).value();
  s.step(paper_em_conditions::stress_density(), t, hours(4.0));
  ASSERT_FALSE(s.ever_nucleated());
  EXPECT_NEAR(s.resistance(t).value(), r0, 1e-9);
}

TEST(Korhonen, VoidGrowsAndResistanceRisesAfterNucleation) {
  KorhonenSolver s = make_solver();
  const auto j = paper_em_conditions::stress_density();
  const auto t = paper_em_conditions::chamber();
  while (!s.ever_nucleated() && s.elapsed().value() < hours(10.0).value()) {
    s.step(j, t, minutes(10.0));
  }
  ASSERT_TRUE(s.ever_nucleated());
  const double r_at_nuc = s.resistance(t).value();
  s.step(j, t, hours(2.0));
  EXPECT_GT(s.resistance(t).value(), r_at_nuc + 0.1);
  EXPECT_GT(s.void_at(WireEnd::kStart).total_m(), 0.0);
}

TEST(Korhonen, PassiveRecoveryIsNearlyFlat) {
  KorhonenSolver s = make_solver();
  const auto j = paper_em_conditions::stress_density();
  const auto t = paper_em_conditions::chamber();
  s.step(j, t, minutes(600.0));
  ASSERT_TRUE(s.ever_nucleated());
  const double r_peak = s.resistance(t).value();
  const double r0 = s.wire().resistance_at(to_kelvin(t)).value();
  s.step(AmpsPerM2{0.0}, t, minutes(120.0));
  const double healed = r_peak - s.resistance(t).value();
  // Passive recovery undoes only a small share of the wearout.
  EXPECT_LT(healed, 0.25 * (r_peak - r0));
}

TEST(Korhonen, ActiveRecoveryHealsTheVoid) {
  KorhonenSolver s = make_solver();
  const auto t = paper_em_conditions::chamber();
  s.step(paper_em_conditions::stress_density(), t, minutes(600.0));
  const double r_peak = s.resistance(t).value();
  const double r0 = s.wire().resistance_at(to_kelvin(t)).value();
  s.step(paper_em_conditions::reverse_density(), t, minutes(120.0));
  const double frac =
      (r_peak - s.resistance(t).value()) / (r_peak - r0);
  EXPECT_GT(frac, 0.5);
}

TEST(Korhonen, BreaksWhenVoidReachesCriticalLength) {
  KorhonenSolver s = make_solver();
  const auto j = paper_em_conditions::stress_density();
  const auto t = paper_em_conditions::chamber();
  while (!s.broken() && s.elapsed().value() < hours(40.0).value()) {
    s.step(j, t, minutes(30.0));
  }
  EXPECT_TRUE(s.broken());
  EXPECT_GE(s.resistance(t).value(), 1e6);
  // Stepping a broken wire is a no-op apart from time accounting.
  const double elapsed = s.elapsed().value();
  s.step(j, t, hours(1.0));
  EXPECT_TRUE(s.broken());
  EXPECT_GT(s.elapsed().value(), elapsed);
}

TEST(Korhonen, ColdWireAgesVastlySlower) {
  KorhonenSolver hot = make_solver();
  KorhonenSolver cold = make_solver();
  const auto j = paper_em_conditions::stress_density();
  hot.step(j, Celsius{230.0}, hours(2.0));
  cold.step(j, Celsius{105.0}, hours(2.0));
  EXPECT_GT(hot.stress_at(WireEnd::kStart).value(),
            20.0 * cold.stress_at(WireEnd::kStart).value());
}

TEST(Korhonen, NegativeDtRejected) {
  KorhonenSolver s = make_solver();
  EXPECT_THROW(s.step(AmpsPerM2{0.0}, Celsius{230.0}, Seconds{-1.0}), Error);
}

TEST(Korhonen, GridValidation) {
  KorhonenGridParams g;
  g.first_cell = Meters{-1.0};
  EXPECT_THROW(
      (KorhonenSolver{paper_wire(), paper_calibrated_em_material(), g}),
      Error);
}

}  // namespace
}  // namespace dh::em
