#include "em/em_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::em {
namespace {

TEST(EmSensor, MeasurementNearTruth) {
  EmSensor s{EmSensorParams{}, Rng{1}};
  for (int i = 0; i < 100; ++i) {
    const double r = s.measure(Ohms{65.26}).value();
    EXPECT_NEAR(r, 65.26, 0.3);
  }
}

TEST(EmSensor, QuantizedToResolution) {
  EmSensorParams p;
  p.resolution = Ohms{0.05};
  p.relative_noise = 0.0;
  EmSensor s{p, Rng{2}};
  const double r = s.measure(Ohms{35.76}).value();
  EXPECT_NEAR(std::fmod(r + 1e-12, 0.05), 0.0, 1e-9);
}

TEST(EmSensor, DeterministicForSeed) {
  EmSensor a{EmSensorParams{}, Rng{42}};
  EmSensor b{EmSensorParams{}, Rng{42}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.measure(Ohms{50.0}).value(),
                     b.measure(Ohms{50.0}).value());
  }
}

TEST(EmSensor, RejectsNonPositiveResolution) {
  EmSensorParams p;
  p.resolution = Ohms{0.0};
  EXPECT_THROW((EmSensor{p, Rng{1}}), Error);
}

TEST(EmSensor, PaperConditionsConstants) {
  EXPECT_DOUBLE_EQ(paper_em_conditions::chamber().value(), 230.0);
  EXPECT_DOUBLE_EQ(paper_em_conditions::stress_density().value(), 7.96e10);
  EXPECT_DOUBLE_EQ(paper_em_conditions::reverse_density().value(), -7.96e10);
}

}  // namespace
}  // namespace dh::em
