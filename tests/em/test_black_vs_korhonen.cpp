// Cross-model validation: Black's empirical law (n = 2 current exponent,
// Arrhenius temperature acceleration) must *emerge* from the Korhonen
// physics — nucleation-limited TTF scales as 1/j^2 and with the diffusion
// activation energy. This pins the two EM models in the library to each
// other across the operating space.
#include <gtest/gtest.h>

#include <cmath>

#include "em/black.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"

namespace dh::em {
namespace {

/// PDE nucleation time at (j, T), found by bisection-free stepping.
double pde_nucleation_s(double j_ma, double t_c) {
  KorhonenSolver s{paper_wire(), paper_calibrated_em_material()};
  const AmpsPerM2 j = mega_amps_per_cm2(j_ma);
  const Celsius t{t_c};
  const double guess =
      CompactEm::analytic_nucleation_time(s.material(), s.wire(), j, t)
          .value();
  const Seconds step{std::max(60.0, guess / 200.0)};
  while (!s.ever_nucleated() && s.elapsed().value() < 5.0 * guess) {
    s.step(j, t, step);
  }
  return s.ever_nucleated() ? s.elapsed().value() : -1.0;
}

struct SweepPoint {
  double j_ma;
  double t_c;
};

class KorhonenSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(KorhonenSweep, NucleationMatchesAnalyticAcrossConditions) {
  const auto [j_ma, t_c] = GetParam();
  const double analytic =
      CompactEm::analytic_nucleation_time(paper_calibrated_em_material(),
                                          paper_wire(),
                                          mega_amps_per_cm2(j_ma),
                                          Celsius{t_c})
          .value();
  const double pde = pde_nucleation_s(j_ma, t_c);
  ASSERT_GT(pde, 0.0);
  EXPECT_NEAR(pde, analytic, 0.2 * analytic)
      << "j=" << j_ma << " MA/cm^2, T=" << t_c << " C";
}

INSTANTIATE_TEST_SUITE_P(Conditions, KorhonenSweep,
                         ::testing::Values(SweepPoint{7.96, 230.0},
                                           SweepPoint{12.0, 230.0},
                                           SweepPoint{5.0, 230.0},
                                           SweepPoint{7.96, 250.0},
                                           SweepPoint{7.96, 210.0}));

TEST(BlackVsKorhonen, CurrentExponentTwoEmergesFromPde) {
  const double t1 = pde_nucleation_s(5.0, 230.0);
  const double t2 = pde_nucleation_s(10.0, 230.0);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t2, 0.0);
  // Black with n = 2: doubling j quarters the lifetime.
  EXPECT_NEAR(t1 / t2, 4.0, 0.5);
}

TEST(BlackVsKorhonen, TemperatureAccelerationMatchesDiffusionEa) {
  const double t_cool = pde_nucleation_s(7.96, 210.0);
  const double t_hot = pde_nucleation_s(7.96, 240.0);
  ASSERT_GT(t_cool, 0.0);
  ASSERT_GT(t_hot, 0.0);
  // Nucleation time ~ 1/kappa ~ T/Da: the dominant factor is the
  // diffusion Arrhenius (0.9 eV); compare against a Black model with the
  // same Ea.
  const BlackModel black{BlackParams::from_reference(
      Seconds{t_cool}, mega_amps_per_cm2(7.96), Celsius{210.0})};
  const double predicted =
      black.median_ttf(mega_amps_per_cm2(7.96), Celsius{240.0}).value();
  EXPECT_NEAR(t_hot, predicted, 0.25 * predicted);
}

TEST(BlackVsKorhonen, BlackCalibratedFromPdeExtrapolatesToUseConditions) {
  // Practical workflow: calibrate Black at accelerated conditions from
  // the physics solver, then extrapolate to operating conditions. The
  // compact analytic time must agree with the extrapolation.
  const double t_ref = pde_nucleation_s(7.96, 230.0);
  const BlackModel black{BlackParams::from_reference(
      Seconds{t_ref}, mega_amps_per_cm2(7.96), Celsius{230.0})};
  const double use =
      black.median_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}).value();
  const double analytic =
      CompactEm::analytic_nucleation_time(paper_calibrated_em_material(),
                                          paper_wire(),
                                          mega_amps_per_cm2(2.0),
                                          Celsius{105.0})
          .value();
  // Within 2x over a >1000x extrapolation (the residual is the T/kT
  // prefactor Black's pure-exponential form drops).
  EXPECT_GT(use, 0.5 * analytic);
  EXPECT_LT(use, 2.0 * analytic);
}

}  // namespace
}  // namespace dh::em
