// AC/bipolar-stress EM properties: the frequency effect ([21], [22] in
// the paper's reference list) that underpins EM Active Recovery duty
// cycling.
#include <gtest/gtest.h>

#include <cmath>

#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"

namespace dh::em {
namespace {

/// Run a 50% bipolar square wave for `total`; returns the peak |stress|
/// seen at either end.
double peak_stress_under_ac(Seconds half_period, Seconds total) {
  KorhonenSolver s{paper_wire(), paper_calibrated_em_material()};
  const auto t = paper_em_conditions::chamber();
  bool forward = true;
  double peak = 0.0;
  while (s.elapsed().value() < total.value() && !s.ever_nucleated()) {
    s.step(forward ? paper_em_conditions::stress_density()
                   : paper_em_conditions::reverse_density(),
           t, half_period);
    forward = !forward;
    peak = std::max(peak, std::abs(s.stress_at(WireEnd::kStart).value()));
    peak = std::max(peak, std::abs(s.stress_at(WireEnd::kEnd).value()));
  }
  return peak;
}

TEST(AcEm, FasterAlternationLowersPeakStress) {
  const double slow = peak_stress_under_ac(minutes(120.0), hours(12.0));
  const double fast = peak_stress_under_ac(minutes(30.0), hours(12.0));
  EXPECT_LT(fast, slow);
}

TEST(AcEm, RippleScalesAsSqrtPeriod) {
  const double p120 = peak_stress_under_ac(minutes(120.0), hours(16.0));
  const double p30 = peak_stress_under_ac(minutes(30.0), hours(16.0));
  // sqrt(120/30) = 2.
  EXPECT_NEAR(p120 / p30, 2.0, 0.35);
}

TEST(AcEm, BalancedAcIsImmortalWhereDcIsNot) {
  // DC nucleates within ~6 h at the paper's conditions; a balanced 30 min
  // square wave never approaches critical stress.
  KorhonenSolver dc{paper_wire(), paper_calibrated_em_material()};
  const auto t = paper_em_conditions::chamber();
  dc.step(paper_em_conditions::stress_density(), t, hours(8.0));
  EXPECT_TRUE(dc.ever_nucleated());

  const double peak = peak_stress_under_ac(minutes(30.0), hours(12.0));
  EXPECT_LT(peak, 0.5 * paper_calibrated_em_material()
                            .critical_stress.value());
}

TEST(AcEm, AsymmetricDutyStillAges) {
  // 2:1 forward:reverse leaves a net wind: nucleation happens, just
  // later than DC (this is the Fig. 7 regime).
  KorhonenSolver s{paper_wire(), paper_calibrated_em_material()};
  const auto t = paper_em_conditions::chamber();
  while (!s.ever_nucleated() && s.elapsed().value() < hours(48.0).value()) {
    s.step(paper_em_conditions::stress_density(), t, minutes(60.0));
    if (s.ever_nucleated()) break;
    s.step(paper_em_conditions::reverse_density(), t, minutes(30.0));
  }
  EXPECT_TRUE(s.ever_nucleated());
  EXPECT_GT(s.elapsed().value(), hours(8.0).value());
}

/// Property sweep: for any half-period, the stress stays symmetric
/// between the two ends over full cycles (no net transport).
class AcSymmetry : public ::testing::TestWithParam<double> {};

TEST_P(AcSymmetry, FullCyclesLeaveNoNetEndBias) {
  const double half_min = GetParam();
  KorhonenSolver s{paper_wire(), paper_calibrated_em_material()};
  const auto t = paper_em_conditions::chamber();
  for (int cycle = 0; cycle < 4; ++cycle) {
    s.step(paper_em_conditions::stress_density(), t, minutes(half_min));
    s.step(paper_em_conditions::reverse_density(), t, minutes(half_min));
  }
  ASSERT_FALSE(s.ever_nucleated());
  // After whole cycles the residual profile is the tail of the last
  // (reverse) half-cycle: anti-symmetric, bounded by the single-cycle
  // ripple.
  const double a = s.stress_at(WireEnd::kStart).value();
  const double b = s.stress_at(WireEnd::kEnd).value();
  EXPECT_NEAR(a, -b, 0.05 * std::max(std::abs(a), std::abs(b)) + 1e3);
}

INSTANTIATE_TEST_SUITE_P(HalfPeriods, AcSymmetry,
                         ::testing::Values(15.0, 30.0, 60.0));

}  // namespace
}  // namespace dh::em
