#include "em/material.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "em/compact_em.hpp"
#include "em/wire.hpp"

namespace dh::em {
namespace {

TEST(Material, DiffusivityIsArrhenius) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const double d_hot = m.diffusivity(to_kelvin(Celsius{230.0}));
  const double d_cold = m.diffusivity(to_kelvin(Celsius{105.0}));
  EXPECT_GT(d_hot, d_cold * 100.0);  // 0.9 eV over that span is huge
}

TEST(Material, KappaPositiveAndTemperatureAccelerated) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const double k1 = m.kappa(to_kelvin(Celsius{100.0}));
  const double k2 = m.kappa(to_kelvin(Celsius{230.0}));
  EXPECT_GT(k1, 0.0);
  EXPECT_GT(k2, k1);
}

TEST(Material, DrivingForceLinearInCurrentDensity) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const double rho = 3e-8;
  const double g1 = m.driving_force(rho, mega_amps_per_cm2(1.0));
  const double g4 = m.driving_force(rho, mega_amps_per_cm2(4.0));
  EXPECT_NEAR(g4, 4.0 * g1, 1e-9 * g4);
  // Sign follows the current.
  EXPECT_LT(m.driving_force(rho, mega_amps_per_cm2(-1.0)), 0.0);
}

TEST(Material, DriftVelocityPaperScale) {
  // At 230 C and 7.96 MA/cm^2 the drift velocity should be a few nm/h —
  // that is what makes Fig. 5's ~0.4 Ohm/h with the liner model.
  const EmMaterialParams m = paper_calibrated_em_material();
  const WireGeometry w = paper_wire();
  const Kelvin t = to_kelvin(Celsius{230.0});
  const double v =
      m.drift_velocity(t, w.resistivity_at(t), mega_amps_per_cm2(7.96));
  EXPECT_GT(v * 3600e9, 1.0);   // > 1 nm/h
  EXPECT_LT(v * 3600e9, 30.0);  // < 30 nm/h
}

TEST(Material, NucleationTimeMatchesPaperTimescale) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const WireGeometry w = paper_wire();
  const Seconds t_nuc = CompactEm::analytic_nucleation_time(
      m, w, mega_amps_per_cm2(7.96), Celsius{230.0});
  // Fig. 5's void nucleation phase is on the ~6 h scale.
  EXPECT_GT(in_minutes(t_nuc), 200.0);
  EXPECT_LT(in_minutes(t_nuc), 500.0);
}

TEST(Material, NucleationTimeScalesInverseSquareOfCurrent) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const WireGeometry w = paper_wire();
  const double t1 = CompactEm::analytic_nucleation_time(
                        m, w, mega_amps_per_cm2(4.0), Celsius{230.0})
                        .value();
  const double t2 = CompactEm::analytic_nucleation_time(
                        m, w, mega_amps_per_cm2(8.0), Celsius{230.0})
                        .value();
  EXPECT_NEAR(t1 / t2, 4.0, 0.01);
}

TEST(Material, BlechThresholdPhysicalRange) {
  const EmMaterialParams m = paper_calibrated_em_material();
  const double thr = m.blech_threshold(3e-8);
  // Literature: critical jL product of order 1e6 A/m (1000-10000 A/cm).
  EXPECT_GT(thr, 1e5);
  EXPECT_LT(thr, 1e7);
  EXPECT_THROW((void)m.blech_threshold(0.0), Error);
}

TEST(Material, FixRateArrhenius) {
  const EmMaterialParams m = paper_calibrated_em_material();
  EXPECT_GT(m.fix_rate(to_kelvin(Celsius{230.0})),
            m.fix_rate(to_kelvin(Celsius{100.0})));
}

TEST(Material, ZeroCurrentMeansNoDrive) {
  const EmMaterialParams m = paper_calibrated_em_material();
  EXPECT_DOUBLE_EQ(m.driving_force(3e-8, AmpsPerM2{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(
      m.drift_velocity(to_kelvin(Celsius{230.0}), 3e-8, AmpsPerM2{0.0}), 0.0);
}

}  // namespace
}  // namespace dh::em
