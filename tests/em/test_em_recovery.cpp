// Integration tests for the paper's EM experiments (Figs. 5-7), run
// through the same protocols the benches print.
#include <gtest/gtest.h>

#include "core/accelerated_test.hpp"

namespace dh::core {
namespace {

TEST(Fig5, ShapeOfStressAndActiveRecovery) {
  const EmExperimentResult r = run_fig5(/*active_recovery=*/true);
  // Nucleation lands in the paper's window (flat phase then growth).
  ASSERT_GT(r.nucleation_time.value(), 0.0);
  EXPECT_GT(in_minutes(r.nucleation_time), 200.0);
  EXPECT_LT(in_minutes(r.nucleation_time), 500.0);
  // Void growth produced a clearly measurable resistance rise.
  const double dr = r.peak_resistance.value() - r.fresh_resistance.value();
  EXPECT_GT(dr, 1.0);
  EXPECT_LT(dr, 4.0);
  // Active recovery undoes most of it but leaves a permanent component.
  EXPECT_GT(r.recovery_fraction(), 0.70);
  EXPECT_LT(r.recovery_fraction(), 0.99);
  const double permanent =
      r.final_resistance.value() - r.fresh_resistance.value();
  EXPECT_GT(permanent, 0.05);
}

TEST(Fig5, MostRecoveryWithinOneFifthOfStressTime) {
  // ">75% of EM wearout can be recovered within 1/5 of the stress time".
  const EmExperimentResult r = run_fig5(true, minutes(120.0));
  EXPECT_GT(r.recovery_fraction(), 0.65);
}

TEST(Fig5, PassiveRecoveryIsIneffective) {
  const EmExperimentResult active = run_fig5(true, minutes(120.0));
  const EmExperimentResult passive = run_fig5(false, minutes(120.0));
  EXPECT_LT(passive.recovery_fraction(), 0.25);
  EXPECT_GT(active.recovery_fraction(), 2.0 * passive.recovery_fraction());
}

TEST(Fig5, PermanentComponentStableUnderExtendedRecovery) {
  const EmExperimentResult six_h = run_fig5(true, minutes(360.0));
  const EmExperimentResult twelve_h = run_fig5(true, minutes(720.0));
  const double p6 =
      six_h.final_resistance.value() - six_h.fresh_resistance.value();
  const double p12 =
      twelve_h.final_resistance.value() - twelve_h.fresh_resistance.value();
  EXPECT_NEAR(p6, p12, 0.25 * p6 + 0.02);
}

TEST(Fig6, EarlyRecoveryIsComplete) {
  const EmExperimentResult r = run_fig6();
  const double dr_peak =
      r.peak_resistance.value() - r.fresh_resistance.value();
  const double dr_final =
      r.final_resistance.value() - r.fresh_resistance.value();
  ASSERT_GT(dr_peak, 0.1);
  // "Full recovery" — residue below 15% of the (small) growth.
  EXPECT_LT(dr_final, 0.15 * dr_peak);
}

TEST(Fig6, ContinuedReverseCurrentCausesReverseEm) {
  const EmExperimentResult r = run_fig6(minutes(700.0));
  // After full healing the held reverse current nucleates a void at the
  // opposite end and the resistance rises again.
  const double r_end = r.resistance.back_value();
  EXPECT_GT(r_end, r.final_resistance.value() + 0.3);
}

TEST(Fig7, PeriodicRecoveryDelaysNucleation) {
  const Fig7Result r = run_fig7();
  ASSERT_GT(r.baseline_nucleation.value(), 0.0);
  ASSERT_GT(r.periodic.nucleation_time.value(), 0.0);
  // "almost 3x slower" — accept 2x-4x.
  EXPECT_GT(r.nucleation_delay_factor(), 2.0);
  EXPECT_LT(r.nucleation_delay_factor(), 4.5);
}

TEST(Fig7, TimeToFailureExtended) {
  const Fig7Result r = run_fig7();
  // The paper's Fig. 7 run ends with the metal breaking much later than
  // the constant-stress case would.
  if (r.periodic.broke) {
    EXPECT_GT(r.periodic.break_time.value(),
              2.0 * r.baseline_nucleation.value());
  } else {
    SUCCEED();  // survived the whole observation window: even better
  }
}

TEST(Fig7, MoreReverseTimeDelaysMore) {
  const Fig7Result weak = run_fig7(minutes(60.0), minutes(10.0));
  const Fig7Result strong = run_fig7(minutes(60.0), minutes(25.0));
  EXPECT_GT(strong.nucleation_delay_factor(),
            weak.nucleation_delay_factor());
}

}  // namespace
}  // namespace dh::core
