#include "em/wire.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::em {
namespace {

TEST(Wire, PaperGeometryResistance) {
  // Fig. 3: 2.673 mm x 1.57 um x 0.8 um, 35.76 Ohm at room temperature.
  const WireGeometry w = paper_wire();
  EXPECT_NEAR(w.resistance_at(to_kelvin(Celsius{20.0})).value(), 35.76, 0.1);
}

TEST(Wire, TcrRaisesResistanceWithTemperature) {
  const WireGeometry w = paper_wire();
  const double r20 = w.resistance_at(to_kelvin(Celsius{20.0})).value();
  const double r230 = w.resistance_at(to_kelvin(Celsius{230.0})).value();
  // Copper TCR 0.393%/K over 210 K: ~1.825x.
  EXPECT_NEAR(r230 / r20, 1.0 + 0.00393 * 210.0, 1e-6);
}

TEST(Wire, VoidAddsLinerResistance) {
  const WireGeometry w = paper_wire();
  const Kelvin t = to_kelvin(Celsius{230.0});
  const double r0 = w.resistance_with_void(t, Meters{0.0}).value();
  const double r1 = w.resistance_with_void(t, nanometers(26.0)).value();
  // 26 nm of liner at 62.5 Ohm/um is ~1.6 Ohm (the Fig. 5 scale).
  EXPECT_NEAR(r1 - r0, 26e-9 * w.liner_ohm_per_m, 0.05);
  EXPECT_GT(r1, r0);
}

TEST(Wire, VoidLengthClampedToWire) {
  const WireGeometry w = paper_wire();
  const Kelvin t = to_kelvin(Celsius{20.0});
  const double r_full = w.resistance_with_void(t, w.length).value();
  const double r_over =
      w.resistance_with_void(t, Meters{w.length.value() * 2.0}).value();
  EXPECT_DOUBLE_EQ(r_full, r_over);
}

TEST(Wire, NegativeVoidRejected) {
  const WireGeometry w = paper_wire();
  EXPECT_THROW(
      (void)w.resistance_with_void(to_kelvin(Celsius{20.0}), Meters{-1e-9}),
      Error);
}

TEST(Wire, CurrentForDensity) {
  const WireGeometry w = paper_wire();
  // 7.96 MA/cm^2 through 1.57um x 0.8um is ~0.1 A.
  const double i = w.current_for_density(mega_amps_per_cm2(7.96)).value();
  EXPECT_NEAR(i, 7.96e10 * 1.57e-6 * 0.8e-6, 1e-6);
  EXPECT_NEAR(i, 0.1, 0.01);
}

TEST(Wire, BlechProduct) {
  const WireGeometry w = paper_wire();
  EXPECT_NEAR(w.blech_product(mega_amps_per_cm2(7.96)),
              7.96e10 * 2.673e-3, 1.0);
  // Sign-independent.
  EXPECT_DOUBLE_EQ(w.blech_product(mega_amps_per_cm2(-7.96)),
                   w.blech_product(mega_amps_per_cm2(7.96)));
}

}  // namespace
}  // namespace dh::em
