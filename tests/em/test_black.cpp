#include "em/black.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dh::em {
namespace {

BlackModel make_black() {
  return BlackModel{BlackParams::from_reference(
      years(10.0), mega_amps_per_cm2(2.0), Celsius{105.0})};
}

TEST(Black, MedianAtReference) {
  const BlackModel m = make_black();
  EXPECT_NEAR(
      m.median_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}).value(),
      years(10.0).value(), 1.0);
}

TEST(Black, CurrentExponentTwo) {
  const BlackModel m = make_black();
  const double t1 =
      m.median_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}).value();
  const double t2 =
      m.median_ttf(mega_amps_per_cm2(4.0), Celsius{105.0}).value();
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);
}

TEST(Black, HotterDiesSooner) {
  const BlackModel m = make_black();
  EXPECT_LT(m.median_ttf(mega_amps_per_cm2(2.0), Celsius{150.0}).value(),
            m.median_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}).value());
}

TEST(Black, SignOfCurrentIrrelevant) {
  const BlackModel m = make_black();
  EXPECT_DOUBLE_EQ(
      m.median_ttf(mega_amps_per_cm2(3.0), Celsius{105.0}).value(),
      m.median_ttf(mega_amps_per_cm2(-3.0), Celsius{105.0}).value());
}

TEST(Black, QuantilesOrdered) {
  const BlackModel m = make_black();
  const auto j = mega_amps_per_cm2(2.0);
  const Celsius t{105.0};
  EXPECT_LT(m.ttf_quantile(j, t, 0.01).value(),
            m.ttf_quantile(j, t, 0.5).value());
  EXPECT_LT(m.ttf_quantile(j, t, 0.5).value(),
            m.ttf_quantile(j, t, 0.99).value());
  EXPECT_NEAR(m.ttf_quantile(j, t, 0.5).value(),
              m.median_ttf(j, t).value(), 1.0);
}

TEST(Black, SampledPopulationMatchesQuantiles) {
  const BlackModel m = make_black();
  Rng rng{77};
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        m.sample_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}, rng).value());
  }
  const double med = stats::median(samples);
  EXPECT_NEAR(med, m.median_ttf(mega_amps_per_cm2(2.0), Celsius{105.0}).value(),
              0.03 * med);
  const auto fit = stats::fit_lognormal(samples);
  EXPECT_NEAR(fit.sigma, m.params().sigma_lognormal, 0.02);
}

TEST(Black, AccelerationFactor) {
  const BlackModel m = make_black();
  const double af = m.acceleration_factor(
      mega_amps_per_cm2(7.96), Celsius{230.0}, mega_amps_per_cm2(2.0),
      Celsius{105.0});
  // Accelerated testing gains many orders of magnitude.
  EXPECT_GT(af, 100.0);
}

TEST(Black, ZeroCurrentRejected) {
  const BlackModel m = make_black();
  EXPECT_THROW((void)m.median_ttf(AmpsPerM2{0.0}, Celsius{105.0}), Error);
}

TEST(Black, InvalidParamsRejected) {
  BlackParams p;  // ttf_ref defaults to 0
  EXPECT_THROW(BlackModel{p}, Error);
}

}  // namespace
}  // namespace dh::em
