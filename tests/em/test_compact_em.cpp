#include "em/compact_em.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "em/em_sensor.hpp"
#include "em/korhonen.hpp"

namespace dh::em {
namespace {

CompactEm make_compact() {
  return CompactEm{CompactEmParams{.wire = paper_wire(),
                                   .material =
                                       paper_calibrated_em_material()}};
}

TEST(CompactEm, FreshState) {
  const CompactEm m = make_compact();
  EXPECT_DOUBLE_EQ(m.end_stress().value(), 0.0);
  EXPECT_FALSE(m.void_open());
  EXPECT_FALSE(m.broken());
}

TEST(CompactEm, NucleationNearPde) {
  CompactEm m = make_compact();
  const auto j = paper_em_conditions::stress_density();
  const auto t = paper_em_conditions::chamber();
  double t_nuc = -1.0;
  for (int minute = 0; minute < 1200 && t_nuc < 0.0; minute += 5) {
    m.step(j, t, minutes(5.0));
    if (m.void_open()) t_nuc = minute + 5;
  }
  ASSERT_GT(t_nuc, 0.0);
  const double analytic = in_minutes(CompactEm::analytic_nucleation_time(
      paper_calibrated_em_material(), paper_wire(), j, t));
  EXPECT_NEAR(t_nuc, analytic, 0.3 * analytic);
}

TEST(CompactEm, StressFollowsCurrentSign) {
  CompactEm fwd = make_compact();
  CompactEm rev = make_compact();
  fwd.step(paper_em_conditions::stress_density(),
           paper_em_conditions::chamber(), hours(2.0));
  rev.step(paper_em_conditions::reverse_density(),
           paper_em_conditions::chamber(), hours(2.0));
  EXPECT_GT(fwd.end_stress().value(), 0.0);
  EXPECT_NEAR(rev.end_stress().value(), -fwd.end_stress().value(),
              1e-9 * fwd.end_stress().value());
}

TEST(CompactEm, VoidGrowsThenHeals) {
  CompactEm m = make_compact();
  const auto t = paper_em_conditions::chamber();
  m.step(paper_em_conditions::stress_density(), t, minutes(500.0));
  ASSERT_TRUE(m.void_open());
  const double grown = m.void_length().value();
  ASSERT_GT(grown, 0.0);
  m.step(paper_em_conditions::reverse_density(), t, minutes(300.0));
  EXPECT_LT(m.void_length().value(), grown);
}

TEST(CompactEm, ImmobilizedResidueSurvivesHealing) {
  CompactEm m = make_compact();
  const auto t = paper_em_conditions::chamber();
  m.step(paper_em_conditions::stress_density(), t, minutes(550.0));
  m.step(paper_em_conditions::reverse_density(), t, minutes(700.0));
  EXPECT_FALSE(m.void_open());
  EXPECT_GT(m.fixed_void_length().value(), 0.0);
}

TEST(CompactEm, ResistanceTracksVoid) {
  CompactEm m = make_compact();
  const auto t = paper_em_conditions::chamber();
  const double r0 = m.resistance(t).value();
  m.step(paper_em_conditions::stress_density(), t, minutes(700.0));
  EXPECT_GT(m.resistance(t).value(), r0);
}

TEST(CompactEm, BreaksUnderSustainedStress) {
  CompactEm m = make_compact();
  const auto t = paper_em_conditions::chamber();
  for (int h = 0; h < 80 && !m.broken(); ++h) {
    m.step(paper_em_conditions::stress_density(), t, hours(1.0));
  }
  EXPECT_TRUE(m.broken());
  EXPECT_GE(m.resistance(t).value(), 1e6);
}

TEST(CompactEm, ResetRestoresFresh) {
  CompactEm m = make_compact();
  m.step(paper_em_conditions::stress_density(),
         paper_em_conditions::chamber(), hours(8.0));
  m.reset();
  EXPECT_DOUBLE_EQ(m.end_stress().value(), 0.0);
  EXPECT_FALSE(m.void_open());
  EXPECT_DOUBLE_EQ(m.void_length().value(), 0.0);
}

TEST(CompactEm, SaturatesBelowCriticalAtLowCurrent) {
  // Well below the reference density the pool bank saturates before the
  // critical stress: approximate Blech immortality.
  CompactEm m = make_compact();
  const auto t = paper_em_conditions::chamber();
  for (int d = 0; d < 60; ++d) {
    m.step(mega_amps_per_cm2(1.5), t, days(1.0));
  }
  EXPECT_FALSE(m.void_open());
}

TEST(CompactEm, InvalidTauRejected) {
  CompactEmParams p;
  p.wire = paper_wire();
  p.material = paper_calibrated_em_material();
  p.j_ref = AmpsPerM2{0.0};  // makes the derived tau undefined
  EXPECT_THROW(CompactEm{p}, Error);
}

}  // namespace
}  // namespace dh::em
