#include "common/math/interp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::math {
namespace {

TEST(Interp, LinearInterpolation) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{0.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 2.0), 4.0);
  // Clamped.
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 10.0), 6.0);
}

TEST(Interp, RejectsMismatchedTables) {
  EXPECT_THROW(interp_linear(std::vector<double>{0.0, 1.0},
                             std::vector<double>{0.0}, 0.5),
               Error);
}

TEST(Trapezoid, IntegratesLinearExactly) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> ys{0.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(trapezoid(xs, ys), 8.0);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto xs = linspace(1.0, 3.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 1.0);
  EXPECT_DOUBLE_EQ(xs.back(), 3.0);
  EXPECT_DOUBLE_EQ(xs[1] - xs[0], 0.5);
}

TEST(StretchedGrid, CoversIntervalAndGrows) {
  const auto xs = stretched_grid(0.0, 100.0, 1.0, 1.5);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 100.0);
  ASSERT_GE(xs.size(), 4u);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_GT(xs[i], xs[i - 1]);
  }
  // Interior cells grow geometrically.
  const double d0 = xs[1] - xs[0];
  const double d1 = xs[2] - xs[1];
  EXPECT_NEAR(d1 / d0, 1.5, 1e-9);
}

TEST(StretchedGrid, UnitRatioIsUniform) {
  const auto xs = stretched_grid(0.0, 10.0, 1.0, 1.0);
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    EXPECT_NEAR(xs[i] - xs[i - 1], 1.0, 1e-9);
  }
}

TEST(StretchedGrid, RejectsBadParams) {
  EXPECT_THROW(stretched_grid(1.0, 0.0, 0.1, 1.2), Error);
  EXPECT_THROW(stretched_grid(0.0, 1.0, -0.1, 1.2), Error);
  EXPECT_THROW(stretched_grid(0.0, 1.0, 0.1, 0.5), Error);
}

}  // namespace
}  // namespace dh::math
