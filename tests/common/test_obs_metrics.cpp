#include "common/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace dh {
namespace {

// Every test records into uniquely-named registry entries (the registry is
// process-global) and restores the enabled flag it flipped.

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  obs::set_enabled(true);
  obs::Counter& c =
      obs::registry().counter("test.obs.counter.concurrent");
  c.reset();
  ThreadPool pool{8};
  constexpr std::size_t kN = 100000;
  pool.parallel_for(kN, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), kN);
}

TEST(ObsCounter, ConcurrentWeightedAddsSumExactly) {
  obs::set_enabled(true);
  obs::Counter& c = obs::registry().counter("test.obs.counter.weighted");
  c.reset();
  ThreadPool pool{8};
  constexpr std::size_t kN = 50000;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += i % 7 + 1;
  pool.parallel_for(kN, [&](std::size_t i) { c.add(i % 7 + 1); });
  EXPECT_EQ(c.value(), expected);
}

TEST(ObsCounter, DisabledAddIsANoOp) {
  obs::Counter& c = obs::registry().counter("test.obs.counter.disabled");
  c.reset();
  obs::set_enabled(false);
  c.add(123);
  obs::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsGauge, KeepsLastWrittenValue) {
  obs::set_enabled(true);
  obs::Gauge& g = obs::registry().gauge("test.obs.gauge", "V");
  g.set(1.5);
  g.set(-0.25);
  EXPECT_EQ(g.value(), -0.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// The value multiset fed to the order-independence tests: spreads over
// ~20 octaves with fractional mantissas so many distinct buckets fill.
double sample_value(std::size_t i) {
  const double mantissa = 1.0 + static_cast<double>(i % 7) / 8.0;
  const int exponent = static_cast<int>(i % 20) - 10;
  return std::ldexp(mantissa, exponent);
}

TEST(ObsHistogram, SnapshotIsIdenticalAtAnyThreadCount) {
  obs::set_enabled(true);
  constexpr std::size_t kN = 20000;
  obs::Histogram reference;
  for (std::size_t i = 0; i < kN; ++i) reference.observe(sample_value(i));

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::Histogram h;
    ThreadPool pool{threads};
    pool.parallel_for(kN, [&](std::size_t i) { h.observe(sample_value(i)); });
    EXPECT_EQ(h.bucket_counts(), reference.bucket_counts())
        << "bucket counts diverge at " << threads << " threads";
    const auto a = reference.snapshot();
    const auto b = h.snapshot();
    EXPECT_EQ(a.count, b.count);
    // Bit-identical, not approximately equal: every summary statistic is
    // derived from integer bucket counts and CAS min/max.
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
  }
}

TEST(ObsHistogram, ObservationOrderDoesNotMatter) {
  obs::set_enabled(true);
  constexpr std::size_t kN = 5000;
  obs::Histogram forward;
  obs::Histogram backward;
  for (std::size_t i = 0; i < kN; ++i) forward.observe(sample_value(i));
  for (std::size_t i = kN; i-- > 0;) backward.observe(sample_value(i));
  EXPECT_EQ(forward.bucket_counts(), backward.bucket_counts());
  const auto a = forward.snapshot();
  const auto b = backward.snapshot();
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
}

TEST(ObsHistogram, PercentilesLandWithinBucketResolution) {
  obs::set_enabled(true);
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 1000.0);
  // Log-bucketed: relative error bounded by one sub-bucket (~9%).
  EXPECT_NEAR(s.p50, 500.0, 0.09 * 500.0);
  EXPECT_NEAR(s.p95, 950.0, 0.09 * 950.0);
  EXPECT_NEAR(s.mean, 500.5, 0.09 * 500.5);
}

TEST(ObsHistogram, ExtremeValuesLandInOverflowBins) {
  obs::set_enabled(true);
  obs::Histogram h;
  h.observe(1e-300);  // below 2^-41: underflow bin
  h.observe(1e300);   // above 2^40: overflow bin
  EXPECT_EQ(h.count(), 2u);
  const auto s = h.snapshot();
  EXPECT_EQ(s.min, 1e-300);
  EXPECT_EQ(s.max, 1e300);
}

TEST(ObsRegistry, SameNameSameKindReturnsSameMetric) {
  obs::Counter& a = obs::registry().counter("test.obs.registry.same");
  obs::Counter& b = obs::registry().counter("test.obs.registry.same");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindMismatchThrows) {
  (void)obs::registry().counter("test.obs.registry.kind");
  EXPECT_THROW((void)obs::registry().gauge("test.obs.registry.kind"),
               Error);
  EXPECT_THROW((void)obs::registry().histogram("test.obs.registry.kind"),
               Error);
}

TEST(ObsRegistry, FindWithoutCreating) {
  (void)obs::registry().gauge("test.obs.registry.find", "C");
  EXPECT_NE(obs::registry().find_gauge("test.obs.registry.find"), nullptr);
  EXPECT_EQ(obs::registry().find_counter("test.obs.registry.find"),
            nullptr);
  EXPECT_EQ(obs::registry().find_gauge("test.obs.registry.missing"),
            nullptr);
}

TEST(ObsRegistry, ListIsSortedAndCarriesUnits) {
  (void)obs::registry().histogram("test.obs.registry.list.hist", "ms");
  const auto metrics = obs::registry().list();
  ASSERT_GE(metrics.size(), 1u);
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_LE(metrics[i - 1].name, metrics[i].name);
  }
  bool found = false;
  for (const auto& m : metrics) {
    if (m.name == "test.obs.registry.list.hist") {
      found = true;
      EXPECT_EQ(m.unit, "ms");
      EXPECT_EQ(m.kind, obs::MetricKind::kHistogram);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, WriteJsonContainsRegisteredMetrics) {
  obs::set_enabled(true);
  obs::registry().counter("test.obs.registry.json.count").add(3);
  obs::registry().gauge("test.obs.registry.json.gauge").set(2.5);
  obs::registry().histogram("test.obs.registry.json.hist").observe(1.0);
  std::ostringstream os;
  obs::registry().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"test.obs.registry.json.count\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.obs.registry.json.gauge\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.obs.registry.json.hist\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace dh
