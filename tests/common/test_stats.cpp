#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dh::stats {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-8);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.571428571), 1e-8);
}

TEST(Stats, MedianAndPercentiles) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  // Interpolated percentile.
  EXPECT_DOUBLE_EQ(percentile(xs, 0.1), 1.4);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), dh::Error);
  EXPECT_THROW(percentile(empty, 0.5), dh::Error);
  EXPECT_THROW(variance(std::vector<double>{1.0}), dh::Error);
}

TEST(InverseNormal, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.0227501), -2.0, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.99865), 3.0, 1e-3);
}

TEST(InverseNormal, RejectsBoundaries) {
  EXPECT_THROW(inverse_normal_cdf(0.0), dh::Error);
  EXPECT_THROW(inverse_normal_cdf(1.0), dh::Error);
}

TEST(Lognormal, FitRecoversParameters) {
  dh::Rng rng{31};
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.lognormal(2.0, 0.4));
  }
  const LognormalFit fit = fit_lognormal(samples);
  EXPECT_NEAR(fit.mu, 2.0, 0.02);
  EXPECT_NEAR(fit.sigma, 0.4, 0.02);
  EXPECT_NEAR(fit.t50(), std::exp(2.0), 0.2);
}

TEST(Lognormal, QuantilesAreOrdered) {
  const LognormalFit fit{.mu = 1.0, .sigma = 0.3};
  EXPECT_LT(fit.quantile(0.01), fit.quantile(0.5));
  EXPECT_LT(fit.quantile(0.5), fit.quantile(0.99));
  EXPECT_NEAR(fit.quantile(0.5), fit.t50(), 1e-9);
}

TEST(Lognormal, RejectsNonPositiveSamples) {
  EXPECT_THROW(fit_lognormal(std::vector<double>{1.0, -2.0}), dh::Error);
}

}  // namespace
}  // namespace dh::stats
