#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dh {
namespace {

TEST(ThreadPool, SerialPoolRunsEverythingInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool{8};
  EXPECT_EQ(pool.thread_count(), 8u);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneElementJobs) {
  ThreadPool pool{4};
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RepeatedJobsReuseWorkers) {
  ThreadPool pool{4};
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPool, ParallelMapOrdersResultsByIndex) {
  ThreadPool pool{8};
  const auto out = pool.parallel_map(
      1000, [](std::size_t i) { return static_cast<double>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i * i));
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw Error{"boom at 37"};
                        }),
      Error);
  // The pool survives a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, MapResultsIdenticalAcrossThreadCounts) {
  // The core determinism contract: a stochastic per-index task seeded by
  // Rng::stream gives bit-identical results at 1, 2, and 8 threads.
  const auto task = [](std::size_t i) {
    Rng r = Rng::stream(99, i);
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += r.normal(0.0, 1.0);
    return acc;
  };
  ThreadPool p1{1}, p2{2}, p8{8};
  const auto a = p1.parallel_map(500, task);
  const auto b = p2.parallel_map(500, task);
  const auto c = p8.parallel_map(500, task);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPool, GlobalPoolIsConfigurable) {
  set_global_thread_count(3);
  EXPECT_EQ(global_thread_count(), 3u);
  std::atomic<int> n{0};
  parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
  set_global_thread_count(0);  // back to default
  EXPECT_GE(global_thread_count(), 1u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace dh
