#include "common/math/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dh::math {
namespace {

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3, 1.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const std::vector<double> x{1.0, 1.0};
  const auto y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> b{5.0, 10.0};
  const auto x = solve_dense(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = solve_dense(a, std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(solve_dense(a, std::vector<double>{1.0, 2.0}), Error);
}

TEST(Lu, ReusableFactorization) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 2.0;
  a(0, 1) = a(1, 0) = a(1, 2) = a(2, 1) = -1.0;
  const LuFactorization lu{a};
  for (int k = 0; k < 3; ++k) {
    std::vector<double> b(3, 0.0);
    b[k] = 1.0;
    const auto x = lu.solve(b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(ax[i], b[i], 1e-12);
    }
  }
}

/// Property: random diagonally dominant systems solve to tiny residual.
class LuRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandom, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng{n * 977};
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = rng.uniform(-1.0, 1.0);
      offsum += std::abs(a(i, j));
    }
    a(i, i) = offsum + 1.0;
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  const auto x = solve_dense(a, b);
  const auto ax = a.multiply(x);
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) resid = std::max(resid, std::abs(ax[i] - b[i]));
  EXPECT_LT(resid, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom,
                         ::testing::Values(1, 2, 5, 16, 40, 90));

TEST(Tridiagonal, MatchesDenseSolve) {
  const std::size_t n = 12;
  std::vector<double> lower(n - 1), diag(n), upper(n - 1), rhs(n);
  Rng rng{5};
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = rng.uniform(2.0, 4.0);
    rhs[i] = rng.uniform(-1.0, 1.0);
    a(i, i) = diag[i];
    if (i + 1 < n) {
      lower[i] = rng.uniform(-1.0, 1.0);
      upper[i] = rng.uniform(-1.0, 1.0);
      a(i + 1, i) = lower[i];
      a(i, i + 1) = upper[i];
    }
  }
  const auto x_tri = solve_tridiagonal(lower, diag, upper, rhs);
  const auto x_dense = solve_dense(a, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_tri[i], x_dense[i], 1e-10);
  }
}

TEST(Tridiagonal, SingleElement) {
  const auto x = solve_tridiagonal({}, std::vector<double>{4.0}, {},
                                   std::vector<double>{8.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Tridiagonal, SizeMismatchThrows) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{1.0},
                                 std::vector<double>{1.0},
                                 std::vector<double>{},
                                 std::vector<double>{1.0}),
               Error);
}

TEST(Norms, KnownValues) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

}  // namespace
}  // namespace dh::math
