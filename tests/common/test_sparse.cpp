// Engine-level tests for the sparse linear-algebra stack: CSR assembly,
// IC(0), PCG, the direct fallbacks, and the SpdSolver facade — including
// the rejection paths (asymmetric, indefinite, singular) that must raise
// descriptive dh::Error instead of returning garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math/linalg.hpp"
#include "common/math/sparse/cg.hpp"
#include "common/math/sparse/csr.hpp"
#include "common/math/sparse/direct.hpp"
#include "common/math/sparse/ic0.hpp"
#include "common/math/sparse/spd_solver.hpp"
#include "common/rng.hpp"

namespace dh::math::sparse {
namespace {

/// Laplacian of a rows x cols 5-point grid with per-edge weight `g_fn`
/// and `ground` added on every diagonal (keeps it SPD).
CsrMatrix grid_laplacian(std::size_t rows, std::size_t cols, double ground,
                         Rng* rng = nullptr) {
  CsrBuilder b(rows * cols, rows * cols, 5);
  const auto weight = [&] {
    return rng != nullptr ? rng->uniform(0.5, 2.0) : 1.0;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      b.add_diagonal(i, ground);
      if (c + 1 < cols) b.add_edge(i, i + 1, weight());
      if (r + 1 < rows) b.add_edge(i, i + cols, weight());
    }
  }
  return b.build();
}

TEST(Csr, BuilderSortsAndMergesDuplicates) {
  CsrBuilder b(3, 3);
  b.add(0, 2, 1.0);
  b.add(0, 0, 2.0);
  b.add(0, 2, 3.0);  // duplicate accumulates
  b.add(1, 1, 5.0);
  b.add(2, 0, -1.0);
  b.add(2, 2, 4.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), -1.0);
  // Columns sorted within each row.
  EXPECT_EQ(m.col_idx()[0], 0u);
  EXPECT_EQ(m.col_idx()[1], 2u);
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng{11};
  const CsrMatrix m = grid_laplacian(4, 5, 0.3, &rng);
  const Matrix dense = m.to_dense();
  std::vector<double> x(m.cols());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto y_sparse = m.multiply(x);
  const auto y_dense = dense.multiply(x);
  for (std::size_t i = 0; i < y_sparse.size(); ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-14);
  }
}

TEST(Csr, StructureQueries) {
  const CsrMatrix m = grid_laplacian(3, 4, 0.1);
  EXPECT_TRUE(m.is_symmetric());
  EXPECT_EQ(m.bandwidth(), 4u);  // i couples to i+cols
  CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 3.0);  // != A(0,1)
  b.add(1, 1, 1.0);
  EXPECT_FALSE(b.build().is_symmetric());
}

TEST(Direct, TridiagonalMatchesThomas) {
  const std::size_t n = 40;
  CsrBuilder b(n, n, 3);
  Rng rng{3};
  for (std::size_t i = 0; i < n; ++i) b.add_diagonal(i, 0.2);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(i, i + 1, rng.uniform(0.5, 2.0));
  }
  const CsrMatrix a = b.build();
  ASSERT_EQ(a.bandwidth(), 1u);
  const TridiagonalCholesky chol{a};
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);
  std::vector<double> x;
  chol.solve(rhs, x);
  const auto residual = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(residual[i], rhs[i], 1e-12);
  }
}

TEST(Direct, BandedCholeskyMatchesDenseLu) {
  Rng rng{7};
  const CsrMatrix a = grid_laplacian(6, 7, 0.4, &rng);
  const BandedCholesky chol{a};
  EXPECT_EQ(chol.band(), 7u);
  std::vector<double> rhs(a.rows());
  for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);
  std::vector<double> x;
  chol.solve(rhs, x);
  const auto x_ref = solve_dense(a.to_dense(), rhs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-11);
  }
}

TEST(Direct, SingularLaplacianRaisesDescriptiveError) {
  // A pure graph Laplacian with no grounding term is exactly singular
  // (constant null vector) — the healing-stack analogue is a PDN with no
  // pad path to VDD.
  const CsrMatrix a = grid_laplacian(4, 4, 0.0);
  try {
    const BandedCholesky chol{a};
    FAIL() << "expected dh::Error for singular matrix";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pivot"), std::string::npos) << what;
    EXPECT_NE(what.find("singular"), std::string::npos) << what;
  }
}

TEST(Direct, TridiagonalRejectsIndefinite) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);  // negative pivot
  EXPECT_THROW(TridiagonalCholesky{b.build()}, Error);
}

TEST(Ic0, ExactForTridiagonalPattern) {
  // With no dropped fill (tridiagonal has none), IC(0) is the exact
  // Cholesky factor: one apply solves the system outright.
  const std::size_t n = 25;
  CsrBuilder b(n, n, 3);
  for (std::size_t i = 0; i < n; ++i) b.add_diagonal(i, 0.5);
  for (std::size_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, 1.0);
  const CsrMatrix a = b.build();
  const IncompleteCholesky ic{a};
  EXPECT_EQ(ic.shift(), 0.0);
  std::vector<double> rhs(n, 1.0);
  std::vector<double> x;
  ic.apply(rhs, x);
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-12);
}

TEST(Ic0, PreconditionsGridCgFarBelowUnpreconditionedCount) {
  Rng rng{23};
  const CsrMatrix a = grid_laplacian(24, 24, 0.02, &rng);
  std::vector<double> rhs(a.rows());
  for (auto& v : rhs) v = rng.uniform(0.0, 1.0);
  const LinearOp op = [&](std::span<const double> v,
                          std::vector<double>& y) { a.multiply(v, y); };
  CgOptions opts;
  opts.rel_tolerance = 1e-12;
  std::vector<double> x_plain, x_ic;
  const CgResult plain =
      pcg_solve(op, rhs, IdentityPreconditioner{}, x_plain, opts);
  const CgResult ic = pcg_solve(op, rhs, IncompleteCholesky{a}, x_ic, opts);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(ic.converged);
  EXPECT_LT(ic.iterations, plain.iterations / 2);
}

TEST(Cg, ZeroRhsReturnsZeroInZeroIterations) {
  const CsrMatrix a = grid_laplacian(4, 4, 0.3);
  const LinearOp op = [&](std::span<const double> v,
                          std::vector<double>& y) { a.multiply(v, y); };
  std::vector<double> x;
  const CgResult res =
      pcg_solve(op, std::vector<double>(a.rows(), 0.0),
                IdentityPreconditioner{}, x, {});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, IndefiniteOperatorRaisesCurvatureError) {
  CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -2.0);
  const CsrMatrix a = b.build();
  const LinearOp op = [&](std::span<const double> v,
                          std::vector<double>& y) { a.multiply(v, y); };
  std::vector<double> x;
  try {
    (void)pcg_solve(op, std::vector<double>{1.0, 1.0},
                    IdentityPreconditioner{}, x, {});
    FAIL() << "expected dh::Error for indefinite operator";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("positive definite"),
              std::string::npos);
  }
}

TEST(SpdSolver, PicksMethodFromStructure) {
  EXPECT_EQ(SpdSolver::planned_method(100, 1), SpdMethod::kTridiagonal);
  EXPECT_EQ(SpdSolver::planned_method(100, 10), SpdMethod::kBandedCholesky);
  EXPECT_EQ(SpdSolver::planned_method(4096, 64), SpdMethod::kIc0Cg);

  const SpdSolver tri{grid_laplacian(1, 32, 0.2)};
  EXPECT_EQ(tri.method(), SpdMethod::kTridiagonal);
  const SpdSolver banded{grid_laplacian(8, 8, 0.2)};
  EXPECT_EQ(banded.method(), SpdMethod::kBandedCholesky);
  SpdSolverOptions tiny_direct;
  tiny_direct.direct_max_dim = 16;
  const SpdSolver cg{grid_laplacian(8, 8, 0.2), tiny_direct};
  EXPECT_EQ(cg.method(), SpdMethod::kIc0Cg);
}

TEST(SpdSolver, AllMethodsAgreeWithDenseReference) {
  Rng rng{31};
  for (const std::size_t rows : {1ul, 6ul, 20ul}) {
    const CsrMatrix a = grid_laplacian(rows, 21, 0.15, &rng);
    std::vector<double> rhs(a.rows());
    for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);
    const auto x_ref = solve_dense(a.to_dense(), rhs);

    SpdSolverOptions opts;
    opts.direct_max_dim = rows <= 6 ? 512 : 16;  // force CG for the 20x21
    const SpdSolver solver{a, opts};
    SpdSolveInfo info;
    const auto x = solver.solve(rhs, &info);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], x_ref[i], 1e-10)
          << "method " << to_string(info.method) << " row count " << rows;
    }
    EXPECT_LT(info.relative_residual, 1e-12);
  }
}

TEST(SpdSolver, RejectsAsymmetricAssembly) {
  CsrBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 2.0);
  b.add(2, 2, 2.0);
  b.add(0, 1, -1.0);  // no mirror entry
  try {
    const SpdSolver solver{b.build()};
    FAIL() << "expected dh::Error for asymmetric matrix";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("symmetric"), std::string::npos);
  }
}

TEST(SpdSolver, IndefiniteFallsBackToDenseLu) {
  // Symmetric, invertible, but indefinite: every sparse factorization
  // breaks down and the facade must fall back to dense LU (recorded so
  // guard tests can detect an unwanted fallback).
  CsrBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, -3.0);
  b.add(2, 2, 1.0);
  b.add_edge(0, 1, 0.5);
  const CsrMatrix a = b.build();
  const SpdSolver solver{a};
  EXPECT_EQ(solver.method(), SpdMethod::kDenseLu);
  const std::vector<double> rhs{1.0, 2.0, 3.0};
  const auto x = solver.solve(rhs);
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-10);
}

TEST(SpdSolver, SingularRaisesDescriptiveErrorOnEveryPath) {
  for (const std::size_t rows : {1ul, 6ul, 20ul}) {
    EXPECT_THROW(
        {
          const SpdSolver solver{grid_laplacian(rows, 21, 0.0)};
          (void)solver.solve(std::vector<double>(rows * 21, 1.0));
        },
        Error)
        << rows << "x21 ungrounded Laplacian must not solve";
  }
}

TEST(SpdSolver, DriftedSolveRefinesAgainstTrueOperator) {
  Rng rng{41};
  const CsrMatrix stale = grid_laplacian(10, 10, 0.3, &rng);
  // True operator: same structure, all weights 4% higher (EM-style
  // drift within a 5% refactor tolerance).
  CsrMatrix drifted = stale;
  for (auto& v : drifted.values()) v *= 1.04;
  std::vector<double> rhs(stale.rows());
  for (auto& v : rhs) v = rng.uniform(0.0, 1.0);

  const SpdSolver solver{stale};
  std::vector<double> x;
  SpdSolveInfo info;
  const bool converged = solver.solve_drifted(
      [&](std::span<const double> v, std::vector<double>& y) {
        drifted.multiply(v, y);
      },
      rhs, x, &info);
  EXPECT_TRUE(converged);
  EXPECT_GT(info.cg_iterations, 0u);
  EXPECT_LT(info.cg_iterations, 20u);  // stale factor ~ identity
  const auto x_ref = solve_dense(drifted.to_dense(), rhs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-10);
  }
}

}  // namespace
}  // namespace dh::math::sparse
