#include "common/time_series.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace dh {
namespace {

TimeSeries ramp() {
  TimeSeries s{"ramp", "V"};
  s.append(Seconds{0.0}, 0.0);
  s.append(Seconds{10.0}, 1.0);
  s.append(Seconds{20.0}, 3.0);
  return s;
}

TEST(TimeSeries, AppendAndAccess) {
  const TimeSeries s = ramp();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.time_at(1).value(), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(2), 3.0);
  EXPECT_DOUBLE_EQ(s.front_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.back_value(), 3.0);
}

TEST(TimeSeries, RejectsOutOfOrderAppend) {
  TimeSeries s;
  s.append(Seconds{5.0}, 1.0);
  EXPECT_THROW(s.append(Seconds{4.0}, 2.0), Error);
  // Equal timestamps are allowed (phase boundaries).
  EXPECT_NO_THROW(s.append(Seconds{5.0}, 3.0));
}

TEST(TimeSeries, LinearSampling) {
  const TimeSeries s = ramp();
  EXPECT_DOUBLE_EQ(s.sample(Seconds{5.0}), 0.5);
  EXPECT_DOUBLE_EQ(s.sample(Seconds{15.0}), 2.0);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(s.sample(Seconds{-1.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.sample(Seconds{99.0}), 3.0);
}

TEST(TimeSeries, MinMax) {
  const TimeSeries s = ramp();
  EXPECT_DOUBLE_EQ(s.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 3.0);
}

TEST(TimeSeries, FirstUpcrossInterpolates) {
  const TimeSeries s = ramp();
  // Crosses 2.0 halfway between t=10 (v=1) and t=20 (v=3).
  EXPECT_NEAR(s.first_upcross(2.0).value(), 15.0, 1e-12);
  // Never crosses 5.0.
  EXPECT_LT(s.first_upcross(5.0).value(), 0.0);
}

TEST(TimeSeries, Resample) {
  const TimeSeries s = ramp();
  const TimeSeries r = s.resampled(5);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.front_time().value(), 0.0);
  EXPECT_DOUBLE_EQ(r.back_time().value(), 20.0);
  EXPECT_DOUBLE_EQ(r.value_at(2), s.sample(Seconds{10.0}));
}

TEST(TimeSeries, Scaled) {
  const TimeSeries s = ramp().scaled(2.0);
  EXPECT_DOUBLE_EQ(s.back_value(), 6.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(TimeSeries, CsvOutput) {
  std::ostringstream os;
  write_csv(os, {ramp()});
  const std::string text = os.str();
  EXPECT_NE(text.find("t_ramp(s),ramp(V)"), std::string::npos);
  EXPECT_NE(text.find("20,3"), std::string::npos);
}

TEST(TimeSeries, PrintTableAlignsRows) {
  std::ostringstream os;
  print_series_table(os, {ramp()}, 3);
  // Three data rows expected (header + 3).
  int lines = 0;
  for (const char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(TimeSeries, EmptyAccessorsThrow) {
  const TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.front_value(), Error);
  EXPECT_THROW(s.min_value(), Error);
  EXPECT_THROW(s.sample(Seconds{0.0}), Error);
}

}  // namespace
}  // namespace dh
