#include "common/math/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::math {
namespace {

TEST(Rk4, ExponentialDecay) {
  // dy/dt = -y, y(0)=1 -> y(1)=e^-1.
  const double y1 = rk4_scalar([](double, double y) { return -y; }, 0.0, 1.0,
                               100, 1.0);
  EXPECT_NEAR(y1, std::exp(-1.0), 1e-8);
}

TEST(Rk4, FourthOrderConvergence) {
  auto err = [](int steps) {
    const double y = rk4_scalar([](double, double yy) { return -yy; }, 0.0,
                                1.0, steps, 1.0);
    return std::abs(y - std::exp(-1.0));
  };
  const double e10 = err(10);
  const double e20 = err(20);
  // Halving the step should cut the error by ~2^4.
  EXPECT_GT(e10 / e20, 12.0);
  EXPECT_LT(e10 / e20, 20.0);
}

TEST(Rk4, HarmonicOscillatorConservesEnergy) {
  // y'' = -y as a system; energy should be conserved to high order.
  std::vector<double> y{1.0, 0.0};  // position, velocity
  const OdeRhs rhs = [](double, std::span<const double> s,
                        std::span<double> d) {
    d[0] = s[1];
    d[1] = -s[0];
  };
  rk4_integrate(rhs, 0.0, 2.0 * 3.14159265358979, 1000, y);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(Rk4, TimeDependentRhs) {
  // dy/dt = t -> y(2) = y(0) + 2.
  const double y = rk4_scalar([](double t, double) { return t; }, 0.0, 2.0,
                              50, 0.0);
  EXPECT_NEAR(y, 2.0, 1e-10);
}

TEST(Rk4, RejectsNonPositiveSteps) {
  std::vector<double> y{1.0};
  const OdeRhs rhs = [](double, std::span<const double>, std::span<double> d) {
    d[0] = 0.0;
  };
  EXPECT_THROW(rk4_integrate(rhs, 0.0, 1.0, 0, y), Error);
}

}  // namespace
}  // namespace dh::math
