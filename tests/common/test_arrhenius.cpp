#include "common/arrhenius.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace dh {
namespace {

TEST(Arrhenius, BoltzmannFactorBasics) {
  // exp(-Ea/kT) at kT == Ea is 1/e.
  const Kelvin t{1.0 / constants::kBoltzmannEv};
  EXPECT_NEAR(boltzmann_factor(ElectronVolts{1.0}, t), std::exp(-1.0), 1e-12);
  // Zero activation energy: no barrier.
  EXPECT_DOUBLE_EQ(boltzmann_factor(ElectronVolts{0.0}, Kelvin{300.0}), 1.0);
}

TEST(Arrhenius, AccelerationIsOneAtReference) {
  EXPECT_DOUBLE_EQ(
      arrhenius_acceleration(ElectronVolts{0.9}, Kelvin{350.0}, Kelvin{350.0}),
      1.0);
}

TEST(Arrhenius, HotterAccelerates) {
  const double af = arrhenius_acceleration(ElectronVolts{0.7}, Kelvin{383.15},
                                           Kelvin{293.15});
  EXPECT_GT(af, 1.0);
  // And the inverse direction is the reciprocal.
  const double af_inv = arrhenius_acceleration(
      ElectronVolts{0.7}, Kelvin{293.15}, Kelvin{383.15});
  EXPECT_NEAR(af * af_inv, 1.0, 1e-12);
}

TEST(Arrhenius, HigherBarrierIsMoreSensitive) {
  const double low = arrhenius_acceleration(ElectronVolts{0.5}, Kelvin{400.0},
                                            Kelvin{300.0});
  const double high = arrhenius_acceleration(ElectronVolts{1.2}, Kelvin{400.0},
                                             Kelvin{300.0});
  EXPECT_GT(high, low);
}

TEST(Arrhenius, ThermalEnergyAtRoomTemperature) {
  EXPECT_NEAR(thermal_energy_ev(Kelvin{293.15}), 0.02526, 1e-4);
}

TEST(Arrhenius, RejectsNonPositiveTemperature) {
  EXPECT_THROW(boltzmann_factor(ElectronVolts{1.0}, Kelvin{0.0}), Error);
  EXPECT_THROW(thermal_energy_ev(Kelvin{-1.0}), Error);
  EXPECT_THROW(arrhenius_acceleration(ElectronVolts{1.0}, Kelvin{300.0},
                                      Kelvin{0.0}),
               Error);
}

/// Property sweep: acceleration factors compose multiplicatively across a
/// temperature ladder.
class ArrheniusComposition : public ::testing::TestWithParam<double> {};

TEST_P(ArrheniusComposition, ComposesAcrossIntermediateTemperature) {
  const ElectronVolts ea{GetParam()};
  const Kelvin t1{300.0}, t2{350.0}, t3{420.0};
  const double direct = arrhenius_acceleration(ea, t3, t1);
  const double composed = arrhenius_acceleration(ea, t3, t2) *
                          arrhenius_acceleration(ea, t2, t1);
  EXPECT_NEAR(direct, composed, 1e-9 * direct);
}

INSTANTIATE_TEST_SUITE_P(ActivationEnergies, ArrheniusComposition,
                         ::testing::Values(0.3, 0.55, 0.9, 1.1, 1.5));

}  // namespace
}  // namespace dh
