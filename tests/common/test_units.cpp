#include "common/units.hpp"

#include <gtest/gtest.h>

namespace dh {
namespace {

TEST(Units, QuantityArithmetic) {
  const Volts a{1.5};
  const Volts b{0.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_DOUBLE_EQ((-a).value(), -1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 3.0);
  EXPECT_DOUBLE_EQ((a / 3.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 3.0);  // dimensionless ratio
}

TEST(Units, CompoundAssignment) {
  Volts v{1.0};
  v += Volts{0.5};
  EXPECT_DOUBLE_EQ(v.value(), 1.5);
  v -= Volts{1.0};
  EXPECT_DOUBLE_EQ(v.value(), 0.5);
  v *= 4.0;
  EXPECT_DOUBLE_EQ(v.value(), 2.0);
  v /= 2.0;
  EXPECT_DOUBLE_EQ(v.value(), 1.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Volts{0.5}, Volts{1.0});
  EXPECT_GE(Seconds{3.0}, Seconds{3.0});
  EXPECT_EQ(Kelvin{300.0}, Kelvin{300.0});
}

TEST(Units, TemperatureConversions) {
  EXPECT_DOUBLE_EQ(to_kelvin(Celsius{0.0}).value(), 273.15);
  EXPECT_DOUBLE_EQ(to_kelvin(Celsius{110.0}).value(), 383.15);
  EXPECT_DOUBLE_EQ(to_celsius(Kelvin{273.15}).value(), 0.0);
  EXPECT_NEAR(to_celsius(to_kelvin(Celsius{-40.0})).value(), -40.0, 1e-12);
}

TEST(Units, DurationHelpers) {
  EXPECT_DOUBLE_EQ(minutes(2.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.0).value(), 3600.0);
  EXPECT_DOUBLE_EQ(days(1.0).value(), 86400.0);
  EXPECT_DOUBLE_EQ(years(1.0).value(), 365.25 * 86400.0);
  EXPECT_DOUBLE_EQ(in_minutes(hours(1.0)), 60.0);
  EXPECT_DOUBLE_EQ(in_hours(days(1.0)), 24.0);
  EXPECT_NEAR(in_years(years(2.5)), 2.5, 1e-12);
}

TEST(Units, ScaleHelpers) {
  EXPECT_DOUBLE_EQ(micrometers(1.57).value(), 1.57e-6);
  EXPECT_DOUBLE_EQ(nanometers(60.0).value(), 6e-8);
  EXPECT_DOUBLE_EQ(millimeters(2.673).value(), 2.673e-3);
  // 1 MA/cm^2 = 1e10 A/m^2.
  EXPECT_DOUBLE_EQ(mega_amps_per_cm2(7.96).value(), 7.96e10);
  EXPECT_DOUBLE_EQ(megapascals(400.0).value(), 4e8);
}

TEST(Units, OhmsLaw) {
  const Volts v = Amps{0.5} * Ohms{10.0};
  EXPECT_DOUBLE_EQ(v.value(), 5.0);
  EXPECT_DOUBLE_EQ((Ohms{10.0} * Amps{0.5}).value(), 5.0);
  EXPECT_DOUBLE_EQ((Volts{5.0} / Ohms{10.0}).value(), 0.5);
  EXPECT_DOUBLE_EQ((Volts{5.0} * Amps{2.0}).value(), 10.0);
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Pascals{}.value(), 0.0);
}

}  // namespace
}  // namespace dh
