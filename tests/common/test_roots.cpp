#include "common/math/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::math {
namespace {

TEST(Brent, FindsPolynomialRoot) {
  const double r =
      brent_root([](double x) { return x * x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::cbrt(2.0), 1e-9);
}

TEST(Brent, FindsTranscendentalRoot) {
  const double r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(std::cos(r), r, 1e-9);
}

TEST(Brent, ExactEndpoint) {
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Brent, RequiresSignChange) {
  EXPECT_THROW(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               Error);
}

TEST(Bisect, MatchesBrent) {
  auto f = [](double x) { return std::exp(x) - 3.0; };
  const double rb = brent_root(f, 0.0, 2.0);
  const double rs = bisect_root(f, 0.0, 2.0, 1e-12, 300);
  EXPECT_NEAR(rb, rs, 1e-9);
  EXPECT_NEAR(rb, std::log(3.0), 1e-9);
}

TEST(Golden, MinimizesParabola) {
  const double x =
      golden_minimize([](double v) { return (v - 1.5) * (v - 1.5); }, -10.0,
                      10.0);
  EXPECT_NEAR(x, 1.5, 1e-6);
}

TEST(Golden, MinimizesAsymmetricFunction) {
  // min of x^2 + e^-x near 0.3517.
  const double x = golden_minimize(
      [](double v) { return v * v + std::exp(-v); }, -2.0, 2.0);
  EXPECT_NEAR(2.0 * x, std::exp(-x), 1e-5);
}

TEST(Golden, RejectsEmptyInterval) {
  EXPECT_THROW(golden_minimize([](double x) { return x; }, 1.0, 1.0), Error);
}

}  // namespace
}  // namespace dh::math
