// Fault-injection registry unit tests: spec grammar, deterministic
// seed-driven decisions, injection caps, and the registry counters.
#include "common/fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"

namespace dh::fault {
namespace {

/// Every test starts and ends with a clean, disarmed registry so DH_FAULTS
/// leakage between tests (or from the environment) is impossible.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultTest, ParseAcceptsWellFormedSpecs) {
  const auto specs =
      parse_fault_spec("solver.cg_stagnate:0.5:2,sensor.nan:1:1");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "solver.cg_stagnate");
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.5);
  EXPECT_EQ(specs[0].max_count, 2u);
  EXPECT_EQ(specs[1].site, "sensor.nan");
  EXPECT_DOUBLE_EQ(specs[1].probability, 1.0);
  EXPECT_EQ(specs[1].max_count, 1u);
}

TEST_F(FaultTest, ParseEmptyStringYieldsNothing) {
  EXPECT_TRUE(parse_fault_spec("").empty());
}

TEST_F(FaultTest, ParseRejectsMalformedClauses) {
  EXPECT_THROW((void)parse_fault_spec("no_colons"), Error);
  EXPECT_THROW((void)parse_fault_spec("one:colon"), Error);
  EXPECT_THROW((void)parse_fault_spec("too:many:colons:here"), Error);
  EXPECT_THROW((void)parse_fault_spec(":0.5:1"), Error);        // empty site
  EXPECT_THROW((void)parse_fault_spec("s:abc:1"), Error);       // bad prob
  EXPECT_THROW((void)parse_fault_spec("s:1.5:1"), Error);       // prob > 1
  EXPECT_THROW((void)parse_fault_spec("s:-0.1:1"), Error);      // prob < 0
  EXPECT_THROW((void)parse_fault_spec("s:0.5:zero"), Error);    // bad count
  EXPECT_THROW((void)parse_fault_spec("s:0.5:0"), Error);       // zero count
}

TEST_F(FaultTest, ParseErrorNamesTheOffendingClause) {
  try {
    (void)parse_fault_spec("good.site:1:1,bad clause");
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad clause"), std::string::npos);
  }
}

TEST_F(FaultTest, UnarmedByDefaultAndAfterReset) {
  EXPECT_FALSE(armed());
  configure("s:1:1");
  EXPECT_TRUE(armed());
  reset();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(should_inject("s"));
}

TEST_F(FaultTest, UnconfiguredSiteNeverInjects) {
  configure("some.other.site:1:100");
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(should_inject("this.site"));
  EXPECT_EQ(injection_count("this.site"), 0u);
}

TEST_F(FaultTest, ProbabilityOneInjectsUpToCapExactly) {
  configure("s:1:3");
  int injected = 0;
  for (int i = 0; i < 10; ++i) injected += should_inject("s") ? 1 : 0;
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(injection_count("s"), 3u);
}

TEST_F(FaultTest, ProbabilityZeroNeverInjects) {
  configure("s:0:100");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(should_inject("s"));
  EXPECT_EQ(injection_count("s"), 0u);
}

TEST_F(FaultTest, DecisionsAreDeterministicInSeedAndAttempt) {
  const auto pattern = [](std::uint64_t seed) {
    configure("s:0.3:1000000");
    set_seed(seed);
    std::vector<bool> p;
    for (int i = 0; i < 200; ++i) p.push_back(should_inject("s"));
    return p;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  EXPECT_EQ(a, b);  // same seed, same site, same attempts → same decisions
  int hits = 0;
  for (const bool v : a) hits += v ? 1 : 0;
  // prob 0.3 over 200 attempts: the exact count is deterministic; just
  // sanity-check it is neither "never" nor "always".
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 200);
}

TEST_F(FaultTest, SitesAreIndependentStreams) {
  configure("a:0.5:1000,b:0.5:1000");
  std::vector<bool> pa;
  std::vector<bool> pb;
  for (int i = 0; i < 64; ++i) {
    pa.push_back(should_inject("a"));
    pb.push_back(should_inject("b"));
  }
  EXPECT_NE(pa, pb);  // 2^-64 collision odds with distinct site hashes
}

TEST_F(FaultTest, SetSeedResetsCounters) {
  configure("s:1:5");
  (void)should_inject("s");
  EXPECT_EQ(injection_count("s"), 1u);
  set_seed(7);
  EXPECT_EQ(injection_count("s"), 0u);
}

TEST_F(FaultTest, ConfiguredSitesListsActiveConfiguration) {
  configure("x:0.25:4,y:1:1");
  const auto sites = configured_sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].site, "x");
  EXPECT_EQ(sites[1].site, "y");
}

TEST_F(FaultTest, InjectionTicksRegistryCounters) {
  obs::Counter& total = obs::registry().counter("fault.injected");
  obs::Counter& site = obs::registry().counter("fault.injected.ctr_site");
  const std::uint64_t total0 = total.value();
  const std::uint64_t site0 = site.value();
  configure("ctr_site:1:2");
  for (int i = 0; i < 5; ++i) (void)should_inject("ctr_site");
  EXPECT_EQ(total.value() - total0, 2u);
  EXPECT_EQ(site.value() - site0, 2u);
}

TEST_F(FaultTest, UntracedVariantStillCountsAndCaps) {
  configure("s:1:2");
  int injected = 0;
  for (int i = 0; i < 5; ++i) {
    injected += should_inject_untraced("s") ? 1 : 0;
  }
  EXPECT_EQ(injected, 2);
  EXPECT_EQ(injection_count("s"), 2u);
}

}  // namespace
}  // namespace dh::fault
