#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace dh {
namespace {

TEST(Table, FormatsAlignedGrid) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("| beta"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMustMatch) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 0), "-1");
  EXPECT_EQ(Table::pct(0.724, 1), "72.4%");
  EXPECT_EQ(Table::pct(0.0066, 2), "0.66%");
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, Error);
}

}  // namespace
}  // namespace dh
