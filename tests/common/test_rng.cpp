#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, LognormalIsPositive) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{17};
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent{21};
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

namespace {

// Pearson correlation of two equal-length uniform sequences.
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> draw(Rng r, std::size_t n) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = r.uniform();
  return xs;
}

}  // namespace

TEST(Rng, SiblingForksAreStatisticallyIndependent) {
  // Regression for the old fork(): seeding children from a single raw
  // mt19937_64 draw XOR'd with a constant produced correlated sibling
  // streams. With splitmix64-mixed seeds, sibling pair correlations stay
  // at sampling-noise level (|rho| ~ 1/sqrt(n)).
  Rng root{123};
  constexpr std::size_t kSiblings = 8;
  constexpr std::size_t kDraws = 4000;
  std::vector<std::vector<double>> streams;
  for (std::size_t s = 0; s < kSiblings; ++s) {
    streams.push_back(draw(root.fork(), kDraws));
  }
  for (std::size_t a = 0; a < kSiblings; ++a) {
    for (std::size_t b = a + 1; b < kSiblings; ++b) {
      EXPECT_LT(std::abs(correlation(streams[a], streams[b])), 0.08)
          << "fork siblings " << a << " and " << b << " correlate";
    }
  }
}

TEST(Rng, StreamSiblingsAreStatisticallyIndependent) {
  constexpr std::size_t kDraws = 4000;
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      const auto xs = draw(Rng::stream(42, a), kDraws);
      const auto ys = draw(Rng::stream(42, b), kDraws);
      EXPECT_LT(std::abs(correlation(xs, ys)), 0.08)
          << "streams " << a << " and " << b << " correlate";
    }
  }
}

TEST(Rng, StreamIsOrderIndependent) {
  // stream(root, i) must not depend on which streams were derived before
  // it — that is what makes parallel population sweeps deterministic.
  Rng direct = Rng::stream(7, 5);
  (void)Rng::stream(7, 0);
  (void)Rng::stream(7, 3);
  Rng again = Rng::stream(7, 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(direct.uniform(), again.uniform());
  }
  EXPECT_EQ(Rng::stream_seed(7, 5), Rng::stream_seed(7, 5));
  EXPECT_NE(Rng::stream_seed(7, 5), Rng::stream_seed(7, 6));
  EXPECT_NE(Rng::stream_seed(7, 5), Rng::stream_seed(8, 5));
}

TEST(Rng, StreamMomentsAreUniform) {
  // Aggregate of many short sibling streams still looks uniform(0,1) —
  // catches degenerate seed mixing that parks children in a subspace.
  double sum = 0.0, sq = 0.0;
  const int streams = 200, per = 50;
  for (int s = 0; s < streams; ++s) {
    Rng r = Rng::stream(1234, static_cast<std::uint64_t>(s));
    for (int i = 0; i < per; ++i) {
      const double u = r.uniform();
      sum += u;
      sq += u * u;
    }
  }
  const int n = streams * per;
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

}  // namespace
}  // namespace dh
