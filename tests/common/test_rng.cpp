#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, LognormalIsPositive) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{17};
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent{21};
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace dh
