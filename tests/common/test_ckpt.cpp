// Checkpoint layer unit tests: byte-level serializer round trips, the
// CRC-32 reference vector, and the snapshot container's rejection
// matrix (bad magic, version skew, truncation, corruption, kind
// mismatch) — every failure mode must surface as a descriptive
// dh::Error, never as garbage state.
#include "common/ckpt/serialize.hpp"
#include "common/ckpt/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dh::ckpt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dh_ckpt_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST(Crc32, MatchesReferenceVector) {
  // The standard IEEE 802.3 check value for the ASCII digits "123456789".
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Serializer, RoundTripsEveryFieldType) {
  Serializer s;
  s.begin_section("TEST");
  s.write_u8(0xAB);
  s.write_u32(0xDEADBEEFu);
  s.write_u64(0x0123456789ABCDEFull);
  s.write_i64(-42);
  s.write_bool(true);
  s.write_bool(false);
  s.write_f64(-0.1);  // not exactly representable: bit pattern must survive
  s.write_string("hello snapshot");
  s.write_f64_vec({1.0, 2.5, -3.75});
  s.write_u64_vec({7, 8, 9});
  s.write_bool_vec({true, false, true, true});

  Deserializer d{s.take()};
  d.expect_section("TEST");
  EXPECT_EQ(d.read_u8(), 0xAB);
  EXPECT_EQ(d.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.read_i64(), -42);
  EXPECT_TRUE(d.read_bool());
  EXPECT_FALSE(d.read_bool());
  EXPECT_EQ(d.read_f64(), -0.1);
  EXPECT_EQ(d.read_string(), "hello snapshot");
  EXPECT_EQ(d.read_f64_vec(), (std::vector<double>{1.0, 2.5, -3.75}));
  EXPECT_EQ(d.read_u64_vec(), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(d.read_bool_vec(), (std::vector<bool>{true, false, true, true}));
  EXPECT_TRUE(d.exhausted());
}

TEST(Serializer, SectionMismatchNamesBothTags) {
  Serializer s;
  s.begin_section("AAAA");
  Deserializer d{s.take()};
  try {
    d.expect_section("BBBB");
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("AAAA"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("BBBB"), std::string::npos);
  }
}

TEST(Serializer, ReadPastEndThrows) {
  Serializer s;
  s.write_u32(1);
  Deserializer d{s.take()};
  (void)d.read_u32();
  EXPECT_THROW((void)d.read_u64(), Error);
}

TEST(Serializer, EngineRoundTripContinuesBitIdentically) {
  std::mt19937_64 a{12345};
  for (int i = 0; i < 1000; ++i) (void)a();  // advance mid-stream
  Serializer s;
  save_engine(s, a);
  std::mt19937_64 b;  // different state on purpose
  Deserializer d{s.take()};
  load_engine(d, b);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST_F(CkptTest, SnapshotRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 250, 251, 252};
  const std::string p = path("ok.dhck");
  write_snapshot(p, "unit_test", payload);
  EXPECT_EQ(read_snapshot(p, "unit_test"), payload);
  EXPECT_EQ(read_snapshot(p), payload);  // kind check optional
  EXPECT_TRUE(snapshot_valid(p, "unit_test"));
  // Atomicity: no temp file left behind.
  EXPECT_FALSE(fs::exists(p + ".tmp"));

  bool crc_ok = false;
  const SnapshotHeader h = read_snapshot_header(p, &crc_ok);
  EXPECT_EQ(h.version, kSchemaVersion);
  EXPECT_EQ(h.kind, "unit_test");
  EXPECT_EQ(h.payload_size, payload.size());
  EXPECT_TRUE(crc_ok);
}

TEST_F(CkptTest, EmptyPayloadIsValid) {
  const std::string p = path("empty.dhck");
  write_snapshot(p, "unit_test", {});
  EXPECT_TRUE(read_snapshot(p, "unit_test").empty());
}

TEST_F(CkptTest, OverwriteReplacesAtomically) {
  const std::string p = path("ow.dhck");
  write_snapshot(p, "unit_test", {1, 1, 1});
  write_snapshot(p, "unit_test", {2, 2});
  EXPECT_EQ(read_snapshot(p, "unit_test"),
            (std::vector<std::uint8_t>{2, 2}));
}

TEST_F(CkptTest, MissingFileRejectedWithPath) {
  const std::string p = path("nope.dhck");
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  try {
    (void)read_snapshot(p);
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(p), std::string::npos);
  }
}

TEST_F(CkptTest, ForeignFileRejectedAsBadMagic) {
  const std::string p = path("foreign.dhck");
  std::ofstream(p) << "{\"this\": \"is json, not a snapshot\"}";
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  try {
    (void)read_snapshot(p);
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(CkptTest, VersionSkewNamesBothVersions) {
  const std::string p = path("skew.dhck");
  write_snapshot(p, "unit_test", {1, 2, 3});
  // Bump the on-disk schema version field (bytes 4..7, little-endian).
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const std::uint32_t future = kSchemaVersion + 41;
  f.write(reinterpret_cast<const char*>(&future), 4);
  f.close();
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  try {
    (void)read_snapshot(p);
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(kSchemaVersion)), std::string::npos);
    EXPECT_NE(msg.find(std::to_string(future)), std::string::npos);
  }
}

TEST_F(CkptTest, CorruptedPayloadRejectedByCrc) {
  const std::string p = path("corrupt.dhck");
  write_snapshot(p, "unit_test", {10, 20, 30, 40, 50});
  // Flip one bit in the last payload byte.
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  f.seekg(static_cast<std::streamoff>(end) - 1);
  char c = 0;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(end) - 1);
  c = static_cast<char>(c ^ 0x01);
  f.write(&c, 1);
  f.close();
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  try {
    (void)read_snapshot(p);
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(CkptTest, TruncatedFileRejected) {
  const std::string p = path("trunc.dhck");
  write_snapshot(p, "unit_test", std::vector<std::uint8_t>(64, 7));
  const auto full = fs::file_size(p);
  fs::resize_file(p, full - 10);
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  EXPECT_THROW((void)read_snapshot(p), Error);
  // Even a header-only stub must be rejected cleanly.
  fs::resize_file(p, 6);
  EXPECT_FALSE(snapshot_valid(p, "unit_test"));
  EXPECT_THROW((void)read_snapshot(p), Error);
}

TEST_F(CkptTest, KindMismatchNamesBothKinds) {
  const std::string p = path("kind.dhck");
  write_snapshot(p, "system_sim", {1});
  EXPECT_FALSE(snapshot_valid(p, "population_member"));
  try {
    (void)read_snapshot(p, "population_member");
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("system_sim"), std::string::npos);
    EXPECT_NE(msg.find("population_member"), std::string::npos);
  }
}

TEST_F(CkptTest, RandomPayloadFuzzRoundTrip) {
  std::mt19937_64 rng{99};
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng() % 4096));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    const std::string p = path("fuzz.dhck");
    write_snapshot(p, "fuzz", payload);
    EXPECT_EQ(read_snapshot(p, "fuzz"), payload);
  }
}

}  // namespace
}  // namespace dh::ckpt
