#include "common/obs/trace_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/obs/bench_io.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/units.hpp"
#include "sched/policy.hpp"
#include "sched/system_sim.hpp"

namespace dh {
namespace {

TEST(ObsTraceReport, ReproducesRecoveryQuantaFromARecordedRun) {
  obs::set_enabled(true);
  const std::string path =
      testing::TempDir() + "dh_obs_report_sim.jsonl";
  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(path));
  sched::SystemParams params;
  sched::SystemSimulator sim{params,
                             sched::make_periodic_active_policy()};
  // 10 days at 6 h quanta: several 48 h policy periods, so both BTI
  // recovery windows and EM duty cycles appear in the trace.
  constexpr int kQuanta = 40;
  for (int i = 0; i < kQuanta; ++i) sim.step();
  obs::set_trace_sink(nullptr);

  std::ifstream in(path);
  const obs::TraceReport report = obs::analyze_trace(in);
  EXPECT_EQ(report.malformed_lines, 0u);
  EXPECT_EQ(report.sim_quanta, static_cast<std::size_t>(kQuanta));
  // The acceptance bar: the offline reconstruction equals the live
  // counter exactly, and the schedule actually exercised recovery.
  EXPECT_EQ(report.sim_recovery_quanta, sim.recovery_quanta());
  EXPECT_GT(sim.recovery_quanta(), 0u);
  EXPECT_LT(sim.recovery_quanta(), static_cast<std::size_t>(kQuanta));

  const auto group = report.groups.find("sim/quantum");
  ASSERT_NE(group, report.groups.end());
  EXPECT_EQ(group->second.count, static_cast<std::size_t>(kQuanta));
  EXPECT_EQ(group->second.fields.count("worst_deg"), 1u);
}

TEST(ObsTraceReport, CountsMalformedLinesAndKeepsGoodOnes) {
  std::istringstream in(
      "{\"cat\":\"sim\",\"name\":\"quantum\",\"t_wall_ms\":1,"
      "\"f\":{\"recovery_cores\":2,\"em_recovery\":0}}\n"
      "this is not json\n"
      "{\"truncated\":\n"
      "{\"cat\":\"sim\",\"name\":\"quantum\",\"t_wall_ms\":2,"
      "\"f\":{\"recovery_cores\":0,\"em_recovery\":0}}\n");
  const obs::TraceReport report = obs::analyze_trace(in);
  EXPECT_EQ(report.total_events, 2u);
  EXPECT_EQ(report.malformed_lines, 2u);
  EXPECT_EQ(report.sim_quanta, 2u);
  EXPECT_EQ(report.sim_recovery_quanta, 1u);
}

TEST(ObsTraceReport, SummarisesFieldsAndWallSpan) {
  std::ostringstream trace;
  for (int i = 1; i <= 100; ++i) {
    trace << "{\"cat\":\"pool\",\"name\":\"job\",\"t_wall_ms\":" << i
          << ",\"f\":{\"ms\":" << i << "}}\n";
  }
  std::istringstream in(trace.str());
  const obs::TraceReport report = obs::analyze_trace(in);
  EXPECT_EQ(report.total_events, 100u);
  EXPECT_DOUBLE_EQ(report.wall_span_ms, 99.0);
  const auto group = report.groups.find("pool/job");
  ASSERT_NE(group, report.groups.end());
  const auto field = group->second.fields.find("ms");
  ASSERT_NE(field, group->second.fields.end());
  // Exact order statistics (the report keeps every sample).
  EXPECT_DOUBLE_EQ(field->second.min, 1.0);
  EXPECT_DOUBLE_EQ(field->second.max, 100.0);
  EXPECT_NEAR(field->second.p50, 50.0, 1.0);
  EXPECT_NEAR(field->second.p95, 95.0, 1.0);
}

TEST(ObsTraceReport, AttributesWallTimeToTheEarlierEventsCategory) {
  std::istringstream in(
      "{\"cat\":\"a\",\"name\":\"x\",\"t_wall_ms\":0}\n"
      "{\"cat\":\"b\",\"name\":\"y\",\"t_wall_ms\":10}\n"
      "{\"cat\":\"a\",\"name\":\"x\",\"t_wall_ms\":30}\n");
  const obs::TraceReport report = obs::analyze_trace(in);
  EXPECT_DOUBLE_EQ(report.category_wall_ms.at("a"), 10.0);
  EXPECT_DOUBLE_EQ(report.category_wall_ms.at("b"), 20.0);
}

TEST(ObsTraceReport, PrintedReportNamesTheRecoveryQuanta) {
  std::istringstream in(
      "{\"cat\":\"sim\",\"name\":\"quantum\",\"t_wall_ms\":1,"
      "\"f\":{\"recovery_cores\":0,\"em_recovery\":1}}\n");
  const obs::TraceReport report = obs::analyze_trace(in);
  std::ostringstream os;
  obs::print_trace_report(os, report);
  EXPECT_NE(os.str().find("recovery_quanta = 1"), std::string::npos);
}

class ObsBenchDirTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("DH_BENCH_DIR");
    if (prev != nullptr) prev_ = prev;
  }
  void TearDown() override {
    if (prev_.empty()) {
      ::unsetenv("DH_BENCH_DIR");
    } else {
      ::setenv("DH_BENCH_DIR", prev_.c_str(), 1);
    }
  }

 private:
  std::string prev_;
};

TEST_F(ObsBenchDirTest, UnsetEnvKeepsRelativeFilename) {
  ::unsetenv("DH_BENCH_DIR");
  EXPECT_EQ(obs::json_output_path("BENCH_x.json"), "BENCH_x.json");
}

TEST_F(ObsBenchDirTest, RoutesIntoDhBenchDirAndCreatesIt) {
  const std::string dir = testing::TempDir() + "dh_bench_dir_test/nested";
  ::setenv("DH_BENCH_DIR", dir.c_str(), 1);
  const std::string path = obs::json_output_path("BENCH_x.json");
  EXPECT_EQ(path, dir + "/BENCH_x.json");
  // The directory must exist afterwards — prove it by writing the file.
  std::ofstream out(path);
  out << "{}\n";
  ASSERT_TRUE(out.good());
}

TEST_F(ObsBenchDirTest, UncreatableDirThrows) {
  // /proc is not writable: create_directories must fail loudly.
  ::setenv("DH_BENCH_DIR", "/proc/dh_bench_dir_test", 1);
  EXPECT_THROW((void)obs::json_output_path("BENCH_x.json"), Error);
}

}  // namespace
}  // namespace dh
