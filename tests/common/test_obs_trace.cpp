#include "common/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sched/policy.hpp"
#include "sched/system_sim.hpp"

namespace dh {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Remove the wall-clock stamp so two recordings of the same deterministic
/// run compare equal.
std::string strip_wall_ms(std::string line) {
  const auto key = line.find("\"t_wall_ms\":");
  if (key == std::string::npos) return line;
  auto end = line.find_first_of(",}", key);
  line.erase(key, end - key);
  return line;
}

class ObsTraceTest : public testing::Test {
 protected:
  void TearDown() override {
    obs::set_trace_sink(nullptr);
    obs::set_trace_paused(false);
  }
};

TEST_F(ObsTraceTest, JsonlSinkWritesTheDocumentedSchema) {
  const std::string path = temp_path("dh_obs_trace_schema.jsonl");
  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(path));
  ASSERT_TRUE(obs::trace_enabled());
  obs::trace_event("testcat", "plain", {{"k", 1.5}});
  obs::trace_event_at("testcat", "stamped", 21600.0,
                      {{"a", 2.0}, {"b", -0.5}});
  obs::set_trace_sink(nullptr);
  EXPECT_FALSE(obs::trace_enabled());

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"cat\":\"testcat\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"plain\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_wall_ms\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"f\":{\"k\":1.5}"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"t_sim_s\""), std::string::npos)
      << "plain events must not carry a sim clock";
  EXPECT_NE(lines[1].find("\"t_sim_s\":21600"), std::string::npos);
  EXPECT_NE(lines[1].find("\"f\":{\"a\":2,\"b\":-0.5}"),
            std::string::npos);
}

TEST_F(ObsTraceTest, DisabledTracingEmitsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  // Must be a silent no-op, not an error.
  obs::trace_event("testcat", "dropped", {});
}

TEST_F(ObsTraceTest, UnwritablePathThrowsDescriptiveError) {
  try {
    obs::JsonlTraceSink sink("/nonexistent-dir-dh-obs/trace.jsonl");
    FAIL() << "expected dh::Error for an unwritable trace path";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-dh-obs"),
              std::string::npos)
        << "error message should name the offending path";
  }
}

TEST_F(ObsTraceTest, SinkFlushesOnDestruction) {
  const std::string path = temp_path("dh_obs_trace_flush.jsonl");
  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(path));
  for (int i = 0; i < 100; ++i) {
    obs::trace_event("testcat", "flush", {{"i", static_cast<double>(i)}});
  }
  // No explicit flush: clearing the sink destroys it, and destruction
  // must leave every line on disk.
  obs::set_trace_sink(nullptr);
  EXPECT_EQ(read_lines(path).size(), 100u);
}

TEST_F(ObsTraceTest, PausingSuppressesEmissionWithoutDroppingTheSink) {
  const std::string path = temp_path("dh_obs_trace_pause.jsonl");
  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(path));
  obs::trace_event("testcat", "before", {});
  obs::set_trace_paused(true);
  EXPECT_FALSE(obs::trace_enabled());
  obs::trace_event("testcat", "while_paused", {});
  obs::set_trace_paused(false);
  EXPECT_TRUE(obs::trace_enabled());
  obs::trace_event("testcat", "after", {});
  obs::set_trace_sink(nullptr);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\":\"before\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"after\""), std::string::npos);
}

/// Record a fixed-seed 3-quantum system run to `path` and return the sim's
/// recovery-quanta count.
std::size_t record_three_quanta(const std::string& path) {
  obs::set_trace_sink(std::make_unique<obs::JsonlTraceSink>(path));
  sched::SystemParams params;  // seed = 42
  sched::SystemSimulator sim{params, sched::make_periodic_active_policy()};
  for (int i = 0; i < 3; ++i) sim.step();
  obs::set_trace_sink(nullptr);
  return sim.recovery_quanta();
}

TEST_F(ObsTraceTest, GoldenThreeQuantumSimTrace) {
  const std::string path = temp_path("dh_obs_trace_golden.jsonl");
  record_three_quanta(path);
  const auto lines = read_lines(path);

  // Structural golden: exactly one sim/quantum event per step, each with
  // the sim clock and the full health-field set.
  std::vector<std::string> quanta;
  for (const auto& line : lines) {
    if (line.find("\"name\":\"quantum\"") != std::string::npos) {
      quanta.push_back(line);
    }
  }
  ASSERT_EQ(quanta.size(), 3u);
  const double dt = sched::SystemParams{}.quantum.value();
  for (int i = 0; i < 3; ++i) {
    std::ostringstream stamp;
    stamp << "\"t_sim_s\":" << (i + 1) * dt;
    EXPECT_NE(quanta[i].find("\"cat\":\"sim\""), std::string::npos);
    EXPECT_NE(quanta[i].find(stamp.str()), std::string::npos)
        << "quantum " << i << " missing sim clock " << stamp.str();
    for (const char* field :
         {"worst_deg", "ir_drop_v", "max_temp_c", "running_cores",
          "recovery_cores", "em_recovery", "demand"}) {
      EXPECT_NE(quanta[i].find(std::string{"\""} + field + "\":"),
                std::string::npos)
          << "quantum " << i << " missing field " << field;
    }
  }
}

TEST_F(ObsTraceTest, FixedSeedRunsRecordIdenticalTraces) {
  const std::string path_a = temp_path("dh_obs_trace_rep_a.jsonl");
  const std::string path_b = temp_path("dh_obs_trace_rep_b.jsonl");
  const std::size_t quanta_a = record_three_quanta(path_a);
  const std::size_t quanta_b = record_three_quanta(path_b);
  EXPECT_EQ(quanta_a, quanta_b);

  const auto a = read_lines(path_a);
  const auto b = read_lines(path_b);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Identical except the wall-clock stamp: same seed, same schedule,
    // same event payloads bit-for-bit.
    EXPECT_EQ(strip_wall_ms(a[i]), strip_wall_ms(b[i])) << "line " << i;
  }
}

}  // namespace
}  // namespace dh
