#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dh {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DH_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireThrowsOnFalse) {
  EXPECT_THROW(DH_REQUIRE(false, "always fails"), Error);
}

TEST(Error, MessageContainsExpressionAndContext) {
  try {
    DH_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, ConvergenceErrorIsAnError) {
  EXPECT_THROW(throw ConvergenceError("did not converge"), Error);
}

}  // namespace
}  // namespace dh
