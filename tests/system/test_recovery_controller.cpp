#include "core/recovery_controller.hpp"

#include <gtest/gtest.h>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::core {
namespace {

RecoveryControllerParams scheduled() {
  RecoveryControllerParams p;
  p.bti.period = hours(10.0);
  p.bti.recovery_fraction = 0.2;
  p.em.forward_interval = hours(2.0);
  p.em.reverse_interval = hours(0.5);
  return p;
}

TEST(RecoveryController, NormalDuringOperatingWindow) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(0.5), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, BtiWindowAtEndOfPeriod) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(8.5), false),
            circuit::AssistMode::kBtiActiveRecovery);
  EXPECT_EQ(rc.decide(hours(9.9), false),
            circuit::AssistMode::kBtiActiveRecovery);
  // Next period: back to normal.
  EXPECT_EQ(rc.decide(hours(10.1), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, IdleTimeUsedOpportunistically) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(1.0), true),
            circuit::AssistMode::kBtiActiveRecovery);
}

TEST(RecoveryController, EmDutyWithinOperation) {
  RecoveryController rc{scheduled()};
  // EM cycle: 2h forward + 0.5h reverse.
  EXPECT_EQ(rc.decide(hours(1.0), false), circuit::AssistMode::kNormal);
  EXPECT_EQ(rc.decide(hours(2.2), false),
            circuit::AssistMode::kEmActiveRecovery);
  EXPECT_EQ(rc.decide(hours(2.6), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, AccountingTracksModes) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(4.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(1.0));
  rc.commit(circuit::AssistMode::kBtiActiveRecovery, hours(1.0));
  const auto& acc = rc.accounting();
  EXPECT_DOUBLE_EQ(in_hours(acc.normal), 4.0);
  EXPECT_DOUBLE_EQ(in_hours(acc.em_recovery), 1.0);
  EXPECT_DOUBLE_EQ(in_hours(acc.bti_recovery), 1.0);
  EXPECT_EQ(acc.mode_switches, 2u);
}

TEST(RecoveryController, UptimeCountsEmModeAsOperational) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(6.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(2.0));
  rc.commit(circuit::AssistMode::kBtiActiveRecovery, hours(2.0));
  EXPECT_NEAR(rc.accounting().uptime_fraction(), 0.8, 1e-12);
}

TEST(RecoveryController, OverheadFractionFromSwitchCount) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(1.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(1.0));
  rc.commit(circuit::AssistMode::kNormal, hours(1.0));
  // 2 switches at 1 hour cost each over 3 hours.
  EXPECT_NEAR(rc.accounting().overhead_fraction(hours(1.0)), 2.0 / 3.0,
              1e-12);
}

TEST(RecoveryController, NoScheduleMeansAlwaysNormal) {
  RecoveryController rc{RecoveryControllerParams{}};
  for (double h = 0.0; h < 100.0; h += 7.3) {
    EXPECT_EQ(rc.decide(hours(h), false), circuit::AssistMode::kNormal);
  }
}

TEST(RecoveryController, InvalidFractionRejected) {
  RecoveryControllerParams p;
  p.bti.recovery_fraction = 1.0;
  EXPECT_THROW(RecoveryController{p}, dh::Error);
}

// --- Quantum-splitting regressions -----------------------------------
//
// The point-rule decide(now) used to classify an entire quantum by its
// start instant, so a coarse quantum entering a recovery window near its
// end was wholly booked as Normal and schedules under-delivered their
// planned duty. decide_slices/decide(now, dt) must reproduce the analytic
// duty exactly.

TEST(RecoveryController, SlicesReproduceAnalyticOneToOneDutyCycle) {
  // 1h:1h BTI duty cycle: period 2h, recovery fraction 0.5, so the
  // window is the second hour of every period. Committing slice-by-slice
  // over any horizon must account exactly half the time to recovery —
  // the analytic figure — even with quanta as coarse as the period.
  RecoveryControllerParams p;
  p.bti.period = hours(2.0);
  p.bti.recovery_fraction = 0.5;
  RecoveryController rc{p};
  constexpr int kQuanta = 12;
  for (int q = 0; q < kQuanta; ++q) {
    double covered = 0.0;
    for (const ModeSlice& s :
         rc.decide_slices(hours(2.0 * q), hours(2.0), false)) {
      rc.commit(s.mode, s.duration);
      covered += s.duration.value();
    }
    EXPECT_NEAR(covered, hours(2.0).value(), 1e-6);  // slices cover dt
  }
  const auto& acc = rc.accounting();
  EXPECT_NEAR(in_hours(acc.bti_recovery), kQuanta * 1.0, 1e-9);
  EXPECT_NEAR(in_hours(acc.normal), kQuanta * 1.0, 1e-9);
}

TEST(RecoveryController, DominantOverlapClassifiesStraddlingQuantum) {
  RecoveryControllerParams p;
  p.bti.period = hours(2.0);
  p.bti.recovery_fraction = 0.5;  // window [1h, 2h) of each period
  RecoveryController rc{p};
  // Quantum [0.9h, 2.1h): 1.0h inside the window, 0.2h outside. The old
  // start-instant rule said Normal; dominant overlap says BTI recovery.
  EXPECT_EQ(rc.decide(hours(0.9), false), circuit::AssistMode::kNormal);
  EXPECT_EQ(rc.decide(hours(0.9), hours(1.2), false),
            circuit::AssistMode::kBtiActiveRecovery);
  // Quantum [0.0h, 1.1h): 1.0h normal, 0.1h recovery — Normal dominates.
  EXPECT_EQ(rc.decide(hours(0.0), hours(1.1), false),
            circuit::AssistMode::kNormal);
}

TEST(RecoveryController, SlicesCutAtEmBoundariesToo) {
  RecoveryController rc{scheduled()};  // EM: 2h forward + 0.5h reverse
  // Quantum [1.5h, 3.0h) straddles the reverse window [2.0h, 2.5h).
  const auto slices = rc.decide_slices(hours(1.5), hours(1.5), false);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].mode, circuit::AssistMode::kNormal);
  EXPECT_NEAR(in_hours(slices[0].duration), 0.5, 1e-9);
  EXPECT_EQ(slices[1].mode, circuit::AssistMode::kEmActiveRecovery);
  EXPECT_NEAR(in_hours(slices[1].duration), 0.5, 1e-9);
  EXPECT_EQ(slices[2].mode, circuit::AssistMode::kNormal);
  EXPECT_NEAR(in_hours(slices[2].duration), 0.5, 1e-9);
}

// --- Scheduled-EM vs opportunistic-BTI precedence regression ---------
//
// Opportunistic idle-time BTI healing used to shadow the scheduled EM
// reverse window: an idle-heavy workload kept the controller in BTI mode
// through the EM duty slots and the line never saw its reverse current.

TEST(RecoveryController, ScheduledEmWindowNotShadowedByIdleBti) {
  RecoveryController rc{scheduled()};  // EM cycle: 2h forward + 0.5h rev
  // Sweep one full EM cycle with the load idle throughout. Forward
  // window: idle time is used for opportunistic BTI healing. Reverse
  // window: the scheduled EM duty must win.
  for (double h = 0.05; h < 2.0; h += 0.1) {
    EXPECT_EQ(rc.decide(hours(h), true),
              circuit::AssistMode::kBtiActiveRecovery)
        << "at " << h << "h (forward window)";
  }
  for (double h = 2.05; h < 2.5; h += 0.1) {
    EXPECT_EQ(rc.decide(hours(h), true),
              circuit::AssistMode::kEmActiveRecovery)
        << "at " << h << "h (reverse window)";
  }
  // Next cycle's forward window: opportunistic BTI again.
  EXPECT_EQ(rc.decide(hours(2.6), true),
            circuit::AssistMode::kBtiActiveRecovery);
}

TEST(RecoveryController, ScheduledBtiWindowOutranksEverything) {
  RecoveryController rc{scheduled()};
  // 9.6h sits inside both the BTI window [8h, 10h) and an EM reverse
  // slot [9.5h, 10h) (EM cycle 2.5h). The BTI window outranks the EM
  // duty and any idle opportunity.
  EXPECT_EQ(rc.decide(hours(9.6), false),
            circuit::AssistMode::kBtiActiveRecovery);
  EXPECT_EQ(rc.decide(hours(9.6), true),
            circuit::AssistMode::kBtiActiveRecovery);
}

TEST(RecoveryController, SaveLoadRoundTripsAccounting) {
  RecoveryController a{scheduled()};
  a.commit(circuit::AssistMode::kNormal, hours(3.0));
  a.commit(circuit::AssistMode::kEmActiveRecovery, hours(1.0));
  a.commit(circuit::AssistMode::kBtiActiveRecovery, hours(2.0));
  ckpt::Serializer s;
  a.save_state(s);

  RecoveryController b{scheduled()};
  ckpt::Deserializer d{s.take()};
  b.load_state(d);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(in_hours(b.accounting().normal), in_hours(a.accounting().normal));
  EXPECT_EQ(in_hours(b.accounting().em_recovery),
            in_hours(a.accounting().em_recovery));
  EXPECT_EQ(in_hours(b.accounting().bti_recovery),
            in_hours(a.accounting().bti_recovery));
  EXPECT_EQ(b.accounting().mode_switches, a.accounting().mode_switches);
  // The mode-switch edge detector must survive too: committing the same
  // mode next must not count a spurious switch.
  b.commit(circuit::AssistMode::kBtiActiveRecovery, hours(1.0));
  EXPECT_EQ(b.accounting().mode_switches, a.accounting().mode_switches);
}

}  // namespace
}  // namespace dh::core
