#include "core/recovery_controller.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::core {
namespace {

RecoveryControllerParams scheduled() {
  RecoveryControllerParams p;
  p.bti.period = hours(10.0);
  p.bti.recovery_fraction = 0.2;
  p.em.forward_interval = hours(2.0);
  p.em.reverse_interval = hours(0.5);
  return p;
}

TEST(RecoveryController, NormalDuringOperatingWindow) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(0.5), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, BtiWindowAtEndOfPeriod) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(8.5), false),
            circuit::AssistMode::kBtiActiveRecovery);
  EXPECT_EQ(rc.decide(hours(9.9), false),
            circuit::AssistMode::kBtiActiveRecovery);
  // Next period: back to normal.
  EXPECT_EQ(rc.decide(hours(10.1), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, IdleTimeUsedOpportunistically) {
  RecoveryController rc{scheduled()};
  EXPECT_EQ(rc.decide(hours(1.0), true),
            circuit::AssistMode::kBtiActiveRecovery);
}

TEST(RecoveryController, EmDutyWithinOperation) {
  RecoveryController rc{scheduled()};
  // EM cycle: 2h forward + 0.5h reverse.
  EXPECT_EQ(rc.decide(hours(1.0), false), circuit::AssistMode::kNormal);
  EXPECT_EQ(rc.decide(hours(2.2), false),
            circuit::AssistMode::kEmActiveRecovery);
  EXPECT_EQ(rc.decide(hours(2.6), false), circuit::AssistMode::kNormal);
}

TEST(RecoveryController, AccountingTracksModes) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(4.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(1.0));
  rc.commit(circuit::AssistMode::kBtiActiveRecovery, hours(1.0));
  const auto& acc = rc.accounting();
  EXPECT_DOUBLE_EQ(in_hours(acc.normal), 4.0);
  EXPECT_DOUBLE_EQ(in_hours(acc.em_recovery), 1.0);
  EXPECT_DOUBLE_EQ(in_hours(acc.bti_recovery), 1.0);
  EXPECT_EQ(acc.mode_switches, 2u);
}

TEST(RecoveryController, UptimeCountsEmModeAsOperational) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(6.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(2.0));
  rc.commit(circuit::AssistMode::kBtiActiveRecovery, hours(2.0));
  EXPECT_NEAR(rc.accounting().uptime_fraction(), 0.8, 1e-12);
}

TEST(RecoveryController, OverheadFractionFromSwitchCount) {
  RecoveryController rc{scheduled()};
  rc.commit(circuit::AssistMode::kNormal, hours(1.0));
  rc.commit(circuit::AssistMode::kEmActiveRecovery, hours(1.0));
  rc.commit(circuit::AssistMode::kNormal, hours(1.0));
  // 2 switches at 1 hour cost each over 3 hours.
  EXPECT_NEAR(rc.accounting().overhead_fraction(hours(1.0)), 2.0 / 3.0,
              1e-12);
}

TEST(RecoveryController, NoScheduleMeansAlwaysNormal) {
  RecoveryController rc{RecoveryControllerParams{}};
  for (double h = 0.0; h < 100.0; h += 7.3) {
    EXPECT_EQ(rc.decide(hours(h), false), circuit::AssistMode::kNormal);
  }
}

TEST(RecoveryController, InvalidFractionRejected) {
  RecoveryControllerParams p;
  p.bti.recovery_fraction = 1.0;
  EXPECT_THROW(RecoveryController{p}, dh::Error);
}

}  // namespace
}  // namespace dh::core
