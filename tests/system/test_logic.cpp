#include "logic/logic_netlist.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::logic {
namespace {

TEST(LogicNetlist, SignalProbabilityPropagation) {
  LogicNetlist net;
  const GateId a = net.add_input("a", 0.8);
  const GateId b = net.add_input("b", 0.5);
  const GateId inv = net.add_gate(GateKind::kInv, a);
  const GateId nand = net.add_gate(GateKind::kNand2, a, b);
  const GateId nor = net.add_gate(GateKind::kNor2, a, b);
  const GateId andg = net.add_gate(GateKind::kAnd2, a, b);
  const GateId org = net.add_gate(GateKind::kOr2, a, b);
  const auto p = net.signal_probabilities();
  EXPECT_DOUBLE_EQ(p[a], 0.8);
  EXPECT_DOUBLE_EQ(p[inv], 0.2);
  EXPECT_DOUBLE_EQ(p[nand], 1.0 - 0.4);
  EXPECT_DOUBLE_EQ(p[nor], 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(p[andg], 0.4);
  EXPECT_DOUBLE_EQ(p[org], 0.9);
}

TEST(LogicNetlist, BooleanEvaluation) {
  LogicNetlist net;
  const GateId a = net.add_input("a", 0.5);
  const GateId b = net.add_input("b", 0.5);
  const GateId nand = net.add_gate(GateKind::kNand2, a, b);
  const GateId inv = net.add_gate(GateKind::kInv, nand);
  const auto v = net.evaluate({true, true});
  EXPECT_FALSE(v[nand]);
  EXPECT_TRUE(v[inv]);
  const auto v2 = net.evaluate({true, false});
  EXPECT_TRUE(v2[nand]);
}

TEST(LogicNetlist, C17Truth) {
  // c17's first output (N22 = NAND(g1, g3)) for a known vector.
  LogicNetlist net = make_c17_plus();
  const auto v = net.evaluate({false, false, false, false, false});
  // g1 = NAND(0,0) = 1; g2 = NAND(0,0) = 1; g3 = NAND(0,1) = 1;
  // g5 = NAND(1,1) = 0.
  EXPECT_TRUE(v[5]);   // g1
  EXPECT_FALSE(v[9]);  // g5
}

TEST(LogicSta, FreshCriticalPathIsDepthTimesBaseDelay) {
  LogicNetlist net = make_c17_plus();
  // Depth: inputs -> g2 -> g3 -> g5 -> INV -> INV -> BUF -> OR = 7.
  EXPECT_NEAR(net.critical_path_delay().value(),
              7.0 * GateParams{}.base_delay.value(), 1e-15);
  EXPECT_NEAR(net.delay_degradation(), 0.0, 1e-12);
}

TEST(LogicSta, OperatingAgesTheCriticalPath) {
  LogicNetlist net = make_c17_plus();
  for (int d = 0; d < 180; ++d) {
    net.age(LogicMode::kOperating, Celsius{85.0}, hours(24.0));
  }
  EXPECT_GT(net.delay_degradation(), 0.005);
  EXPECT_GT(net.worst_dvth().value(), 0.005);
}

TEST(LogicSta, ActiveRecoveryHeals) {
  LogicNetlist net = make_c17_plus();
  for (int d = 0; d < 180; ++d) {
    net.age(LogicMode::kOperating, Celsius{85.0}, hours(24.0));
  }
  const double aged = net.delay_degradation();
  for (int d = 0; d < 30; ++d) {
    net.age(LogicMode::kActiveRecovery, Celsius{85.0}, hours(24.0));
  }
  EXPECT_LT(net.delay_degradation(), aged);
}

TEST(LogicSta, IdleVectorChoiceMatters) {
  // Two copies idle 50% of the time at different parked vectors; the
  // optimized vector must not age worse than the all-ones vector.
  LogicNetlist best_net = make_c17_plus();
  LogicNetlist bad_net = make_c17_plus();
  const auto best = best_net.best_idle_vector();
  const std::vector<bool> ones(best.size(), true);
  for (int d = 0; d < 120; ++d) {
    best_net.age(LogicMode::kOperating, Celsius{85.0}, hours(12.0));
    best_net.age(LogicMode::kIdleVector, Celsius{85.0}, hours(12.0), best);
    bad_net.age(LogicMode::kOperating, Celsius{85.0}, hours(12.0));
    bad_net.age(LogicMode::kIdleVector, Celsius{85.0}, hours(12.0), ones);
  }
  EXPECT_LE(best_net.worst_dvth().value(),
            bad_net.worst_dvth().value() + 1e-6);
}

TEST(LogicSta, ActiveRecoveryBeatsBestVector) {
  // The paper's step past input-vector control: active recovery heals
  // every device regardless of the vector.
  LogicNetlist vector_net = make_c17_plus();
  LogicNetlist active_net = make_c17_plus();
  const auto best = vector_net.best_idle_vector();
  for (int d = 0; d < 120; ++d) {
    vector_net.age(LogicMode::kOperating, Celsius{85.0}, hours(12.0));
    vector_net.age(LogicMode::kIdleVector, Celsius{85.0}, hours(12.0),
                   best);
    active_net.age(LogicMode::kOperating, Celsius{85.0}, hours(12.0));
    active_net.age(LogicMode::kActiveRecovery, Celsius{85.0}, hours(12.0));
  }
  EXPECT_LT(active_net.delay_degradation(),
            vector_net.delay_degradation());
}

TEST(LogicNetlist, Validation) {
  LogicNetlist net;
  EXPECT_THROW((void)net.add_input("x", 2.0), Error);
  const GateId a = net.add_input("a", 0.5);
  EXPECT_THROW((void)net.add_gate(GateKind::kNand2, a), Error);
  EXPECT_THROW((void)net.add_gate(GateKind::kInv, a, a), Error);
  EXPECT_THROW((void)net.add_gate(GateKind::kInv, 99), Error);
  EXPECT_THROW((void)net.evaluate({true, false}), Error);
}

TEST(LogicNetlist, GateKindNames) {
  EXPECT_STREQ(to_string(GateKind::kNand2), "NAND2");
  EXPECT_STREQ(to_string(GateKind::kInput), "IN");
}

}  // namespace
}  // namespace dh::logic
