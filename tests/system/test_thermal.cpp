#include "thermal/thermal_grid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::thermal {
namespace {

ThermalGrid make_grid(std::size_t rows = 4, std::size_t cols = 4) {
  ThermalGridParams p;
  p.rows = rows;
  p.cols = cols;
  return ThermalGrid{p};
}

TEST(Thermal, NoPowerMeansAmbient) {
  ThermalGrid g = make_grid();
  g.solve_steady();
  for (std::size_t i = 0; i < g.tile_count(); ++i) {
    EXPECT_NEAR(g.temperature(i).value(), g.params().ambient.value(), 1e-9);
  }
}

TEST(Thermal, EnergyBalanceAtSteadyState) {
  // All injected power must leave through the vertical conductances.
  ThermalGrid g = make_grid();
  g.set_power(g.index(1, 2), Watts{1.5});
  g.set_power(g.index(3, 0), Watts{0.7});
  g.solve_steady();
  double out = 0.0;
  for (std::size_t i = 0; i < g.tile_count(); ++i) {
    out += (g.temperature(i).value() - g.params().ambient.value()) *
           g.params().vertical_g_w_per_k;
  }
  EXPECT_NEAR(out, 2.2, 1e-9);
}

TEST(Thermal, SymmetricPowerGivesSymmetricField) {
  ThermalGrid g = make_grid(3, 3);
  g.set_power(g.index(1, 1), Watts{1.0});  // center
  g.solve_steady();
  const double corner = g.temperature(g.index(0, 0)).value();
  EXPECT_NEAR(g.temperature(g.index(0, 2)).value(), corner, 1e-9);
  EXPECT_NEAR(g.temperature(g.index(2, 0)).value(), corner, 1e-9);
  EXPECT_NEAR(g.temperature(g.index(2, 2)).value(), corner, 1e-9);
  EXPECT_GT(g.temperature(g.index(1, 1)).value(), corner);
}

TEST(Thermal, HeatSpreadsToIdleNeighbour) {
  // The Fig. 12a effect: an idle (zero-power) tile parked next to hot
  // neighbours rides up in temperature — free recovery acceleration.
  ThermalGrid g = make_grid(3, 3);
  for (std::size_t i = 0; i < g.tile_count(); ++i) {
    if (i != g.index(1, 1)) g.set_power(i, Watts{2.0});
  }
  g.solve_steady();
  const double idle_center = g.temperature(g.index(1, 1)).value();
  EXPECT_GT(idle_center, g.params().ambient.value() + 5.0);
}

TEST(Thermal, TransientConvergesToSteadyState) {
  ThermalGrid steady = make_grid();
  ThermalGrid transient = make_grid();
  steady.set_power(steady.index(2, 2), Watts{1.0});
  transient.set_power(transient.index(2, 2), Watts{1.0});
  steady.solve_steady();
  for (int i = 0; i < 5000; ++i) {
    transient.step(Seconds{0.01});
  }
  for (std::size_t i = 0; i < steady.tile_count(); ++i) {
    EXPECT_NEAR(transient.temperature(i).value(),
                steady.temperature(i).value(), 0.05);
  }
}

TEST(Thermal, TransientMovesMonotonicallyTowardSteady) {
  ThermalGrid g = make_grid();
  g.set_power(g.index(0, 0), Watts{2.0});
  double prev = g.params().ambient.value();
  for (int i = 0; i < 10; ++i) {
    g.step(Seconds{0.005});
    const double t = g.temperature(g.index(0, 0)).value();
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
}

TEST(Thermal, MaxAndMeanConsistent) {
  ThermalGrid g = make_grid();
  g.set_power(g.index(1, 1), Watts{3.0});
  g.solve_steady();
  EXPECT_GE(g.max_temperature().value(), g.mean_temperature().value());
  EXPECT_GE(g.mean_temperature().value(), g.params().ambient.value());
}

TEST(Thermal, PowerMapValidation) {
  ThermalGrid g = make_grid();
  EXPECT_THROW(g.set_power(999, Watts{1.0}), Error);
  EXPECT_THROW(g.set_power(0, Watts{-1.0}), Error);
  EXPECT_THROW(g.set_power_map(std::vector<double>{1.0}), Error);
}

TEST(Thermal, IndexValidation) {
  const ThermalGrid g = make_grid(2, 3);
  EXPECT_EQ(g.index(1, 2), 5u);
  EXPECT_THROW((void)g.index(2, 0), Error);
}

}  // namespace
}  // namespace dh::thermal
