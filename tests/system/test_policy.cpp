#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dh::sched {
namespace {

std::vector<CoreObservation> make_obs(std::size_t n, double demand = 0.7) {
  std::vector<CoreObservation> obs(n);
  for (auto& o : obs) o.demanded_utilization = demand;
  return obs;
}

TEST(Policy, NoRecoveryAlwaysRuns) {
  auto p = make_no_recovery_policy();
  Rng rng{1};
  const auto d = p->decide(make_obs(4), hours(100.0), hours(6.0), rng);
  ASSERT_EQ(d.actions.size(), 4u);
  for (const auto a : d.actions) EXPECT_EQ(a, CoreAction::kRun);
  EXPECT_FALSE(d.em_recovery_mode);
  EXPECT_EQ(p->name(), "no-recovery");
}

TEST(Policy, PassiveIdlesZeroDemand) {
  auto p = make_passive_idle_policy();
  Rng rng{1};
  auto obs = make_obs(3);
  obs[1].demanded_utilization = 0.0;
  const auto d = p->decide(obs, hours(0.0), hours(6.0), rng);
  EXPECT_EQ(d.actions[0], CoreAction::kRun);
  EXPECT_EQ(d.actions[1], CoreAction::kIdle);
  EXPECT_EQ(d.actions[2], CoreAction::kRun);
}

TEST(Policy, PeriodicSchedulesRecoveryWindow) {
  PeriodicPolicyParams pp;
  pp.period = hours(10.0);
  pp.bti_recovery_fraction = 0.3;
  auto p = make_periodic_active_policy(pp);
  Rng rng{1};
  // Inside the operating window.
  auto d1 = p->decide(make_obs(2), hours(2.0), hours(1.0), rng);
  EXPECT_EQ(d1.actions[0], CoreAction::kRun);
  // Inside the trailing recovery window.
  auto d2 = p->decide(make_obs(2), hours(8.0), hours(1.0), rng);
  EXPECT_EQ(d2.actions[0], CoreAction::kBtiActiveRecovery);
  EXPECT_EQ(d2.actions[1], CoreAction::kBtiActiveRecovery);
}

TEST(Policy, PeriodicUsesIdleDemandForRecovery) {
  auto p = make_periodic_active_policy();
  Rng rng{1};
  auto obs = make_obs(2);
  obs[1].demanded_utilization = 0.0;
  const auto d = p->decide(obs, hours(1.0), hours(1.0), rng);
  EXPECT_EQ(d.actions[1], CoreAction::kBtiActiveRecovery);
}

TEST(Policy, AdaptiveTriggersOnThresholdWithHysteresis) {
  AdaptivePolicyParams ap;
  ap.threshold = Volts{0.010};
  ap.release = Volts{0.004};
  auto p = make_adaptive_sensor_policy(ap);
  Rng rng{1};
  auto obs = make_obs(1);
  obs[0].sensed_dvth = Volts{0.005};  // below threshold
  EXPECT_EQ(p->decide(obs, hours(0.0), hours(1.0), rng).actions[0],
            CoreAction::kRun);
  obs[0].sensed_dvth = Volts{0.012};  // crosses threshold
  EXPECT_EQ(p->decide(obs, hours(1.0), hours(1.0), rng).actions[0],
            CoreAction::kBtiActiveRecovery);
  obs[0].sensed_dvth = Volts{0.006};  // between release and threshold
  EXPECT_EQ(p->decide(obs, hours(2.0), hours(1.0), rng).actions[0],
            CoreAction::kBtiActiveRecovery);  // hysteresis holds
  obs[0].sensed_dvth = Volts{0.003};  // below release
  EXPECT_EQ(p->decide(obs, hours(3.0), hours(1.0), rng).actions[0],
            CoreAction::kRun);
}

TEST(Policy, DarkSiliconParksSpares) {
  RotationPolicyParams rp;
  rp.spares = 2;
  auto p = make_dark_silicon_policy(rp);
  Rng rng{1};
  const auto d = p->decide(make_obs(8), hours(0.0), hours(6.0), rng);
  int parked = 0;
  for (const auto a : d.actions) {
    if (a == CoreAction::kBtiActiveRecovery) ++parked;
  }
  EXPECT_EQ(parked, 2);
}

TEST(Policy, DarkSiliconRotatesOverTime) {
  RotationPolicyParams rp;
  rp.spares = 1;
  rp.rotation_period = hours(24.0);
  auto p = make_dark_silicon_policy(rp);
  Rng rng{1};
  std::set<std::size_t> parked_cores;
  for (int day = 0; day < 8; ++day) {
    const auto d = p->decide(make_obs(8), days(day), hours(6.0), rng);
    for (std::size_t i = 0; i < d.actions.size(); ++i) {
      if (d.actions[i] == CoreAction::kBtiActiveRecovery) {
        parked_cores.insert(i);
      }
    }
  }
  // Rotation must reach every core across 8 periods on an 8-core array.
  EXPECT_EQ(parked_cores.size(), 8u);
}

TEST(Policy, EmRecoveryDutyEngagesPeriodically) {
  auto p = make_dark_silicon_policy({.spares = 1, .em_recovery_duty = 0.3});
  Rng rng{1};
  int em_steps = 0;
  const int total = 40;
  for (int s = 0; s < total; ++s) {
    const auto d = p->decide(make_obs(4), hours(6.0 * s), hours(6.0), rng);
    if (d.em_recovery_mode) ++em_steps;
  }
  EXPECT_GT(em_steps, total / 10);
  EXPECT_LT(em_steps, total / 2);
}

}  // namespace
}  // namespace dh::sched
