// Checkpoint/restore property tests at the system level: save → restore
// → run(T') must be bit-identical to an uninterrupted run(T+T') — for a
// single simulator and for population sweeps, at 1, 4, and 8 threads —
// and any snapshot that does not match this build/configuration must be
// refused with a descriptive dh::Error before state is touched.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/ckpt/serialize.hpp"
#include "common/ckpt/snapshot.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/parallel.hpp"
#include "sched/population.hpp"
#include "sched/system_sim.hpp"

namespace dh::sched {
namespace {

namespace fs = std::filesystem;

SystemParams small_chip(std::uint64_t seed = 7) {
  SystemParams p;
  p.rows = 2;
  p.cols = 2;
  p.quantum = hours(6.0);
  p.seed = seed;
  return p;
}

/// The adaptive policy carries per-core hysteresis state, so it exercises
/// the policy save/load path (the scheduled policies are stateless).
std::unique_ptr<RecoveryPolicy> adaptive() {
  return make_adaptive_sensor_policy({.threshold = Volts{0.004},
                                      .release = Volts{0.002},
                                      .em_recovery_duty = 0.2});
}

void expect_bit_identical(const SystemSummary& a, const SystemSummary& b) {
  EXPECT_EQ(a.guardband_fraction, b.guardband_fraction);
  EXPECT_EQ(a.final_degradation, b.final_degradation);
  EXPECT_EQ(a.time_to_failure.value(), b.time_to_failure.value());
  EXPECT_EQ(a.mean_throughput, b.mean_throughput);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.mean_temperature_c, b.mean_temperature_c);
  EXPECT_EQ(a.recovery_quanta, b.recovery_quanta);
  EXPECT_EQ(a.pdn_stats.worst_drop_v, b.pdn_stats.worst_drop_v);
  EXPECT_EQ(a.pdn_stats.max_void_len_m, b.pdn_stats.max_void_len_m);
  EXPECT_EQ(a.pdn_stats.nucleated_segments, b.pdn_stats.nucleated_segments);
  EXPECT_EQ(a.pdn_stats.broken_segments, b.pdn_stats.broken_segments);
}

void expect_traces_identical(const SystemSimulator& a,
                             const SystemSimulator& b) {
  EXPECT_EQ(a.degradation_trace().raw_times(),
            b.degradation_trace().raw_times());
  EXPECT_EQ(a.degradation_trace().raw_values(),
            b.degradation_trace().raw_values());
  EXPECT_EQ(a.ir_drop_trace().raw_values(), b.ir_drop_trace().raw_values());
  EXPECT_EQ(a.temperature_trace().raw_values(),
            b.temperature_trace().raw_values());
}

/// Scratch directory fixture (same pattern as tests/common/test_ckpt.cpp).
class CkptSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dh_ckpt_sys_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    unsetenv("DH_CKPT_DIR");
    unsetenv("DH_CKPT_EVERY");
    set_global_thread_count(0);  // back to the default pool
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(CkptSystemTest, ResumeIsBitIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : {1u, 4u, 8u}) {
    set_global_thread_count(threads);

    SystemSimulator reference{small_chip(), adaptive()};
    reference.run(days(60.0));

    SystemSimulator first_half{small_chip(), adaptive()};
    first_half.run(days(30.0));
    ckpt::Serializer s;
    first_half.save_state(s);

    SystemSimulator resumed{small_chip(), adaptive()};
    ckpt::Deserializer d{s.take()};
    resumed.load_state(d);
    EXPECT_TRUE(d.exhausted());
    EXPECT_EQ(resumed.now().value(), first_half.now().value());
    resumed.run(days(60.0));

    expect_bit_identical(reference.summary(), resumed.summary());
    expect_traces_identical(reference, resumed);
  }
}

TEST_F(CkptSystemTest, CheckpointFileRoundTrip) {
  SystemSimulator reference{small_chip(), adaptive()};
  reference.run(days(40.0));

  SystemSimulator first_half{small_chip(), adaptive()};
  first_half.run(days(20.0));
  first_half.save_checkpoint(path("half.dhck"));

  SystemSimulator resumed{small_chip(), adaptive()};
  resumed.load_checkpoint(path("half.dhck"));
  resumed.run(days(40.0));
  expect_bit_identical(reference.summary(), resumed.summary());
}

TEST_F(CkptSystemTest, ResumeCounterTicksOnRestore) {
  obs::Counter& resumes = obs::registry().counter("sim.resume");
  const std::uint64_t before = resumes.value();
  SystemSimulator sim{small_chip(), adaptive()};
  sim.run(days(10.0));
  sim.save_checkpoint(path("c.dhck"));
  SystemSimulator other{small_chip(), adaptive()};
  other.load_checkpoint(path("c.dhck"));
  EXPECT_EQ(resumes.value(), before + 1);
}

TEST_F(CkptSystemTest, ForeignConfigurationRefused) {
  SystemSimulator sim{small_chip(), adaptive()};
  sim.run(days(10.0));
  sim.save_checkpoint(path("c.dhck"));

  SystemParams other = small_chip();
  other.rows = 3;
  other.cols = 3;
  SystemSimulator victim{other, adaptive()};
  try {
    victim.load_checkpoint(path("c.dhck"));
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different simulator configuration"),
              std::string::npos);
  }
}

TEST_F(CkptSystemTest, DifferentSeedRefused) {
  SystemSimulator sim{small_chip(7), adaptive()};
  sim.run(days(10.0));
  sim.save_checkpoint(path("c.dhck"));
  SystemSimulator victim{small_chip(8), adaptive()};
  EXPECT_THROW(victim.load_checkpoint(path("c.dhck")), Error);
}

TEST_F(CkptSystemTest, TrailingBytesRefused) {
  SystemSimulator sim{small_chip(), adaptive()};
  sim.run(days(10.0));
  ckpt::Serializer s;
  sim.save_state(s);
  auto payload = s.take();
  payload.push_back(0xFF);  // one byte past the simulator state
  ckpt::write_snapshot(path("c.dhck"), "system_sim", payload);
  SystemSimulator victim{small_chip(), adaptive()};
  try {
    victim.load_checkpoint(path("c.dhck"));
    FAIL() << "expected dh::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
}

TEST_F(CkptSystemTest, EnvDrivenCheckpointingResumesKilledRun) {
  setenv("DH_CKPT_DIR", dir_.string().c_str(), 1);
  setenv("DH_CKPT_EVERY", "16", 1);

  // "Killed" run: stops at 30 of 60 days, leaving its periodic
  // checkpoint behind (120 steps, a multiple of 16 is at step 112 —
  // losing at most one interval is the contract, so the resumed run
  // recomputes the tail from the last checkpoint).
  {
    SystemSimulator interrupted{small_chip(), adaptive()};
    interrupted.run(days(30.0));
  }
  EXPECT_TRUE(ckpt::snapshot_valid(path("sim_seed7.dhck"), "system_sim"));

  // Fresh process stand-in: a new simulator auto-resumes from the
  // checkpoint directory and finishes the lifetime.
  SystemSimulator resumed{small_chip(), adaptive()};
  resumed.run(days(60.0));

  unsetenv("DH_CKPT_DIR");
  unsetenv("DH_CKPT_EVERY");
  SystemSimulator reference{small_chip(), adaptive()};
  reference.run(days(60.0));

  expect_bit_identical(reference.summary(), resumed.summary());
  expect_traces_identical(reference, resumed);
}

TEST_F(CkptSystemTest, MalformedCkptEveryRejected) {
  setenv("DH_CKPT_DIR", dir_.string().c_str(), 1);
  setenv("DH_CKPT_EVERY", "zero", 1);
  SystemSimulator sim{small_chip(), adaptive()};
  EXPECT_THROW(sim.run(days(1.0)), Error);
}

TEST_F(CkptSystemTest, PopulationResumeMatchesFreshSweep) {
  const auto factory = [](std::size_t) { return adaptive(); };
  const SystemParams base = small_chip(21);
  constexpr std::size_t kCount = 6;
  const Seconds lifetime = days(20.0);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    set_global_thread_count(threads);
    const fs::path sweep = dir_ / ("sweep_t" + std::to_string(threads));
    fs::create_directories(sweep);

    const auto plain = run_population(base, kCount, lifetime, factory);
    const auto fresh =
        run_population(base, kCount, lifetime, factory, sweep.string());
    ASSERT_EQ(plain.size(), fresh.size());
    for (std::size_t i = 0; i < kCount; ++i) {
      expect_bit_identical(plain[i], fresh[i]);
    }

    // Completion bitmap: everything done.
    for (const bool done : population_completion(sweep.string(), kCount)) {
      EXPECT_TRUE(done);
    }

    // Second run resumes every member from disk, bit-identically.
    obs::Counter& resumed_ctr =
        obs::registry().counter("population.resumed");
    const std::uint64_t before = resumed_ctr.value();
    const auto resumed =
        run_population(base, kCount, lifetime, factory, sweep.string());
    EXPECT_EQ(resumed_ctr.value() - before, kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      expect_bit_identical(plain[i], resumed[i]);
    }
  }
}

TEST_F(CkptSystemTest, PopulationRecomputesMissingAndCorruptMembers) {
  const auto factory = [](std::size_t) { return adaptive(); };
  const SystemParams base = small_chip(22);
  constexpr std::size_t kCount = 4;
  const Seconds lifetime = days(20.0);

  const auto first =
      run_population(base, kCount, lifetime, factory, dir_.string());

  // Simulate a crash that lost one member and corrupted another.
  fs::remove(dir_ / "member_1.dhck");
  { std::ofstream(dir_ / "member_2.dhck") << "garbage"; }
  const auto done = population_completion(dir_.string(), kCount);
  EXPECT_TRUE(done[0]);
  EXPECT_FALSE(done[1]);
  EXPECT_FALSE(done[2]);
  EXPECT_TRUE(done[3]);

  const auto second =
      run_population(base, kCount, lifetime, factory, dir_.string());
  for (std::size_t i = 0; i < kCount; ++i) {
    expect_bit_identical(first[i], second[i]);
  }
}

TEST_F(CkptSystemTest, PopulationManifestGuardsAgainstSweepMixing) {
  const auto factory = [](std::size_t) { return adaptive(); };
  const SystemParams base = small_chip(23);
  (void)run_population(base, 2, days(10.0), factory, dir_.string());

  // Different member count, lifetime, or base seed → refuse the directory.
  EXPECT_THROW(
      (void)run_population(base, 3, days(10.0), factory, dir_.string()),
      Error);
  EXPECT_THROW(
      (void)run_population(base, 2, days(11.0), factory, dir_.string()),
      Error);
  SystemParams other = base;
  other.seed = 99;
  EXPECT_THROW(
      (void)run_population(other, 2, days(10.0), factory, dir_.string()),
      Error);
}

}  // namespace
}  // namespace dh::sched
