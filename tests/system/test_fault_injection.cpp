// End-to-end fault-injection tests: every production fault site must be
// observable degrading gracefully — a recoverable fallback with a correct
// answer, or a structured dh::Error — never a crash or silent garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/fault/fault.hpp"
#include "common/obs/bench_io.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "pdn/pdn_grid.hpp"
#include "sched/system_sim.hpp"

namespace dh {
namespace {

namespace fs = std::filesystem;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    dir_ = fs::temp_directory_path() /
           ("dh_fault_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::reset();
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

pdn::PdnParams small_grid() {
  pdn::PdnParams p;
  p.rows = p.cols = 8;
  return p;
}

TEST_F(FaultInjectionTest, FactorizationBreakdownFallsBackToDense) {
  const pdn::PdnGrid reference{small_grid()};
  const std::vector<double> loads(reference.node_count(), 0.002);
  const auto r = reference.fresh_segment_resistances(Celsius{85.0});
  const auto want = reference.solve_uncached(loads, r);

  fault::configure("solver.factor_breakdown:1:1");
  const pdn::PdnGrid grid{small_grid()};
  const auto got = grid.solve(loads, r);  // first solve builds the solver
  EXPECT_EQ(fault::injection_count("solver.factor_breakdown"), 1u);
  EXPECT_NEAR(got.worst_drop_v, want.worst_drop_v, 1e-9);
  for (std::size_t i = 0; i < got.node_voltage.size(); ++i) {
    EXPECT_NEAR(got.node_voltage[i], want.node_voltage[i], 1e-9);
  }
}

TEST_F(FaultInjectionTest, CgStagnationRecoversThroughRescuePath) {
  // The stagnation site sits on the IC(0)-CG path, which the engine only
  // picks above direct_max_dim (512) nodes — hence the 24x24 grid.
  pdn::PdnParams gp;
  gp.rows = gp.cols = 24;
  const pdn::PdnGrid reference{gp};
  ASSERT_EQ(reference.solver_method(), math::sparse::SpdMethod::kIc0Cg);
  const std::vector<double> loads(reference.node_count(), 0.002);
  auto r = reference.fresh_segment_resistances(Celsius{85.0});
  const auto want_fresh = reference.solve_uncached(loads, r);

  // Unlimited stagnation: the fresh solve AND the drifted re-solve both
  // hit the fault and must both still produce the right answer.
  fault::configure("solver.cg_stagnate:1:1000");
  const pdn::PdnGrid grid{gp};
  const auto got_fresh = grid.solve(loads, r);
  EXPECT_NEAR(got_fresh.worst_drop_v, want_fresh.worst_drop_v, 1e-9);

  for (double& x : r) x *= 1.0 + 1e-4;  // EM-style drift
  const auto want_drift = reference.solve_uncached(loads, r);
  const auto got_drift = grid.solve(loads, r);
  EXPECT_NEAR(got_drift.worst_drop_v, want_drift.worst_drop_v, 1e-9);
  EXPECT_GE(fault::injection_count("solver.cg_stagnate"), 1u);
}

TEST_F(FaultInjectionTest, SensorFaultsDegradeToLastGoodReading) {
  obs::Counter& rejected = obs::registry().counter("sensor.rejected");
  const std::uint64_t before = rejected.value();

  fault::configure("sensor.nan:0.2:50,sensor.outlier:0.2:50");
  sched::SystemParams p;
  p.rows = p.cols = 2;
  p.seed = 5;
  sched::SystemSimulator sim{p, sched::make_adaptive_sensor_policy(
                                    {.threshold = Volts{0.004},
                                     .release = Volts{0.002},
                                     .em_recovery_duty = 0.2})};
  sim.run(days(30.0));

  EXPECT_GE(fault::injection_count("sensor.nan") +
                fault::injection_count("sensor.outlier"),
            1u);
  EXPECT_EQ(rejected.value() - before,
            fault::injection_count("sensor.nan") +
                fault::injection_count("sensor.outlier"));
  const auto s = sim.summary();
  EXPECT_TRUE(std::isfinite(s.guardband_fraction));
  EXPECT_TRUE(std::isfinite(s.availability));
  EXPECT_TRUE(std::isfinite(s.energy_joules));
  EXPECT_GE(s.guardband_fraction, 0.0);
}

TEST_F(FaultInjectionTest, SensorProbesDoNotPerturbFaultFreeRuns) {
  const auto run_summary = [] {
    sched::SystemParams p;
    p.rows = p.cols = 2;
    p.seed = 6;
    sched::SystemSimulator sim{p, sched::make_periodic_active_policy()};
    sim.run(days(20.0));
    return sim.summary();
  };
  fault::reset();  // disarmed
  const auto a = run_summary();
  fault::configure("some.unrelated.site:1:1");  // armed, different site
  const auto b = run_summary();
  EXPECT_EQ(a.guardband_fraction, b.guardband_fraction);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.recovery_quanta, b.recovery_quanta);
}

TEST_F(FaultInjectionTest, TraceWriteFaultSurfacesAsErrorAndCountsDrop) {
  obs::Counter& drops = obs::registry().counter("trace.drop");
  const std::uint64_t before = drops.value();

  obs::JsonlTraceSink sink{path("trace.jsonl")};
  obs::TraceEvent e;
  e.category = "test";
  e.name = "event";

  fault::configure("io.trace_write:1:1");
  try {
    sink.write(e);
    FAIL() << "expected dh::Error";
  } catch (const Error& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("injected"), std::string::npos);
    EXPECT_NE(msg.find("trace.jsonl"), std::string::npos);
  }
  EXPECT_EQ(drops.value() - before, 1u);

  // Cap reached: the sink keeps working afterwards.
  sink.write(e);
  sink.flush();
  std::ifstream in(path("trace.jsonl"));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"cat\":\"test\""), std::string::npos);
}

TEST_F(FaultInjectionTest, BenchWriteFaultNeverClobbersPublishedFile) {
  const std::string p = path("BENCH_x.json");
  obs::write_file_atomic(p, "{\"v\": 1}\n");

  fault::configure("io.bench_write:1:1");
  try {
    obs::write_file_atomic(p, "{\"v\": 2}\n");
    FAIL() << "expected dh::Error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("BENCH_x.json"),
              std::string::npos);
  }
  // The previously published artifact is intact — atomicity held.
  std::ifstream in(p);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"v\": 1}\n");
  EXPECT_FALSE(fs::exists(p + ".tmp"));

  // Cap reached: the next write goes through.
  obs::write_file_atomic(p, "{\"v\": 3}\n");
  std::ifstream in2(p);
  std::stringstream content2;
  content2 << in2.rdbuf();
  EXPECT_EQ(content2.str(), "{\"v\": 3}\n");
}

TEST_F(FaultInjectionTest, SolverFaultsDuringLifetimeRunStayGraceful) {
  // A lifetime run with recoverable solver faults firing throughout must
  // complete and stay finite — the degradation ladder in action.
  fault::configure("solver.cg_stagnate:0.05:1000000");
  sched::SystemParams p;
  p.rows = p.cols = 2;
  p.seed = 11;
  sched::SystemSimulator sim{p, sched::make_periodic_active_policy()};
  sim.run(days(30.0));
  const auto s = sim.summary();
  EXPECT_TRUE(std::isfinite(s.guardband_fraction));
  EXPECT_TRUE(std::isfinite(s.mean_temperature_c));
}

}  // namespace
}  // namespace dh
