#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::sched {
namespace {

TEST(Workload, ConstantKind) {
  Workload w{WorkloadParams{.kind = WorkloadKind::kConstant,
                            .utilization = 0.6}};
  Rng rng{1};
  EXPECT_DOUBLE_EQ(w.sample(hours(0.0), rng), 0.6);
  EXPECT_DOUBLE_EQ(w.sample(days(100.0), rng), 0.6);
}

TEST(Workload, PeriodicDuty) {
  WorkloadParams p;
  p.kind = WorkloadKind::kPeriodic;
  p.utilization = 0.9;
  p.period = hours(10.0);
  p.duty = 0.3;
  Workload w{p};
  Rng rng{1};
  EXPECT_DOUBLE_EQ(w.sample(hours(1.0), rng), 0.9);   // in the on window
  EXPECT_DOUBLE_EQ(w.sample(hours(5.0), rng), 0.0);   // off
  EXPECT_DOUBLE_EQ(w.sample(hours(11.0), rng), 0.9);  // next period
}

TEST(Workload, PhaseShiftsTheWindow) {
  WorkloadParams p;
  p.kind = WorkloadKind::kPeriodic;
  p.period = hours(10.0);
  p.duty = 0.3;
  p.phase = hours(5.0);
  Workload w{p};
  Rng rng{1};
  EXPECT_DOUBLE_EQ(w.sample(hours(1.0), rng), 0.0);  // shifted off
  EXPECT_DOUBLE_EQ(w.sample(hours(6.0), rng), p.utilization);
}

TEST(Workload, BurstyStaysInRange) {
  WorkloadParams p;
  p.kind = WorkloadKind::kBursty;
  p.utilization = 0.8;
  Workload w{p};
  Rng rng{3};
  bool saw_high = false, saw_low = false;
  for (int i = 0; i < 500; ++i) {
    const double u = w.sample(hours(i), rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 0.8);
    saw_high |= u > 0.7;
    saw_low |= u < 0.1;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
}

TEST(Workload, DiurnalOscillates) {
  WorkloadParams p;
  p.kind = WorkloadKind::kDiurnal;
  p.utilization = 1.0;
  p.period = hours(24.0);
  Workload w{p};
  Rng rng{5};
  double lo = 1e9, hi = -1e9;
  for (int h = 0; h < 24; ++h) {
    const double u = w.sample(hours(h), rng);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GT(hi - lo, 0.3);
}

TEST(Workload, Validation) {
  WorkloadParams p;
  p.utilization = 1.5;
  EXPECT_THROW(Workload{p}, Error);
  p = WorkloadParams{};
  p.duty = 0.0;
  EXPECT_THROW(Workload{p}, Error);
}

}  // namespace
}  // namespace dh::sched
