#include "core/rejuvenation_planner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "device/calibration.hpp"
#include "em/em_sensor.hpp"
#include "em/wire.hpp"

namespace dh::core {
namespace {

BtiPlanningInput accelerated_input() {
  BtiPlanningInput in;
  in.stress = device::paper_conditions::accelerated_stress();
  in.recovery = device::paper_conditions::recovery_no4();
  // Short scheduling periods: the Fig. 4 lesson is that in-time recovery
  // must come before precursors lock, so the period is hours, not days.
  in.period = hours(2.0);
  in.lifetime = days(8.0);
  in.residual_budget = Volts{0.003};
  return in;
}

TEST(BtiPlanner, FindsScheduleMeetingBudget) {
  const BtiSchedule s = plan_bti_recovery(accelerated_input());
  EXPECT_GT(s.recovery_fraction, 0.0);
  EXPECT_LT(s.recovery_fraction, 0.9);
  EXPECT_LE(s.residual_permanent.value(), 0.003 + 1e-5);
  EXPECT_GT(s.unmitigated_permanent.value(), s.residual_permanent.value());
}

TEST(BtiPlanner, ZeroScheduleWhenAlreadyWithinBudget) {
  BtiPlanningInput in = accelerated_input();
  in.stress = device::BtiCondition{Volts{0.4}, Celsius{25.0}};  // benign
  in.lifetime = days(2.0);
  in.residual_budget = Volts{0.02};
  const BtiSchedule s = plan_bti_recovery(in);
  EXPECT_DOUBLE_EQ(s.recovery_fraction, 0.0);
}

TEST(BtiPlanner, TighterBudgetNeedsMoreRecovery) {
  BtiPlanningInput loose = accelerated_input();
  loose.residual_budget = Volts{0.006};
  BtiPlanningInput tight = accelerated_input();
  tight.residual_budget = Volts{0.002};
  EXPECT_GE(plan_bti_recovery(tight).recovery_fraction,
            plan_bti_recovery(loose).recovery_fraction);
}

TEST(BtiPlanner, ValidatesInput) {
  BtiPlanningInput in = accelerated_input();
  in.stress = device::paper_conditions::recovery_no1();  // not a stress
  EXPECT_THROW((void)plan_bti_recovery(in), dh::Error);
}

EmPlanningInput hot_wire_input() {
  EmPlanningInput in;
  in.wire = em::paper_wire();
  in.material = em::paper_calibrated_em_material();
  in.operating_density = mega_amps_per_cm2(7.96);
  in.temperature = Celsius{230.0};
  in.lifetime = days(10.0);
  in.stress_budget = 0.7;
  return in;
}

TEST(EmPlanner, HotWireNeedsRecoveryIntervals) {
  const EmSchedule s = plan_em_recovery(hot_wire_input());
  EXPECT_GT(s.reverse_interval.value(), 0.0);
  EXPECT_GT(s.forward_interval.value(), 0.0);
  EXPECT_GT(s.nucleation_margin_factor, 1.0);
}

TEST(EmPlanner, ImmortalWireNeedsNothing) {
  EmPlanningInput in = hot_wire_input();
  in.operating_density = mega_amps_per_cm2(0.001);
  const EmSchedule s = plan_em_recovery(in);
  EXPECT_DOUBLE_EQ(s.reverse_interval.value(), 0.0);
  EXPECT_GT(s.nucleation_margin_factor, 1.0);
}

TEST(EmPlanner, ZeroCurrentNeedsNothing) {
  EmPlanningInput in = hot_wire_input();
  in.operating_density = AmpsPerM2{0.0};
  EXPECT_DOUBLE_EQ(plan_em_recovery(in).reverse_interval.value(), 0.0);
}

TEST(EmPlanner, LongerLifetimeNeedsMoreReverseShare) {
  EmPlanningInput short_life = hot_wire_input();
  short_life.lifetime = days(2.0);
  EmPlanningInput long_life = hot_wire_input();
  long_life.lifetime = days(40.0);
  const EmSchedule s_short = plan_em_recovery(short_life);
  const EmSchedule s_long = plan_em_recovery(long_life);
  const auto share = [](const EmSchedule& s) {
    const double total =
        s.forward_interval.value() + s.reverse_interval.value();
    return total > 0.0 ? s.reverse_interval.value() / total : 0.0;
  };
  EXPECT_GE(share(s_long), share(s_short));
}

TEST(EmPlanner, ValidatesBudget) {
  EmPlanningInput in = hot_wire_input();
  in.stress_budget = 1.5;
  EXPECT_THROW((void)plan_em_recovery(in), dh::Error);
}

}  // namespace
}  // namespace dh::core
