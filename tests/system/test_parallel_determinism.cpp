// Determinism and caching regressions for the parallel-execution layer:
// population Monte-Carlo paths must be bit-identical at 1, 2, and 8
// threads, and the cached PDN solve must match a fresh dense solve across
// a full aging run. These carry the ctest label `parallel` so the tier-1
// line can run them under TSan (-DDH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math/linalg.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"
#include "pdn/aging_pdn.hpp"
#include "pdn/pdn_grid.hpp"
#include "sched/policy.hpp"
#include "sched/population.hpp"
#include "sram/sram_array.hpp"

namespace dh {
namespace {

// Scaled-down bench/em_population_ttf member: TTF of wire i with process
// spread drawn from the index-derived stream.
double em_ttf_member(std::size_t i, bool recovery) {
  using namespace dh::em;
  Rng r = Rng::stream(2026, i);
  EmMaterialParams m = paper_calibrated_em_material();
  m.d0_m2_per_s *= r.lognormal(0.0, 0.25);
  m.critical_stress =
      Pascals{m.critical_stress.value() * r.lognormal(0.0, 0.10)};
  CompactEm em{CompactEmParams{.wire = paper_wire(), .material = m}};
  const Celsius t = paper_em_conditions::chamber();
  double elapsed = 0.0;
  const double horizon = hours(400.0).value();
  while (!em.broken() && elapsed < horizon) {
    em.step(paper_em_conditions::stress_density(), t, minutes(60.0));
    elapsed += minutes(60.0).value();
    if (recovery && !em.broken()) {
      em.step(paper_em_conditions::reverse_density(), t, minutes(15.0));
      elapsed += minutes(15.0).value();
    }
  }
  return em.broken() ? elapsed : horizon;
}

class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { set_global_thread_count(0); }
};

TEST_F(ParallelDeterminism, EmPopulationBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kWires = 32;
  std::vector<std::vector<double>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_global_thread_count(threads);
    runs.push_back(parallel_map(
        kWires, [](std::size_t i) { return em_ttf_member(i, false); }));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  // Sanity: the population is not degenerate (process spread worked).
  double lo = runs[0][0], hi = runs[0][0];
  for (const double x : runs[0]) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, hi);
}

TEST_F(ParallelDeterminism, SramScanBitIdenticalAcrossThreadCounts) {
  std::vector<sram::SramArrayHealth> scans;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_global_thread_count(threads);
    sram::SramArrayParams p;
    p.cells = 48;
    sram::SramArray array{p};
    // Age the array (stepping itself is pool-parallel too).
    for (int q = 0; q < 4; ++q) {
      array.step(Celsius{85.0}, hours(500.0), q % 2 == 0 ? 0.0 : 0.2);
    }
    scans.push_back(array.scan_health());
  }
  for (std::size_t i = 1; i < scans.size(); ++i) {
    EXPECT_EQ(scans[0].worst_snm.value(), scans[i].worst_snm.value());
    EXPECT_EQ(scans[0].mean_snm.value(), scans[i].mean_snm.value());
    EXPECT_EQ(scans[0].worst_pmos_dvth.value(),
              scans[i].worst_pmos_dvth.value());
  }
}

TEST_F(ParallelDeterminism, SystemPopulationBitIdenticalAcrossThreadCounts) {
  sched::SystemParams base;
  base.rows = base.cols = 2;
  base.quantum = hours(24.0);
  // A bursty (Markov) workload consumes the per-member random stream, so
  // different member seeds genuinely diverge.
  base.workload.kind = sched::WorkloadKind::kBursty;
  std::vector<std::vector<sched::SystemSummary>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_global_thread_count(threads);
    runs.push_back(sched::run_population(
        base, 6, days(20.0),
        [](std::size_t) { return sched::make_periodic_active_policy(); }));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[0][i].guardband_fraction,
                runs[r][i].guardband_fraction);
      EXPECT_EQ(runs[0][i].final_degradation, runs[r][i].final_degradation);
      EXPECT_EQ(runs[0][i].availability, runs[r][i].availability);
      EXPECT_EQ(runs[0][i].energy_joules, runs[r][i].energy_joules);
      EXPECT_EQ(runs[0][i].mean_temperature_c,
                runs[r][i].mean_temperature_c);
    }
  }
  // Members differ from each other (seeds actually varied).
  EXPECT_NE(runs[0][0].energy_joules, runs[0][1].energy_joules);
}

TEST_F(ParallelDeterminism, PopulationAggregatesAreConsistent) {
  sched::SystemParams base;
  base.rows = base.cols = 2;
  base.quantum = hours(24.0);
  const auto members = sched::run_population(
      base, 5, days(10.0),
      [](std::size_t) { return sched::make_periodic_active_policy(); });
  const auto agg = sched::aggregate_population(members);
  EXPECT_EQ(agg.members, 5u);
  EXPECT_GE(agg.mean_availability, 0.0);
  EXPECT_LE(agg.min_availability, agg.mean_availability);
  EXPECT_GE(agg.worst_guardband, agg.mean_guardband);
}

TEST(PdnSolveCache, MatchesUncachedAcrossAgingRun) {
  // Drive a PDN through an EM-flavoured aging trajectory: slow per-step
  // drift plus occasional jumps (void opening), with temperature swings.
  pdn::PdnParams p;
  p.rows = p.cols = 6;
  p.refactor_tolerance = 0.05;
  const pdn::PdnGrid grid{p};
  std::vector<double> loads(grid.node_count(), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    loads[i] = 0.001 + 0.0005 * static_cast<double>(i % 7);
  }
  auto r = grid.fresh_segment_resistances(Celsius{85.0});
  Rng rng{5};
  for (int step = 0; step < 300; ++step) {
    for (std::size_t s = 0; s < r.size(); ++s) {
      r[s] *= 1.0 + 2e-4 * rng.uniform();  // slow EM drift
    }
    if (step % 97 == 50) r[step % r.size()] *= 1.8;  // void jump
    const auto cached = grid.solve(loads, r);
    const auto fresh = grid.solve_uncached(loads, r);
    ASSERT_EQ(cached.node_voltage.size(), fresh.node_voltage.size());
    for (std::size_t i = 0; i < cached.node_voltage.size(); ++i) {
      EXPECT_NEAR(cached.node_voltage[i], fresh.node_voltage[i], 1e-10);
    }
    EXPECT_NEAR(cached.worst_drop_v, fresh.worst_drop_v, 1e-10);
  }
  // The cache must actually be a cache: far fewer factorizations than
  // solves.
  const auto& st = grid.solve_stats();
  EXPECT_EQ(st.solves, 300u);
  EXPECT_LT(st.factorizations, 60u);
  EXPECT_GE(st.factorizations, 1u);
}

TEST(PdnSolveCache, ZeroToleranceRefactorizesEveryChange) {
  pdn::PdnParams p;
  p.rows = p.cols = 4;
  p.refactor_tolerance = 0.0;
  const pdn::PdnGrid grid{p};
  const std::vector<double> loads(grid.node_count(), 0.002);
  auto r = grid.fresh_segment_resistances(Celsius{85.0});
  for (int step = 0; step < 5; ++step) {
    for (double& x : r) x *= 1.0 + 1e-6;
    (void)grid.solve(loads, r);
  }
  EXPECT_EQ(grid.solve_stats().factorizations, 5u);
}

TEST(PdnSolveCache, AgingPdnUsesFarFewerFactorizationsThanSteps) {
  pdn::PdnParams p;
  p.rows = p.cols = 4;
  pdn::AgingPdn aging{p, em::paper_calibrated_em_material()};
  const std::vector<double> loads(aging.grid().node_count(), 0.02);
  for (int step = 0; step < 200; ++step) {
    aging.step(loads, Celsius{105.0}, hours(6.0), step % 8 == 7);
  }
  const auto& st = aging.grid().solve_stats();
  EXPECT_EQ(st.solves, 200u);
  EXPECT_LT(st.factorizations, st.solves / 4);
}

TEST(PdnGuards, RejectsInvalidPads) {
  pdn::PdnParams p;
  p.rows = p.cols = 4;
  p.pad_nodes = {999};  // out of range
  EXPECT_THROW(pdn::PdnGrid{p}, Error);
}

TEST(PdnGuards, SingularSystemRaisesDescriptiveError) {
  // A conductance matrix with no path to any pad is exactly singular;
  // the LU pivot check must say so instead of dividing by zero.
  math::Matrix g(3, 3, 0.0);
  g(0, 0) = 1.0;
  g(0, 1) = -1.0;
  g(1, 0) = -1.0;
  g(1, 1) = 1.0;
  g(2, 2) = 1.0;
  const std::vector<double> rhs{0.0, 1.0, 0.0};
  try {
    (void)math::solve_dense(g, rhs);
    FAIL() << "expected dh::Error for singular matrix";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("singular"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("pivot"), std::string::npos);
  }
}

}  // namespace
}  // namespace dh
