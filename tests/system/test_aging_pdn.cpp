#include "pdn/aging_pdn.hpp"

#include <gtest/gtest.h>

#include "em/material.hpp"

namespace dh::pdn {
namespace {

/// A small, deliberately hot/overloaded PDN so EM shows up in test time.
AgingPdn make_hot_pdn() {
  PdnParams p;
  p.rows = 4;
  p.cols = 4;
  return AgingPdn{p, em::paper_calibrated_em_material()};
}

std::vector<double> heavy_loads(const AgingPdn& pdn, double amps) {
  return std::vector<double>(pdn.grid().node_count(), amps);
}

TEST(AgingPdn, FreshGridHasNoVoids) {
  AgingPdn pdn = make_hot_pdn();
  pdn.step(heavy_loads(pdn, 0.0), Celsius{105.0}, hours(1.0));
  const auto st = pdn.stats();
  EXPECT_EQ(st.nucleated_segments, 0u);
  EXPECT_EQ(st.broken_segments, 0u);
  EXPECT_FALSE(pdn.failed());
}

TEST(AgingPdn, LightLoadIsBlechImmortal) {
  AgingPdn pdn = make_hot_pdn();
  pdn.step(heavy_loads(pdn, 0.001), Celsius{85.0}, hours(1.0));
  const auto st = pdn.stats();
  // Low current density: everything under the Blech threshold.
  EXPECT_GT(st.immortal_segments, pdn.grid().segment_count() / 2);
}

TEST(AgingPdn, SustainedOverloadNucleatesVoids) {
  AgingPdn pdn = make_hot_pdn();
  const auto loads = heavy_loads(pdn, 0.08);
  // Run hot and hard, long enough to pass nucleation on the worst
  // segments (accelerated conditions, like the paper's oven tests).
  for (int step = 0; step < 40; ++step) {
    pdn.step(loads, Celsius{230.0}, hours(1.0));
    if (pdn.stats().nucleated_segments > 0) break;
  }
  EXPECT_GT(pdn.stats().nucleated_segments, 0u);
  EXPECT_GT(pdn.stats().max_void_len_m, 0.0);
}

TEST(AgingPdn, EmRecoveryModeHealsVoids) {
  AgingPdn stressed = make_hot_pdn();
  AgingPdn recovered = make_hot_pdn();
  // Moderate load: the pad-adjacent segments nucleate within a few hours
  // at 230 C but nothing breaks within the test window.
  const auto loads = heavy_loads(stressed, 0.004);
  for (int step = 0; step < 4; ++step) {
    stressed.step(loads, Celsius{230.0}, hours(1.0));
    recovered.step(loads, Celsius{230.0}, hours(1.0));
  }
  ASSERT_GT(recovered.stats().nucleated_segments, 0u);
  ASSERT_EQ(recovered.stats().broken_segments, 0u);
  const double before = recovered.stats().max_void_len_m;
  ASSERT_GT(before, 0.0);
  // Continue: one keeps stressing, the other enters EM recovery mode.
  for (int step = 0; step < 3; ++step) {
    stressed.step(loads, Celsius{230.0}, hours(1.0), false);
    recovered.step(loads, Celsius{230.0}, hours(1.0), true);
  }
  EXPECT_LT(recovered.stats().max_void_len_m, before);
  EXPECT_LT(recovered.stats().max_void_len_m,
            stressed.stats().max_void_len_m);
}

TEST(AgingPdn, WorstDropGrowsAsGridAges) {
  AgingPdn pdn = make_hot_pdn();
  const auto loads = heavy_loads(pdn, 0.08);
  pdn.step(loads, Celsius{230.0}, hours(1.0));
  const double drop_fresh = pdn.stats().worst_drop_v;
  for (int step = 0; step < 45; ++step) {
    pdn.step(loads, Celsius{230.0}, hours(1.0));
  }
  EXPECT_GE(pdn.stats().worst_drop_v, drop_fresh);
}

TEST(AgingPdn, FailureFlagOnExcessiveDrop) {
  AgingPdn pdn = make_hot_pdn();
  // Crush the grid with current so the IR-drop test trips even fresh.
  pdn.step(heavy_loads(pdn, 0.6), Celsius{105.0}, hours(1.0));
  EXPECT_TRUE(pdn.failed(0.05));
}

TEST(AgingPdn, ElapsedAccumulates) {
  AgingPdn pdn = make_hot_pdn();
  pdn.step(heavy_loads(pdn, 0.0), Celsius{85.0}, hours(2.0));
  pdn.step(heavy_loads(pdn, 0.0), Celsius{85.0}, hours(3.0));
  EXPECT_NEAR(in_hours(pdn.elapsed()), 5.0, 1e-9);
}

}  // namespace
}  // namespace dh::pdn
