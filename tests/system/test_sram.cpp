#include "sram/sram_array.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math/interp.hpp"

namespace dh::sram {
namespace {

SramCell make_cell() { return SramCell{SramCellParams{}}; }

TEST(SramSnm, FreshCellInPhysicalRange) {
  const SramCell cell = make_cell();
  const double snm = cell.fresh_snm().value();
  // A healthy 6T cell at 0.9 V: SNM of a few hundred mV, below VDD/2.
  EXPECT_GT(snm, 0.15);
  EXPECT_LT(snm, 0.45);
}

TEST(SramSnm, IdealStepInvertersGiveHalfVdd) {
  // Analytic sanity check of the largest-square algorithm.
  const auto vin = math::linspace(0.0, 1.0, 101);
  std::vector<double> step;
  for (const double v : vin) step.push_back(v < 0.5 ? 1.0 : 0.0);
  EXPECT_NEAR(snm_from_vtcs(vin, step, step), 0.5, 0.02);
}

TEST(SramSnm, SymmetricShiftBarelyMoves) {
  // Equal Vth shifts on both pull-ups shift both VTCs together: the
  // butterfly stays symmetric and the SNM moves only mildly.
  const SramCellParams p;
  const auto vin = math::linspace(0.0, p.vdd.value(), 41);
  const auto fresh = inverter_vtc(p, Volts{0.0}, Volts{0.0}, vin);
  const auto aged = inverter_vtc(p, Volts{0.03}, Volts{0.0}, vin);
  const double snm_fresh = snm_from_vtcs(vin, fresh, fresh);
  const double snm_sym = snm_from_vtcs(vin, aged, aged);
  const double snm_asym = snm_from_vtcs(vin, aged, fresh);
  EXPECT_LT(std::abs(snm_sym - snm_fresh), 0.02);
  // Asymmetric aging is the killer.
  EXPECT_LT(snm_asym, snm_sym);
}

TEST(SramCellAging, StaticDataStressesOneSide) {
  SramCell cell = make_cell();
  for (int d = 0; d < 30; ++d) {
    cell.step(CellMode::kHold, true, Celsius{95.0}, hours(24.0));
  }
  EXPECT_GT(cell.left_pmos_dvth().value(),
            20.0 * (cell.right_pmos_dvth().value() + 1e-9));
}

TEST(SramCellAging, AgingReducesSnm) {
  SramCell cell = make_cell();
  const double fresh = cell.fresh_snm().value();
  for (int d = 0; d < 60; ++d) {
    cell.step(CellMode::kHold, true, Celsius{95.0}, hours(24.0));
  }
  EXPECT_LT(cell.hold_snm().value(), fresh - 0.005);
}

TEST(SramCellAging, RecoveryBoostRestoresSnm) {
  SramCell cell = make_cell();
  for (int d = 0; d < 60; ++d) {
    cell.step(CellMode::kHold, true, Celsius{95.0}, hours(24.0));
  }
  const double aged = cell.hold_snm().value();
  for (int d = 0; d < 10; ++d) {
    cell.step(CellMode::kRecoveryBoost, true, Celsius{95.0}, hours(24.0));
  }
  EXPECT_GT(cell.hold_snm().value(), aged);
}

TEST(SramArrayAging, FlippingDataBalancesStress) {
  SramArrayParams flip;
  flip.cells = 16;
  flip.pattern = DataPattern::kFlipping;
  SramArrayParams fixed = flip;
  fixed.pattern = DataPattern::kStatic;
  SramArray balanced{flip};
  SramArray skewed{fixed};
  for (int d = 0; d < 40; ++d) {
    balanced.step(Celsius{95.0}, hours(24.0));
    skewed.step(Celsius{95.0}, hours(24.0));
  }
  // Static data concentrates all stress on one side of each cell.
  EXPECT_LT(balanced.worst_cell_health().worst_snm.value() * -1.0,
            0.0);  // well-defined
  EXPECT_GT(balanced.worst_cell_health().worst_snm.value(),
            skewed.worst_cell_health().worst_snm.value());
}

TEST(SramArrayAging, BoostScheduleBeatsFlipping) {
  SramArrayParams p;
  p.cells = 16;
  p.pattern = DataPattern::kStatic;
  SramArray boosted{p};
  SramArray unprotected{p};
  for (int d = 0; d < 40; ++d) {
    boosted.step(Celsius{95.0}, hours(24.0), /*boost_fraction=*/0.15);
    unprotected.step(Celsius{95.0}, hours(24.0), 0.0);
  }
  EXPECT_GT(boosted.worst_cell_health().worst_snm.value(),
            unprotected.worst_cell_health().worst_snm.value());
  EXPECT_LT(boosted.worst_cell_health().worst_pmos_dvth.value(),
            unprotected.worst_cell_health().worst_pmos_dvth.value());
}

TEST(SramArrayAging, ScanAndProxyAgree) {
  SramArrayParams p;
  p.cells = 8;
  SramArray arr{p};
  for (int d = 0; d < 20; ++d) arr.step(Celsius{95.0}, hours(24.0));
  const auto full = arr.scan_health();
  const auto proxy = arr.worst_cell_health();
  EXPECT_NEAR(full.worst_snm.value(), proxy.worst_snm.value(), 0.01);
  EXPECT_GE(full.mean_snm.value(), full.worst_snm.value());
}

TEST(SramArray, Validation) {
  SramArrayParams p;
  p.cells = 0;
  EXPECT_THROW(SramArray{p}, Error);
  p = SramArrayParams{};
  p.p_one = 1.5;
  EXPECT_THROW(SramArray{p}, Error);
  SramArray ok{SramArrayParams{}};
  EXPECT_THROW(ok.step(Celsius{95.0}, hours(1.0), 1.5), Error);
  EXPECT_THROW((void)ok.cell(9999), Error);
}

}  // namespace
}  // namespace dh::sram
