#include "pdn/pdn_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::pdn {
namespace {

PdnGrid make_grid(std::size_t rows = 4, std::size_t cols = 4) {
  PdnParams p;
  p.rows = rows;
  p.cols = cols;
  return PdnGrid{p};
}

TEST(Pdn, NoLoadMeansNoDrop) {
  const PdnGrid g = make_grid();
  const std::vector<double> loads(g.node_count(), 0.0);
  const auto r = g.fresh_segment_resistances(Celsius{85.0});
  const PdnSolution sol = g.solve(loads, r);
  EXPECT_NEAR(sol.worst_drop_v, 0.0, 1e-9);
  for (const double v : sol.node_voltage) {
    EXPECT_NEAR(v, g.params().vdd.value(), 1e-9);
  }
}

TEST(Pdn, CenterLoadDropsCenterMost) {
  PdnGrid g = make_grid(5, 5);
  std::vector<double> loads(g.node_count(), 0.0);
  loads[g.node_index(2, 2)] = 0.05;
  const auto r = g.fresh_segment_resistances(Celsius{85.0});
  const PdnSolution sol = g.solve(loads, r);
  EXPECT_EQ(sol.worst_node, g.node_index(2, 2));
  EXPECT_GT(sol.worst_drop_v, 0.0);
}

TEST(Pdn, CurrentConservation) {
  // Sum of pad injections equals total load current.
  PdnGrid g = make_grid();
  std::vector<double> loads(g.node_count(), 0.0);
  loads[g.node_index(1, 1)] = 0.02;
  loads[g.node_index(2, 3)] = 0.03;
  const auto r = g.fresh_segment_resistances(Celsius{85.0});
  const PdnSolution sol = g.solve(loads, r);
  double pad_current = 0.0;
  for (const std::size_t p : g.pads()) {
    pad_current += (g.params().vdd.value() - sol.node_voltage[p]) /
                   g.params().pad_resistance.value();
  }
  EXPECT_NEAR(pad_current, 0.05, 1e-9);
}

TEST(Pdn, SymmetricLoadSymmetricSolution) {
  PdnGrid g = make_grid(4, 4);
  std::vector<double> loads(g.node_count(), 0.01);
  const auto r = g.fresh_segment_resistances(Celsius{85.0});
  const PdnSolution sol = g.solve(loads, r);
  // Four-fold symmetry of the uniform problem.
  EXPECT_NEAR(sol.node_voltage[g.node_index(0, 0)],
              sol.node_voltage[g.node_index(3, 3)], 1e-9);
  EXPECT_NEAR(sol.node_voltage[g.node_index(0, 3)],
              sol.node_voltage[g.node_index(3, 0)], 1e-9);
}

TEST(Pdn, AgedSegmentIncreasesDrop) {
  PdnGrid g = make_grid();
  std::vector<double> loads(g.node_count(), 0.01);
  auto r = g.fresh_segment_resistances(Celsius{85.0});
  const double drop_fresh = g.solve(loads, r).worst_drop_v;
  for (auto& x : r) x *= 3.0;  // EM-aged grid
  const double drop_aged = g.solve(loads, r).worst_drop_v;
  EXPECT_GT(drop_aged, 2.0 * drop_fresh);
}

TEST(Pdn, SegmentCurrentsSatisfyNodeKcl) {
  PdnGrid g = make_grid(3, 3);
  std::vector<double> loads(g.node_count(), 0.0);
  loads[g.node_index(1, 1)] = 0.03;
  const auto r = g.fresh_segment_resistances(Celsius{85.0});
  const PdnSolution sol = g.solve(loads, r);
  // At the loaded (non-pad) node the segment currents must sum to the
  // load.
  double in = 0.0;
  for (std::size_t s = 0; s < g.segment_count(); ++s) {
    const auto& seg = g.segment(s);
    if (seg.b == g.node_index(1, 1)) in += sol.segment_current[s];
    if (seg.a == g.node_index(1, 1)) in -= sol.segment_current[s];
  }
  EXPECT_NEAR(in, 0.03, 1e-9);
}

TEST(Pdn, CurrentDensityConversion) {
  const PdnGrid g = make_grid();
  const double area = g.params().segment_wire.cross_section_m2();
  EXPECT_NEAR(g.current_density(1e-3).value(), 1e-3 / area, 1e-3);
}

TEST(Pdn, SegmentCountForMesh) {
  const PdnGrid g = make_grid(3, 4);
  // Horizontal: 3 rows x 3, vertical: 2 x 4.
  EXPECT_EQ(g.segment_count(), 3u * 3u + 2u * 4u);
}

TEST(Pdn, Validation) {
  PdnParams p;
  p.rows = 1;
  EXPECT_THROW(PdnGrid{p}, Error);
  p = PdnParams{};
  p.pad_nodes = {999};
  EXPECT_THROW(PdnGrid{p}, Error);
  const PdnGrid g = make_grid();
  EXPECT_THROW(g.solve(std::vector<double>{1.0},
                       g.fresh_segment_resistances(Celsius{85.0})),
               Error);
}

}  // namespace
}  // namespace dh::pdn
