#include <gtest/gtest.h>

#include "common/error.hpp"
#include "em/em_sensor.hpp"
#include "sensors/em_canary.hpp"
#include "sensors/health_monitor.hpp"
#include "sensors/ro_pair_sensor.hpp"

namespace dh::sensors {
namespace {

// ---- RO-pair BTI sensor ---------------------------------------------------

RoPairSensor make_ro_pair(std::uint64_t seed = 3) {
  return RoPairSensor{RoPairSensorParams{}, Rng{seed}};
}

TEST(RoPairSensor, FreshReadsNearZero) {
  RoPairSensor s = make_ro_pair();
  EXPECT_LT(s.measure().value(), 0.003);
}

TEST(RoPairSensor, TracksTrueShift) {
  RoPairSensor s = make_ro_pair();
  for (int d = 0; d < 60; ++d) {
    s.step(0.9, Volts{1.1}, Celsius{95.0}, hours(24.0));
  }
  const double truth = s.true_dvth().value();
  ASSERT_GT(truth, 0.005);
  EXPECT_NEAR(s.measure().value(), truth, 0.3 * truth);
}

TEST(RoPairSensor, ReferenceStaysFresh) {
  RoPairSensor s = make_ro_pair();
  for (int d = 0; d < 60; ++d) {
    s.step(1.0, Volts{1.1}, Celsius{95.0}, hours(24.0));
  }
  // True differential ~ stressed shift: the healed reference contributes
  // almost nothing.
  EXPECT_GT(s.true_dvth().value(), 0.0);
}

TEST(RoPairSensor, MoreDutyMoreReading) {
  RoPairSensor light = make_ro_pair(5);
  RoPairSensor heavy = make_ro_pair(5);
  for (int d = 0; d < 60; ++d) {
    light.step(0.2, Volts{1.1}, Celsius{95.0}, hours(24.0));
    heavy.step(1.0, Volts{1.1}, Celsius{95.0}, hours(24.0));
  }
  EXPECT_GT(heavy.measure().value(), light.measure().value());
}

TEST(RoPairSensor, RejectsBadDuty) {
  RoPairSensor s = make_ro_pair();
  EXPECT_THROW(s.step(1.5, Volts{1.1}, Celsius{95.0}, hours(1.0)), Error);
}

// ---- EM canary bank -------------------------------------------------------

EmCanaryBank make_canaries() {
  EmCanaryParams p;
  p.mission_wire = em::paper_wire();
  p.material = em::paper_calibrated_em_material();
  return EmCanaryBank{p};
}

TEST(EmCanary, FreshBankIsQuiet) {
  EmCanaryBank bank = make_canaries();
  EXPECT_EQ(bank.tripped(), 0u);
  EXPECT_LT(bank.estimated_life_consumed(), 0.2);
}

TEST(EmCanary, NarrowestTripsFirst) {
  EmCanaryBank bank = make_canaries();
  const auto j = em::paper_em_conditions::stress_density();
  const auto t = em::paper_em_conditions::chamber();
  // The narrowest canary (0.5x width -> 2x density) nucleates ~4x sooner
  // than the mission wire (~350 min): step until exactly one trips.
  while (bank.tripped() == 0) {
    bank.step(j, t, minutes(10.0));
  }
  EXPECT_EQ(bank.tripped(), 1u);
  EXPECT_TRUE(bank.canary(0).void_open());
  EXPECT_FALSE(bank.canary(2).void_open());
}

TEST(EmCanary, TripsInWidthOrder) {
  EmCanaryBank bank = make_canaries();
  const auto j = em::paper_em_conditions::stress_density();
  const auto t = em::paper_em_conditions::chamber();
  std::size_t prev = 0;
  for (int m = 0; m < 360 * 2; m += 10) {
    bank.step(j, t, minutes(10.0));
    const std::size_t now = bank.tripped();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_GE(prev, 2u);  // at least the two narrowest by 2x mission life
}

TEST(EmCanary, LifeEstimateGrowsMonotonically) {
  EmCanaryBank bank = make_canaries();
  const auto j = em::paper_em_conditions::stress_density();
  const auto t = em::paper_em_conditions::chamber();
  double prev = bank.estimated_life_consumed();
  for (int m = 0; m < 400; m += 40) {
    bank.step(j, t, minutes(40.0));
    const double now = bank.estimated_life_consumed();
    EXPECT_GE(now, prev - 1e-12);
    prev = now;
  }
  EXPECT_GT(prev, 0.2);
}

TEST(EmCanary, Validation) {
  EmCanaryParams p;
  p.mission_wire = em::paper_wire();
  p.material = em::paper_calibrated_em_material();
  p.width_scales = {};
  EXPECT_THROW(EmCanaryBank{p}, Error);
  p.width_scales = {0.8, 0.5};  // not ascending
  EXPECT_THROW(EmCanaryBank{p}, Error);
  p.width_scales = {1.5};
  EXPECT_THROW(EmCanaryBank{p}, Error);
}

// ---- Health monitor -------------------------------------------------------

TEST(HealthMonitor, SmoothsNoise) {
  HealthMonitor m{HealthMonitorParams{.ewma_alpha = 0.2}};
  Rng rng{7};
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    last = m.update(0.005 + rng.normal(0.0, 0.002));
  }
  EXPECT_NEAR(last, 0.005, 0.0015);
}

TEST(HealthMonitor, AlarmHysteresis) {
  HealthMonitor m{
      HealthMonitorParams{.ewma_alpha = 1.0, .trip = 0.01, .clear = 0.004}};
  EXPECT_FALSE(m.alarm());
  (void)m.update(0.012);
  EXPECT_TRUE(m.alarm());
  (void)m.update(0.007);  // between clear and trip: alarm holds
  EXPECT_TRUE(m.alarm());
  (void)m.update(0.002);
  EXPECT_FALSE(m.alarm());
}

TEST(HealthMonitor, FirstReadingSeedsEstimate) {
  HealthMonitor m{HealthMonitorParams{.ewma_alpha = 0.1}};
  EXPECT_DOUBLE_EQ(m.update(0.02), 0.02);
}

TEST(HealthMonitor, ResetClears) {
  HealthMonitor m{HealthMonitorParams{}};
  (void)m.update(0.05);
  m.reset();
  EXPECT_FALSE(m.alarm());
  EXPECT_EQ(m.readings(), 0u);
  EXPECT_DOUBLE_EQ(m.estimate(), 0.0);
}

TEST(HealthMonitor, Validation) {
  HealthMonitorParams p;
  p.ewma_alpha = 0.0;
  EXPECT_THROW(HealthMonitor{p}, Error);
  p = HealthMonitorParams{};
  p.clear = p.trip;
  EXPECT_THROW(HealthMonitor{p}, Error);
}

// ---- Closed loop ----------------------------------------------------------

TEST(SensorLoop, CanaryAlarmLeadsMissionNucleation) {
  // The whole point: the canary alarm fires while the mission wire still
  // has untouched life, leaving time to schedule EM recovery.
  EmCanaryBank bank = make_canaries();
  em::CompactEm mission{em::CompactEmParams{
      .wire = em::paper_wire(),
      .material = em::paper_calibrated_em_material()}};
  const auto j = em::paper_em_conditions::stress_density();
  const auto t = em::paper_em_conditions::chamber();
  double alarm_time = -1.0;
  double elapsed = 0.0;
  while (!mission.void_open() && elapsed < hours(12.0).value()) {
    bank.step(j, t, minutes(10.0));
    mission.step(j, t, minutes(10.0));
    elapsed += minutes(10.0).value();
    if (alarm_time < 0.0 && bank.tripped() > 0) alarm_time = elapsed;
  }
  ASSERT_GT(alarm_time, 0.0);
  ASSERT_TRUE(mission.void_open());
  // Early warning: the alarm arrives at well under half the mission life.
  EXPECT_LT(alarm_time, 0.5 * elapsed);
}

}  // namespace
}  // namespace dh::sensors
