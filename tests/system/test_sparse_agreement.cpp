// Sparse-vs-dense agreement for the ported grid solvers.
//
// The sparse engine replaced dense LU inside PdnGrid and ThermalGrid; the
// dense paths survive as reference baselines (`solve_uncached`, explicit
// dense assembly here). These tests randomize grid shapes, pad sets, and
// drift histories and require the engine to agree to <= 1e-10 — plus the
// fig11 guard: the default benchmark grids must never silently land on
// the dense-LU breakdown fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/math/linalg.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "pdn/aging_pdn.hpp"
#include "pdn/pdn_grid.hpp"
#include "thermal/thermal_grid.hpp"

namespace dh {
namespace {

constexpr double kAgreementTol = 1e-10;

pdn::PdnParams random_pdn_params(Rng& rng) {
  pdn::PdnParams p;
  p.rows = static_cast<std::size_t>(rng.uniform_int(1, 12));
  p.cols = static_cast<std::size_t>(rng.uniform_int(2, 12));
  const std::size_t n = p.rows * p.cols;
  // Random pad set: 1..4 distinct nodes (empty keeps the corner default).
  const std::size_t pad_count = static_cast<std::size_t>(
      rng.uniform_int(1, 4));
  for (std::size_t i = 0; i < pad_count; ++i) {
    p.pad_nodes.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(n) - 1)));
  }
  std::sort(p.pad_nodes.begin(), p.pad_nodes.end());
  p.pad_nodes.erase(std::unique(p.pad_nodes.begin(), p.pad_nodes.end()),
                    p.pad_nodes.end());
  return p;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(SparseAgreement, RandomizedGridsMatchDenseReference) {
  // 12 random shapes x 3 load patterns each, through the cached sparse
  // path AND the uncached dense path. Agreement must hold on voltages and
  // segment currents.
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    Rng rng = Rng::stream(0x5AB5E, trial);
    const pdn::PdnParams params = random_pdn_params(rng);
    const pdn::PdnGrid grid{params};
    std::vector<double> seg_r =
        grid.fresh_segment_resistances(Celsius{55.0});
    for (int pattern = 0; pattern < 3; ++pattern) {
      std::vector<double> load(grid.node_count());
      for (auto& v : load) v = rng.uniform(0.0, 0.02);
      const auto sparse = grid.solve(load, seg_r);
      const auto dense = grid.solve_uncached(load, seg_r);
      ASSERT_EQ(sparse.node_voltage.size(), dense.node_voltage.size());
      EXPECT_LE(max_abs_diff(sparse.node_voltage, dense.node_voltage),
                kAgreementTol)
          << params.rows << "x" << params.cols << " trial " << trial;
      EXPECT_LE(max_abs_diff(sparse.segment_current, dense.segment_current),
                kAgreementTol);
      EXPECT_NEAR(sparse.worst_drop_v, dense.worst_drop_v, kAgreementTol);
    }
  }
}

TEST(SparseAgreement, DriftSequenceStaysWithinToleranceOfDense) {
  // Walk resistances upward (EM-style drift) through enough steps to
  // cross the refactor tolerance several times. Every intermediate
  // solve — exact, drift-refined, or freshly refactorized — must agree
  // with the dense reference.
  Rng rng{2027};
  pdn::PdnParams params;
  params.rows = 9;
  params.cols = 7;
  params.refactor_tolerance = 0.05;
  const pdn::PdnGrid grid{params};
  std::vector<double> seg_r = grid.fresh_segment_resistances(Celsius{45.0});
  std::vector<double> load(grid.node_count());
  for (auto& v : load) v = rng.uniform(0.0, 0.015);

  for (int step = 0; step < 60; ++step) {
    for (auto& r : seg_r) r *= 1.0 + rng.uniform(0.0, 0.01);
    const auto sparse = grid.solve(load, seg_r);
    const auto dense = grid.solve_uncached(load, seg_r);
    ASSERT_LE(max_abs_diff(sparse.node_voltage, dense.node_voltage),
              kAgreementTol)
        << "diverged at drift step " << step;
  }
  const auto& st = grid.solve_stats();
  EXPECT_GT(st.solves, 0u);
  // Drift refinement must have actually run (not refactorized each step).
  EXPECT_LT(st.factorizations, st.solves);
  EXPECT_GT(st.refinement_iterations, 0u);
  EXPECT_GE(st.cg_iterations, st.refinement_iterations);
}

TEST(SparseAgreement, LargeGridUsesIc0CgAndMatchesDense) {
  pdn::PdnParams params;
  params.rows = 32;
  params.cols = 32;  // n = 1024 > direct_max_dim -> IC(0)+CG
  const pdn::PdnGrid grid{params};
  EXPECT_EQ(grid.solver_method(), math::sparse::SpdMethod::kIc0Cg);
  Rng rng{7};
  const auto seg_r = grid.fresh_segment_resistances(Celsius{85.0});
  std::vector<double> load(grid.node_count());
  for (auto& v : load) v = rng.uniform(0.0, 0.01);
  const auto sparse = grid.solve(load, seg_r);
  const auto dense = grid.solve_uncached(load, seg_r);
  EXPECT_LE(max_abs_diff(sparse.node_voltage, dense.node_voltage),
            kAgreementTol);
  EXPECT_GT(grid.solve_stats().cg_iterations, 0u);
}

TEST(SparseAgreement, Fig11DefaultGridsNeverFallBackToDense) {
  // Guard for the fig11_pdn_layers benchmark: with default PdnParams (the
  // local grid fig11 runs) and with the benchmark's global-layer variant,
  // the planned engine must be a sparse method. kDenseLu would mean the
  // sparse factorization silently broke down and the speedup claims in
  // BENCH_sparse.json measure the wrong engine.
  const pdn::PdnGrid local{pdn::PdnParams{}};
  EXPECT_NE(local.solver_method(), math::sparse::SpdMethod::kDenseLu);

  pdn::PdnParams big;
  big.rows = 64;
  big.cols = 64;
  const pdn::PdnGrid sixty_four{big};
  EXPECT_EQ(sixty_four.solver_method(), math::sparse::SpdMethod::kIc0Cg);

  // Force a real solve through each so breakdown cannot hide behind the
  // structure-only prediction.
  Rng rng{13};
  for (const pdn::PdnGrid* grid : {&local, &sixty_four}) {
    const auto seg_r = grid->fresh_segment_resistances(Celsius{60.0});
    std::vector<double> load(grid->node_count());
    for (auto& v : load) v = rng.uniform(0.0, 0.01);
    (void)grid->solve(load, seg_r);
    EXPECT_NE(grid->solver_method(), math::sparse::SpdMethod::kDenseLu);
  }
}

TEST(SparseAgreement, SingularPadlessGridRaisesDescriptiveError) {
  // A grid whose pad list resolves to nothing reachable is floating:
  // the conductance matrix is singular and the engine must say so.
  pdn::PdnParams params;
  params.rows = 4;
  params.cols = 4;
  params.pad_resistance = Ohms{1e30};  // effectively disconnected pads
  const pdn::PdnGrid grid{params};
  const auto seg_r = grid.fresh_segment_resistances(Celsius{25.0});
  std::vector<double> load(grid.node_count(), 1e-3);
  try {
    (void)grid.solve(load, seg_r);
    // A 1e30 pad may still factor in double precision; if it does the
    // result must at least be finite.
    const auto sol = grid.solve_uncached(load, seg_r);
    for (const double v : sol.node_voltage) EXPECT_TRUE(std::isfinite(v));
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("singular") != std::string::npos ||
                what.find("pivot") != std::string::npos)
        << what;
  }
}

TEST(SparseAgreement, ThermalSteadyMatchesDenseAssembly) {
  thermal::ThermalGridParams params;
  params.rows = 10;
  params.cols = 9;
  thermal::ThermalGrid grid{params};
  Rng rng{99};
  std::vector<double> watts(grid.tile_count());
  for (auto& v : watts) v = rng.uniform(0.0, 2.5);
  grid.set_power_map(watts);
  grid.solve_steady();

  // Dense reference assembled from the same stencil definition.
  const std::size_t n = grid.tile_count();
  math::Matrix g(n, n, 0.0);
  const double g_lat =
      params.k_silicon_w_per_mk * params.die_thickness.value();
  for (std::size_t r = 0; r < params.rows; ++r) {
    for (std::size_t c = 0; c < params.cols; ++c) {
      const std::size_t i = r * params.cols + c;
      g(i, i) += params.vertical_g_w_per_k;
      for (const std::size_t j :
           {r + 1 < params.rows ? i + params.cols : i,
            c + 1 < params.cols ? i + 1 : i}) {
        if (j == i) continue;
        g(i, i) += g_lat;
        g(j, j) += g_lat;
        g(i, j) -= g_lat;
        g(j, i) -= g_lat;
      }
    }
  }
  const auto rise_ref = math::solve_dense(g, watts);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(grid.temperature(i).value(),
                params.ambient.value() + rise_ref[i], kAgreementTol);
  }
  EXPECT_NE(grid.solver_method(), math::sparse::SpdMethod::kDenseLu);
}

TEST(SparseAgreement, ThermalTransientCacheReusesAlternatingDtFactors) {
  thermal::ThermalGridParams params;
  params.rows = 6;
  params.cols = 6;
  thermal::ThermalGrid grid{params};
  std::vector<double> watts(grid.tile_count(), 0.8);
  grid.set_power_map(watts);

  const Seconds dt_sched{1e-3};
  const Seconds dt_recovery{5e-3};
  for (int i = 0; i < 20; ++i) {
    grid.step(i % 2 == 0 ? dt_sched : dt_recovery);
  }
  const auto& st = grid.solve_stats();
  EXPECT_EQ(st.transient_steps, 20u);
  // One steady factorization + one per distinct dt; every later step hits.
  EXPECT_EQ(st.factorizations, 3u);
  EXPECT_EQ(st.transient_cache_hits, 18u);
}

TEST(SparseAgreement, ParallelPopulationSweepIsDeterministic) {
  // Per-instance solver state under the thread pool: each task owns its
  // grid (PdnGrid::solve is non-reentrant per instance), seeded from the
  // task index. Exercises the engine under TSan and checks determinism
  // against a serial replay.
  constexpr std::size_t kPopulation = 24;
  const auto worst_drop = [](std::size_t i) {
    Rng rng = Rng::stream(0xD21F7, i);
    pdn::PdnParams params;
    params.rows = 6 + i % 5;
    params.cols = 5 + i % 7;
    const pdn::PdnGrid grid{params};
    auto seg_r = grid.fresh_segment_resistances(Celsius{50.0});
    std::vector<double> load(grid.node_count());
    for (auto& v : load) v = rng.uniform(0.0, 0.02);
    double worst = 0.0;
    for (int step = 0; step < 8; ++step) {
      for (auto& r : seg_r) r *= 1.0 + rng.uniform(0.0, 0.02);
      worst = std::max(worst, grid.solve(load, seg_r).worst_drop_v);
    }
    return worst;
  };
  const std::vector<double> parallel = parallel_map(kPopulation, worst_drop);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    EXPECT_EQ(parallel[i], worst_drop(i)) << "instance " << i;
  }
}

TEST(SparseAgreement, ParallelThermalSweepSharesNothing) {
  constexpr std::size_t kPopulation = 16;
  const auto peak = [](std::size_t i) {
    thermal::ThermalGridParams params;
    params.rows = 4 + i % 4;
    params.cols = 4 + i % 3;
    thermal::ThermalGrid grid{params};
    Rng stream = Rng::stream(0x7E4A, i);
    std::vector<double> watts(grid.tile_count());
    for (auto& v : watts) v = stream.uniform(0.0, 1.5);
    grid.set_power_map(watts);
    for (int s = 0; s < 6; ++s) grid.step(Seconds{1e-3 * (1 + s % 2)});
    return grid.max_temperature().value();
  };
  const auto parallel = parallel_map(kPopulation, peak);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    EXPECT_EQ(parallel[i], peak(i)) << "instance " << i;
  }
}

TEST(SparseAgreement, AgingPdnReportsSolverCounters) {
  pdn::PdnParams params;
  params.rows = 6;
  params.cols = 6;
  pdn::AgingPdn aging{params, em::EmMaterialParams{}};
  std::vector<double> load(aging.grid().node_count(), 5e-3);
  for (int i = 0; i < 5; ++i) {
    aging.step(load, Celsius{95.0}, Seconds{3600.0});
  }
  const auto st = aging.stats();
  EXPECT_GE(st.solver_factorizations, 1u);
  EXPECT_EQ(st.solver_factorizations, aging.grid().solve_stats().factorizations);
  EXPECT_EQ(st.solver_cg_iterations, aging.grid().solve_stats().cg_iterations);
}

}  // namespace
}  // namespace dh
