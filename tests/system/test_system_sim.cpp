#include "sched/system_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::sched {
namespace {

SystemParams small_system() {
  SystemParams p;
  p.rows = 2;
  p.cols = 2;
  p.quantum = hours(6.0);
  p.workload.kind = WorkloadKind::kPeriodic;
  p.workload.utilization = 0.9;
  p.workload.duty = 0.7;
  p.workload.period = hours(24.0);
  return p;
}

TEST(SystemSim, SimulatedTimeHasNoFloatingPointDrift) {
  // now() is derived from the integer step count, not accumulated by
  // repeated `now += dt` — a multi-year run must land exactly on
  // steps * quantum (repeated addition drifts by hundreds of ulps).
  SystemParams p = small_system();
  p.quantum = Seconds{0.1};  // 0.1 is not exactly representable
  SystemSimulator sim{p, make_no_recovery_policy()};
  const int steps = 1000;
  for (int i = 0; i < steps; ++i) sim.step();
  EXPECT_DOUBLE_EQ(sim.now().value(),
                   static_cast<double>(steps) * p.quantum.value());
}

TEST(SystemSim, RunExecutesExactStepCount) {
  // 30 days at 6 h quanta is exactly 120 steps; fp noise in the
  // accumulated clock must not add or drop a step.
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(30.0));
  EXPECT_DOUBLE_EQ(in_hours(sim.now()), 30.0 * 24.0);
  // run() targets are absolute, so continuing composes exactly.
  sim.run(days(45.0));
  EXPECT_DOUBLE_EQ(in_hours(sim.now()), 45.0 * 24.0);
  // A lifetime that is not a multiple of the quantum rounds up (the
  // simulator finishes the quantum in flight).
  sim.run(days(45.0) + hours(1.0));
  EXPECT_DOUBLE_EQ(in_hours(sim.now()), 45.0 * 24.0 + 6.0);
}

TEST(SystemSim, RunsAndRecordsTraces) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(30.0));
  EXPECT_GE(in_hours(sim.now()), 30.0 * 24.0);
  EXPECT_GT(sim.degradation_trace().size(), 100u);
  EXPECT_GT(sim.temperature_trace().size(), 100u);
  EXPECT_GT(sim.ir_drop_trace().size(), 100u);
}

TEST(SystemSim, DegradationAccumulatesWithoutRecovery) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(90.0));
  const auto s = sim.summary();
  EXPECT_GT(s.guardband_fraction, 0.0);
  EXPECT_GT(s.final_degradation, 0.0);
}

TEST(SystemSim, ActiveRecoveryShrinksGuardband) {
  // The headline system-level claim (Fig. 12b): scheduled active recovery
  // needs a smaller margin than worst-case no-recovery design.
  SystemSimulator baseline{small_system(), make_no_recovery_policy()};
  SystemSimulator healed{small_system(), make_periodic_active_policy()};
  baseline.run(days(180.0));
  healed.run(days(180.0));
  EXPECT_LT(healed.summary().final_degradation,
            baseline.summary().final_degradation);
}

TEST(SystemSim, AvailabilityWithinBounds) {
  SystemSimulator sim{small_system(), make_periodic_active_policy()};
  sim.run(days(30.0));
  const auto s = sim.summary();
  EXPECT_GE(s.availability, 0.0);
  EXPECT_LE(s.availability, 1.0 + 1e-9);
  EXPECT_GE(s.mean_throughput, 0.0);
}

TEST(SystemSim, NoRecoveryHasFullAvailability) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(20.0));
  // Every demanded cycle is served (at degraded speed, but served).
  EXPECT_GT(sim.summary().availability, 0.95);
}

TEST(SystemSim, DeterministicForSameSeed) {
  SystemSimulator a{small_system(), make_periodic_active_policy()};
  SystemSimulator b{small_system(), make_periodic_active_policy()};
  a.run(days(20.0));
  b.run(days(20.0));
  EXPECT_DOUBLE_EQ(a.summary().final_degradation,
                   b.summary().final_degradation);
  EXPECT_DOUBLE_EQ(a.summary().energy_joules, b.summary().energy_joules);
}

TEST(SystemSim, SeedChangesStochasticDetails) {
  SystemParams p = small_system();
  p.workload.kind = WorkloadKind::kBursty;
  SystemParams p2 = p;
  p2.seed = 777;
  SystemSimulator a{p, make_passive_idle_policy()};
  SystemSimulator b{p2, make_passive_idle_policy()};
  a.run(days(20.0));
  b.run(days(20.0));
  EXPECT_NE(a.summary().energy_joules, b.summary().energy_joules);
}

TEST(SystemSim, TemperatureAboveAmbient) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(10.0));
  EXPECT_GT(sim.summary().mean_temperature_c,
            small_system().thermal.ambient.value());
}

TEST(SystemSim, EnergyAccumulates) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  sim.run(days(10.0));
  const double e10 = sim.summary().energy_joules;
  sim.run(days(20.0));
  EXPECT_GT(sim.summary().energy_joules, e10);
}

TEST(SystemSim, CoreAccessors) {
  SystemSimulator sim{small_system(), make_no_recovery_policy()};
  EXPECT_EQ(sim.core_count(), 4u);
  EXPECT_NO_THROW((void)sim.core(3));
  EXPECT_THROW((void)sim.core(4), dh::Error);
}

TEST(SystemSim, RequiresPolicy) {
  EXPECT_THROW(SystemSimulator(small_system(), nullptr), dh::Error);
}

}  // namespace
}  // namespace dh::sched
