#include "sched/core_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::sched {
namespace {

Core make_core() { return Core{CoreParams{}}; }

TEST(CoreModel, FreshCoreAtFullSpeed) {
  const Core c = make_core();
  EXPECT_DOUBLE_EQ(c.degradation(), 0.0);
  EXPECT_DOUBLE_EQ(c.fmax().value(),
                   c.params().ro.fresh_frequency.value());
}

TEST(CoreModel, RunningAgesTheCore) {
  Core c = make_core();
  for (int d = 0; d < 90; ++d) {
    c.step(CoreAction::kRun, 0.9, Celsius{85.0}, days(1.0));
  }
  EXPECT_GT(c.delta_vth().value(), 0.0);
  EXPECT_GT(c.degradation(), 0.0);
}

TEST(CoreModel, IdleAgesSlowerThanRunning) {
  Core busy = make_core();
  Core idle = make_core();
  for (int d = 0; d < 60; ++d) {
    busy.step(CoreAction::kRun, 1.0, Celsius{85.0}, days(1.0));
    idle.step(CoreAction::kIdle, 0.0, Celsius{85.0}, days(1.0));
  }
  EXPECT_GT(busy.delta_vth().value(), 5.0 * idle.delta_vth().value());
}

TEST(CoreModel, ActiveRecoveryHeals) {
  Core c = make_core();
  for (int d = 0; d < 60; ++d) {
    c.step(CoreAction::kRun, 1.0, Celsius{85.0}, days(1.0));
  }
  const double aged = c.delta_vth().value();
  for (int d = 0; d < 10; ++d) {
    c.step(CoreAction::kBtiActiveRecovery, 0.0, Celsius{85.0}, days(1.0));
  }
  EXPECT_LT(c.delta_vth().value(), aged);
}

TEST(CoreModel, UtilizationScalesAging) {
  Core heavy = make_core();
  Core light = make_core();
  for (int d = 0; d < 60; ++d) {
    heavy.step(CoreAction::kRun, 1.0, Celsius{85.0}, days(1.0));
    light.step(CoreAction::kRun, 0.2, Celsius{85.0}, days(1.0));
  }
  EXPECT_GT(heavy.delta_vth().value(), light.delta_vth().value());
}

TEST(CoreModel, HotterAgesFaster) {
  Core hot = make_core();
  Core cool = make_core();
  for (int d = 0; d < 60; ++d) {
    hot.step(CoreAction::kRun, 1.0, Celsius{105.0}, days(1.0));
    cool.step(CoreAction::kRun, 1.0, Celsius{55.0}, days(1.0));
  }
  EXPECT_GT(hot.delta_vth().value(), cool.delta_vth().value());
}

TEST(CoreModel, PowerModelShape) {
  const Core c = make_core();
  const double p_full =
      c.power(CoreAction::kRun, 1.0, Celsius{85.0}).value();
  const double p_half =
      c.power(CoreAction::kRun, 0.5, Celsius{85.0}).value();
  const double p_idle =
      c.power(CoreAction::kIdle, 0.0, Celsius{85.0}).value();
  const double p_rec =
      c.power(CoreAction::kBtiActiveRecovery, 0.0, Celsius{85.0}).value();
  EXPECT_GT(p_full, p_half);
  EXPECT_GT(p_half, p_idle);
  EXPECT_LT(p_idle, 0.2 * p_full);
  EXPECT_LT(p_rec, 0.2 * p_full);
}

TEST(CoreModel, LeakageGrowsWithTemperature) {
  const Core c = make_core();
  EXPECT_GT(c.power(CoreAction::kRun, 0.0, Celsius{105.0}).value(),
            c.power(CoreAction::kRun, 0.0, Celsius{45.0}).value());
}

TEST(CoreModel, SupplyCurrentMatchesPower) {
  const Core c = make_core();
  const double p = c.power(CoreAction::kRun, 0.8, Celsius{85.0}).value();
  const double i =
      c.supply_current(CoreAction::kRun, 0.8, Celsius{85.0}).value();
  EXPECT_NEAR(i, p / c.params().vdd.value(), 1e-12);
}

TEST(CoreModel, InvalidUtilizationRejected) {
  Core c = make_core();
  EXPECT_THROW(c.step(CoreAction::kRun, 1.5, Celsius{85.0}, hours(1.0)),
               dh::Error);
}

TEST(CoreModel, ActionNames) {
  EXPECT_STREQ(to_string(CoreAction::kRun), "run");
  EXPECT_STREQ(to_string(CoreAction::kIdle), "idle");
  EXPECT_STREQ(to_string(CoreAction::kBtiActiveRecovery), "bti-recovery");
}

}  // namespace
}  // namespace dh::sched
