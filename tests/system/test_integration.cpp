// End-to-end integration: plan a recovery schedule from the device model,
// drive it through the run-time controller, and verify the device
// actually stays healthy — the full deep-healing loop.
#include <gtest/gtest.h>

#include "circuit/assist.hpp"
#include "core/recovery_controller.hpp"
#include "core/rejuvenation_planner.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "em/compact_em.hpp"
#include "em/em_sensor.hpp"

namespace dh::core {
namespace {

TEST(Integration, PlannedScheduleKeepsDeviceFreshUnderController) {
  using namespace device;
  // 1. Plan: find the minimal recovery share for an accelerated-aging
  //    device.
  BtiPlanningInput in;
  in.stress = paper_conditions::accelerated_stress();
  in.recovery = paper_conditions::recovery_no4();
  in.period = hours(3.0);
  in.lifetime = days(10.0);
  in.residual_budget = Volts{0.004};
  const BtiSchedule plan = plan_bti_recovery(in);
  ASSERT_GT(plan.recovery_fraction, 0.0);

  // 2. Execute through the controller, quantum by quantum.
  RecoveryControllerParams rc_params;
  rc_params.bti = plan;
  RecoveryController controller{rc_params};
  auto device_model = BtiModel::paper_calibrated();
  const Seconds quantum = hours(1.0);
  for (double t = 0.0; t < in.lifetime.value(); t += quantum.value()) {
    const circuit::AssistMode mode = controller.decide(Seconds{t}, false);
    controller.commit(mode, quantum);
    if (mode == circuit::AssistMode::kBtiActiveRecovery) {
      device_model.apply(in.recovery, quantum);
    } else {
      device_model.apply(in.stress, quantum);
    }
  }

  // 3. The controller-driven device ends within ~the planned budget,
  //    and far below the unmitigated level.
  EXPECT_LT(device_model.delta_vth().value(),
            3.0 * in.residual_budget.value());
  EXPECT_LT(device_model.delta_vth().value(),
            0.3 * plan.unmitigated_permanent.value());
  // And the block was operational most of the time.
  EXPECT_GT(controller.accounting().uptime_fraction(),
            0.99 - plan.recovery_fraction);
}

TEST(Integration, AssistCircuitDeliversTheBiasThePlanAssumes) {
  // The planner assumes a -0.3 V recovery bias; the assist circuitry must
  // deliver at least that magnitude at its load pins.
  circuit::AssistCircuit assist{circuit::AssistCircuitParams{}};
  const Volts bias = assist.bti_recovery_bias();
  EXPECT_LE(bias.value(), -0.3);
}

TEST(Integration, EmPlanHoldsLineBelowCriticalInSimulation) {
  // Plan an EM duty cycle analytically, then check it against the compact
  // simulator: the line must not nucleate within the planning horizon.
  EmPlanningInput in;
  in.wire = em::paper_wire();
  in.material = em::paper_calibrated_em_material();
  in.operating_density = mega_amps_per_cm2(7.96);
  in.temperature = Celsius{230.0};
  in.lifetime = hours(40.0);
  in.stress_budget = 0.6;
  const EmSchedule plan = plan_em_recovery(in);
  ASSERT_GT(plan.reverse_interval.value(), 0.0);

  em::CompactEm line{em::CompactEmParams{.wire = in.wire,
                                         .material = in.material}};
  double t = 0.0;
  while (t < in.lifetime.value()) {
    line.step(in.operating_density, in.temperature,
              plan.forward_interval);
    t += plan.forward_interval.value();
    line.step(AmpsPerM2{-in.operating_density.value()}, in.temperature,
              plan.reverse_interval);
    t += plan.reverse_interval.value();
  }
  EXPECT_FALSE(line.void_open());
  EXPECT_LT(std::abs(line.end_stress().value()),
            in.material.critical_stress.value());
}

TEST(Integration, WithoutThePlanTheLineNucleates) {
  // Control experiment for the previous test.
  em::CompactEm line{em::CompactEmParams{
      .wire = em::paper_wire(),
      .material = em::paper_calibrated_em_material()}};
  line.step(mega_amps_per_cm2(7.96), Celsius{230.0}, hours(40.0));
  EXPECT_TRUE(line.void_open() || line.broken());
}

}  // namespace
}  // namespace dh::core
