// The Table I protocol, measurement-vs-model, shared by tests and the
// bench.
#include "core/accelerated_test.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::core {
namespace {

TEST(Table1, ModelColumnMatchesPaper) {
  const auto rows = run_table1();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.model_fraction, row.paper_model, 0.007) << row.label;
  }
}

TEST(Table1, MeasurementColumnTracksModel) {
  // Our virtual-chamber "measurement" reads the same experiment through a
  // noisy ring-oscillator sensor; it must land near the model, like the
  // paper's measured column does.
  const auto rows = run_table1();
  for (const auto& row : rows) {
    EXPECT_NEAR(row.measured_fraction, row.model_fraction, 0.06)
        << row.label;
  }
}

TEST(Table1, MeasurementDeterministicPerSeed) {
  const auto a = run_table1(123);
  const auto b = run_table1(123);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].measured_fraction, b[i].measured_fraction);
  }
}

TEST(Table1, ConditionsAreThePaperConditions) {
  const auto rows = run_table1();
  EXPECT_DOUBLE_EQ(rows[0].condition.temperature.value(), 20.0);
  EXPECT_DOUBLE_EQ(rows[0].condition.gate_bias.value(), 0.0);
  EXPECT_DOUBLE_EQ(rows[3].condition.temperature.value(), 110.0);
  EXPECT_DOUBLE_EQ(rows[3].condition.gate_bias.value(), -0.3);
}

TEST(Fig4Protocol, ReturnsAllPatterns) {
  const auto patterns = run_fig4(6);
  ASSERT_EQ(patterns.size(), 4u);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.permanent_mv.size(), 6u);
    EXPECT_GT(p.stress_per_cycle.value(), 0.0);
    EXPECT_GT(p.recovery_per_cycle.value(), 0.0);
  }
}

TEST(Fig4Protocol, RejectsZeroCycles) {
  EXPECT_THROW(run_fig4(0), dh::Error);
}

TEST(EmProtocols, Fig5SeriesIsWellFormed) {
  const auto r = run_fig5(true, minutes(120.0));
  EXPECT_GT(r.resistance.size(), 100u);
  EXPECT_GT(r.fresh_resistance.value(), 60.0);  // at 230 C
  EXPECT_LT(r.fresh_resistance.value(), 70.0);
  EXPECT_GE(r.peak_resistance.value(), r.final_resistance.value());
}

}  // namespace
}  // namespace dh::core
