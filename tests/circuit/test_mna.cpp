#include "circuit/mna.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::circuit {
namespace {

TEST(Mna, VoltageDivider) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const NodeId mid = c.add_node("mid");
  (void)c.add_voltage_source(vin, Circuit::ground(), Waveform::dc(10.0));
  c.add_resistor(vin, mid, Ohms{1000.0});
  c.add_resistor(mid, Circuit::ground(), Ohms{3000.0});
  const DcSolution sol = c.solve_dc();
  EXPECT_NEAR(sol.voltage(mid), 7.5, 1e-6);
  EXPECT_NEAR(sol.voltage(vin), 10.0, 1e-6);
}

TEST(Mna, VoltageSourceBranchCurrent) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const VsourceId vs =
      c.add_voltage_source(vin, Circuit::ground(), Waveform::dc(5.0));
  c.add_resistor(vin, Circuit::ground(), Ohms{100.0});
  const DcSolution sol = c.solve_dc();
  // Branch current flows out of the + terminal through the circuit:
  // MNA convention gives the current INTO the + terminal as positive, so
  // a sourcing supply reads negative.
  EXPECT_NEAR(sol.branch_current(vs.index), -0.05, 1e-6);
}

TEST(Mna, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.add_node("n");
  c.add_current_source(Circuit::ground(), n, Waveform::dc(0.01));
  c.add_resistor(n, Circuit::ground(), Ohms{500.0});
  const DcSolution sol = c.solve_dc();
  EXPECT_NEAR(sol.voltage(n), 5.0, 1e-6);
}

TEST(Mna, SuperpositionOfSources) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  (void)c.add_voltage_source(a, Circuit::ground(), Waveform::dc(2.0));
  c.add_resistor(a, b, Ohms{1000.0});
  c.add_resistor(b, Circuit::ground(), Ohms{1000.0});
  c.add_current_source(Circuit::ground(), b, Waveform::dc(0.001));
  const DcSolution sol = c.solve_dc();
  // v(b) = 2*0.5 + 1mA*(500) = 1 + 0.5.
  EXPECT_NEAR(sol.voltage(b), 1.5, 1e-6);
}

TEST(Mna, CapacitorOpenAtDc) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  (void)c.add_voltage_source(a, Circuit::ground(), Waveform::dc(1.0));
  c.add_resistor(a, b, Ohms{1000.0});
  c.add_capacitor(b, Circuit::ground(), Farads{1e-9});
  const DcSolution sol = c.solve_dc();
  // No DC path through the cap: node b floats to the source voltage.
  EXPECT_NEAR(sol.voltage(b), 1.0, 1e-6);
}

TEST(Mna, SwitchTogglesConduction) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  (void)c.add_voltage_source(a, Circuit::ground(), Waveform::dc(1.0));
  const SwitchId sw = c.add_switch(a, b, Ohms{1.0});
  c.add_resistor(b, Circuit::ground(), Ohms{999.0});
  c.set_switch(sw, false);
  EXPECT_LT(c.solve_dc().voltage(b), 0.01);
  c.set_switch(sw, true);
  EXPECT_NEAR(c.solve_dc().voltage(b), 0.999, 1e-6);
}

TEST(Mna, DiodeConnectedMosfetSettles) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId d = c.add_node("d");
  (void)c.add_voltage_source(vdd, Circuit::ground(), Waveform::dc(1.0));
  c.add_resistor(vdd, d, Ohms{10000.0});
  MosfetParams m;  // NMOS, vth 0.3
  (void)c.add_mosfet(m, d, d, Circuit::ground());
  const DcSolution sol = c.solve_dc();
  // Gate-drain tied: settles a bit above threshold.
  EXPECT_GT(sol.voltage(d), 0.3);
  EXPECT_LT(sol.voltage(d), 0.6);
}

TEST(Mna, CmosInverterTransfersLogic) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  (void)c.add_voltage_source(vdd, Circuit::ground(), Waveform::dc(1.0));
  const VsourceId vin =
      c.add_voltage_source(in, Circuit::ground(), Waveform::dc(0.0));
  MosfetParams n;
  MosfetParams p;
  p.polarity = MosPolarity::kPmos;
  (void)c.add_mosfet(p, in, out, vdd);
  (void)c.add_mosfet(n, in, out, Circuit::ground());
  (void)vin;
  // Input low -> output high.
  EXPECT_GT(c.solve_dc().voltage(out), 0.95);
}

TEST(Mna, RcTransientTimeConstant) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  (void)c.add_voltage_source(a, Circuit::ground(),
                             Waveform::step(0.0, 1.0, 1e-6, 1e-9));
  c.add_resistor(a, b, Ohms{1000.0});
  c.add_capacitor(b, Circuit::ground(), Farads{1e-9});  // tau = 1 us
  const std::vector<Probe> probes = {
      {Probe::Kind::kNodeVoltage, b, "vb"}};
  const TransientResult tr = c.solve_transient(6e-6, 1e-8, probes);
  const auto& vb = tr.trace("vb");
  // After one tau past the step: 1 - 1/e.
  EXPECT_NEAR(vb.sample(Seconds{2e-6}), 1.0 - std::exp(-1.0), 0.02);
  // After five tau: settled.
  EXPECT_NEAR(vb.back_value(), 1.0, 0.01);
}

TEST(Mna, TransientTraceLabels) {
  Circuit c;
  const NodeId a = c.add_node("a");
  (void)c.add_voltage_source(a, Circuit::ground(), Waveform::dc(1.0));
  c.add_resistor(a, Circuit::ground(), Ohms{1.0});
  const TransientResult tr = c.solve_transient(
      1e-6, 1e-7, {{Probe::Kind::kNodeVoltage, a, "va"}});
  EXPECT_NO_THROW((void)tr.trace("va"));
  EXPECT_THROW((void)tr.trace("nope"), Error);
}

TEST(Mna, InvalidElementsRejected) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_resistor(a, Circuit::ground(), Ohms{0.0}), Error);
  EXPECT_THROW(c.add_resistor(a, 99, Ohms{1.0}), Error);
  EXPECT_THROW(c.add_capacitor(a, Circuit::ground(), Farads{-1.0}), Error);
  EXPECT_THROW((void)c.node("missing"), Error);
}

TEST(Mna, FloatingNodeHandledByGmin) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  (void)c.add_voltage_source(a, Circuit::ground(), Waveform::dc(1.0));
  c.add_resistor(a, b, Ohms{100.0});
  // b has no other connection: gmin pulls it to the driven value.
  const DcSolution sol = c.solve_dc();
  EXPECT_NEAR(sol.voltage(b), 1.0, 1e-3);
}

TEST(Mna, KirchhoffCurrentBalance) {
  // Bridge of resistors: total current out of the source equals the sum
  // through the two parallel branches.
  Circuit c;
  const NodeId s = c.add_node("s");
  const NodeId x = c.add_node("x");
  const NodeId y = c.add_node("y");
  const VsourceId vs =
      c.add_voltage_source(s, Circuit::ground(), Waveform::dc(1.0));
  c.add_resistor(s, x, Ohms{100.0});
  c.add_resistor(s, y, Ohms{200.0});
  c.add_resistor(x, Circuit::ground(), Ohms{100.0});
  c.add_resistor(y, Circuit::ground(), Ohms{200.0});
  const DcSolution sol = c.solve_dc();
  const double i_src = -sol.branch_current(vs.index);
  const double i_x = (sol.voltage(s) - sol.voltage(x)) / 100.0;
  const double i_y = (sol.voltage(s) - sol.voltage(y)) / 200.0;
  EXPECT_NEAR(i_src, i_x + i_y, 1e-6);
}

}  // namespace
}  // namespace dh::circuit
