#include "circuit/waveform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::circuit {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(1.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(w.value(1e9), 1.5);
}

TEST(Waveform, PulseShape) {
  // 0 -> 1, delay 1, rise 1, width 2, fall 1, period 10.
  const Waveform w = Waveform::pulse(0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);   // before delay
  EXPECT_DOUBLE_EQ(w.value(1.5), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(w.value(3.0), 1.0);   // on
  EXPECT_DOUBLE_EQ(w.value(4.5), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(w.value(9.0), 0.0);   // off
  EXPECT_DOUBLE_EQ(w.value(11.5), 0.5);  // periodic repeat
}

TEST(Waveform, PulseValidation) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 0.0, 1, 1, 10), dh::Error);
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 1, 1, 10, 2), dh::Error);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({0.0, 1.0, 2.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);
}

TEST(Waveform, PwlValidation) {
  EXPECT_THROW(Waveform::pwl({1.0, 0.0}, {0.0, 1.0}), dh::Error);
  EXPECT_THROW(Waveform::pwl({0.0}, {0.0}), dh::Error);
}

TEST(Waveform, StepTransitions) {
  const Waveform w = Waveform::step(0.2, 0.8, 5.0, 0.1);
  EXPECT_DOUBLE_EQ(w.value(4.9), 0.2);
  EXPECT_DOUBLE_EQ(w.value(5.05), 0.5);
  EXPECT_DOUBLE_EQ(w.value(5.2), 0.8);
  EXPECT_DOUBLE_EQ(w.value(100.0), 0.8);
}

}  // namespace
}  // namespace dh::circuit
