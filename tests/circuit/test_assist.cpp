// Assist-circuitry tests against the paper's Fig. 8-10 behaviour.
#include "circuit/assist.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dh::circuit {
namespace {

AssistCircuit make_assist(int load_units = 1) {
  AssistCircuitParams p;
  p.load_units = load_units;
  return AssistCircuit{p};
}

TEST(Assist, NormalModePowersTheLoad) {
  const AssistOperating op = make_assist().solve(AssistMode::kNormal);
  EXPECT_GT(op.effective_supply(), 0.8);
  EXPECT_GT(op.grid_current, 1e-4);
}

TEST(Assist, EmModeReversesGridCurrentSameMagnitude) {
  // Fig. 9a: "The current direction is reversed under EM Active Recovery
  // Mode, and the current value is still the same".
  const AssistCircuit ac = make_assist();
  const AssistOperating normal = ac.solve(AssistMode::kNormal);
  const AssistOperating em = ac.solve(AssistMode::kEmActiveRecovery);
  EXPECT_LT(em.grid_current, 0.0);
  EXPECT_NEAR(std::abs(em.grid_current), std::abs(normal.grid_current),
              0.02 * std::abs(normal.grid_current));
}

TEST(Assist, EmModeKeepsLoadOperational) {
  const AssistCircuit ac = make_assist();
  const AssistOperating normal = ac.solve(AssistMode::kNormal);
  const AssistOperating em = ac.solve(AssistMode::kEmActiveRecovery);
  EXPECT_NEAR(em.effective_supply(), normal.effective_supply(), 0.02);
}

TEST(Assist, BtiModeSwapsLoadRails) {
  // Fig. 9b: load VDD and VSS node values are switched, with a 0.2-0.3 V
  // droop/increase from the pass devices.
  const AssistOperating op =
      make_assist().solve(AssistMode::kBtiActiveRecovery);
  EXPECT_GT(op.load_vss, op.load_vdd);  // rails swapped
  const double dv_low = op.load_vdd;          // VSS + dV
  const double dv_high = 1.0 - op.load_vss;   // VDD - dV
  EXPECT_GT(dv_low, 0.1);
  EXPECT_LT(dv_low, 0.35);
  EXPECT_GT(dv_high, 0.1);
  EXPECT_LT(dv_high, 0.35);
}

TEST(Assist, BtiRecoveryBiasExceedsExperimentNeed) {
  // "-0.816V is much higher than -0.3V used in our experiment".
  const Volts bias = make_assist().bti_recovery_bias();
  EXPECT_LT(bias.value(), -0.3);
  EXPECT_GT(bias.value(), -1.0);
}

TEST(Assist, BtiModeDrawsAlmostNoGridCurrent) {
  const AssistOperating op =
      make_assist().solve(AssistMode::kBtiActiveRecovery);
  EXPECT_LT(std::abs(op.grid_current), 1e-6);
}

TEST(Assist, DelayGrowsWithLoadSize) {
  // Fig. 10: "by increasing load size, the performance degrades".
  double prev = 0.0;
  for (int n = 1; n <= 5; ++n) {
    AssistCircuitParams p;
    p.load_units = n;
    const double d =
        AssistCircuit{p}.normalized_load_delay(AssistMode::kNormal);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Assist, DelayRatioMatchesPaperScale) {
  AssistCircuitParams p1;
  p1.load_units = 1;
  AssistCircuitParams p5;
  p5.load_units = 5;
  const double d1 = AssistCircuit{p1}.normalized_load_delay(AssistMode::kNormal);
  const double d5 = AssistCircuit{p5}.normalized_load_delay(AssistMode::kNormal);
  // Paper Fig. 10 tops out around 1.8x at 5 loads.
  EXPECT_GT(d5 / d1, 1.4);
  EXPECT_LT(d5 / d1, 2.3);
}

TEST(Assist, SwitchingTimeDecreasesWithLoadSize) {
  // Fig. 10: "Switching time also reduces with the increased load, but
  // with a slower rate."
  AssistCircuitParams p1;
  p1.load_units = 1;
  AssistCircuitParams p4;
  p4.load_units = 4;
  const double t1 = AssistCircuit{p1}
                        .switching_time(AssistMode::kNormal,
                                        AssistMode::kBtiActiveRecovery)
                        .value();
  const double t4 = AssistCircuit{p4}
                        .switching_time(AssistMode::kNormal,
                                        AssistMode::kBtiActiveRecovery)
                        .value();
  EXPECT_LT(t4, t1);
  // Sublinear: 4x the load does not give 4x the speedup.
  EXPECT_GT(t4, t1 / 4.0);
}

TEST(Assist, TransitionWaveformShowsCurrentReversal) {
  const AssistCircuit ac = make_assist();
  const TransientResult tr =
      ac.transition(AssistMode::kNormal, AssistMode::kEmActiveRecovery,
                    Seconds{2e-9}, Seconds{60e-9}, Seconds{1e-10});
  const auto& i = tr.trace("grid_current");
  EXPECT_GT(i.front_value(), 0.0);
  EXPECT_LT(i.back_value(), 0.0);
  EXPECT_NEAR(std::abs(i.back_value()), std::abs(i.front_value()),
              0.05 * std::abs(i.front_value()));
}

TEST(Assist, RejectsInvalidConfig) {
  AssistCircuitParams p;
  p.load_units = 0;
  EXPECT_THROW(AssistCircuit{p}, Error);
  p = AssistCircuitParams{};
  p.vdd = Volts{0.2};  // below threshold
  EXPECT_THROW(AssistCircuit{p}, Error);
}

TEST(Assist, ModeNames) {
  EXPECT_STREQ(to_string(AssistMode::kNormal), "Normal");
  EXPECT_STREQ(to_string(AssistMode::kEmActiveRecovery),
               "EM Active Recovery");
  EXPECT_STREQ(to_string(AssistMode::kBtiActiveRecovery),
               "BTI Active Recovery");
}

}  // namespace
}  // namespace dh::circuit
