#include "circuit/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dh::circuit {
namespace {

MosfetParams nmos() {
  MosfetParams p;
  p.polarity = MosPolarity::kNmos;
  return p;
}

MosfetParams pmos() {
  MosfetParams p = nmos();
  p.polarity = MosPolarity::kPmos;
  return p;
}

TEST(Mosfet, OffWhenGateLow) {
  const MosfetEval e = evaluate_mosfet(nmos(), 0.0, 1.0, 0.0);
  EXPECT_LT(e.ids, 1e-7);
  EXPECT_GT(e.ids, 0.0);  // subthreshold leakage, not hard zero
}

TEST(Mosfet, SaturationFollowsSquareLaw) {
  const MosfetParams p = nmos();
  const double i1 = evaluate_mosfet(p, 0.3 + 0.4, 1.2, 0.0).ids;
  const double i2 = evaluate_mosfet(p, 0.3 + 0.8, 1.6, 0.0).ids;
  // Doubling overdrive roughly quadruples saturation current (CLM adds a
  // few percent).
  EXPECT_NEAR(i2 / i1, 4.0, 0.5);
}

TEST(Mosfet, TriodeCurrentLowerThanSaturation) {
  const MosfetParams p = nmos();
  const double i_sat = evaluate_mosfet(p, 1.0, 1.0, 0.0).ids;
  const double i_tri = evaluate_mosfet(p, 1.0, 0.05, 0.0).ids;
  EXPECT_LT(i_tri, i_sat);
  EXPECT_GT(i_tri, 0.0);
}

TEST(Mosfet, ZeroVdsZeroCurrent) {
  const MosfetEval e = evaluate_mosfet(nmos(), 1.0, 0.5, 0.5);
  EXPECT_NEAR(e.ids, 0.0, 1e-15);
}

TEST(Mosfet, SourceDrainSwapAntisymmetric) {
  const MosfetParams p = nmos();
  const double fwd = evaluate_mosfet(p, 1.0, 0.8, 0.2).ids;
  // Swap D and S with the gate referenced identically: the channel is
  // symmetric, so the current reverses around the same magnitude.
  const double rev = evaluate_mosfet(p, 1.0, 0.2, 0.8).ids;
  EXPECT_NEAR(fwd, -rev, 1e-9 * std::abs(fwd) + 1e-15);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const double i_n = evaluate_mosfet(nmos(), 1.0, 1.0, 0.0).ids;
  // PMOS with all voltages mirrored conducts the same magnitude the
  // other way.
  const double i_p = evaluate_mosfet(pmos(), -1.0, -1.0, 0.0).ids;
  EXPECT_NEAR(i_p, -i_n, 1e-12 + 1e-9 * std::abs(i_n));
}

TEST(Mosfet, PmosConductsWithSourceHigh) {
  // Classic header: source at VDD, gate at 0 -> strongly on, current
  // flows source->drain (ids negative by our drain->source convention).
  const MosfetEval e = evaluate_mosfet(pmos(), 0.0, 0.5, 1.0);
  EXPECT_LT(e.ids, -1e-5);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
  const MosfetParams p = nmos();
  const double i1 = evaluate_mosfet(p, 0.10, 1.0, 0.0).ids;
  const double i2 = evaluate_mosfet(p, 0.16, 1.0, 0.0).ids;
  const double vt = p.thermal_voltage();
  const double expected_ratio = std::exp(0.06 / (p.n * vt));
  EXPECT_NEAR(i2 / i1, expected_ratio, 0.25 * expected_ratio);
}

/// Property: analytic terminal derivatives match finite differences in
/// every operating region.
struct OpPoint {
  double vg, vd, vs;
};

class MosfetDerivatives : public ::testing::TestWithParam<OpPoint> {};

TEST_P(MosfetDerivatives, MatchFiniteDifferences) {
  const auto [vg, vd, vs] = GetParam();
  for (const auto& p : {nmos(), pmos()}) {
    const double h = 1e-6;
    const MosfetEval e = evaluate_mosfet(p, vg, vd, vs);
    const double d_vg = (evaluate_mosfet(p, vg + h, vd, vs).ids -
                         evaluate_mosfet(p, vg - h, vd, vs).ids) /
                        (2.0 * h);
    const double d_vd = (evaluate_mosfet(p, vg, vd + h, vs).ids -
                         evaluate_mosfet(p, vg, vd - h, vs).ids) /
                        (2.0 * h);
    const double d_vs = (evaluate_mosfet(p, vg, vd, vs + h).ids -
                         evaluate_mosfet(p, vg, vd, vs - h).ids) /
                        (2.0 * h);
    const double scale = std::abs(e.d_vg) + std::abs(e.d_vd) +
                         std::abs(e.d_vs) + 1e-9;
    EXPECT_NEAR(e.d_vg, d_vg, 1e-3 * scale);
    EXPECT_NEAR(e.d_vd, d_vd, 1e-3 * scale);
    EXPECT_NEAR(e.d_vs, d_vs, 1e-3 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingRegions, MosfetDerivatives,
    ::testing::Values(OpPoint{1.0, 1.0, 0.0},    // saturation
                      OpPoint{1.0, 0.05, 0.0},   // triode
                      OpPoint{0.2, 1.0, 0.0},    // subthreshold
                      OpPoint{1.0, 0.2, 0.8},    // reversed vds
                      OpPoint{0.5, 0.5, 0.5},    // zero vds
                      OpPoint{-0.3, 0.7, 1.0},   // pmos-style biasing
                      OpPoint{0.9, 1.3, 0.4}));  // offset source

TEST(Mosfet, ThermalVoltageTracksTemperature) {
  MosfetParams cold = nmos();
  cold.temp_c = 0.0;
  MosfetParams hot = nmos();
  hot.temp_c = 100.0;
  EXPECT_GT(hot.thermal_voltage(), cold.thermal_voltage());
  EXPECT_NEAR(nmos().thermal_voltage(), 0.0259, 1e-3);
}

}  // namespace
}  // namespace dh::circuit
