#include "device/transistor.hpp"

#include <gtest/gtest.h>

#include "device/calibration.hpp"

namespace dh::device {
namespace {

Transistor make_pmos() {
  TransistorParams p;
  p.polarity = Polarity::kPmos;
  return Transistor{p, BtiModel::paper_calibrated()};
}

Transistor make_nmos() {
  TransistorParams p;
  p.polarity = Polarity::kNmos;
  return Transistor{p, BtiModel::paper_calibrated()};
}

TEST(Transistor, PmosStressedByLowInput) {
  // NBTI: a PMOS ages when its gate is driven low (input "0").
  Transistor stressed = make_pmos();
  Transistor relaxed = make_pmos();
  for (int h = 0; h < 24; ++h) {
    stressed.step(false, Volts{1.2}, Celsius{110.0}, hours(1.0));
    relaxed.step(true, Volts{1.2}, Celsius{110.0}, hours(1.0));
  }
  EXPECT_GT(stressed.delta_vth().value(), 10.0 * relaxed.delta_vth().value());
}

TEST(Transistor, NmosStressedByHighInput) {
  // PBTI: an NMOS ages when its gate is driven high (input "1").
  Transistor stressed = make_nmos();
  Transistor relaxed = make_nmos();
  for (int h = 0; h < 24; ++h) {
    stressed.step(true, Volts{1.2}, Celsius{110.0}, hours(1.0));
    relaxed.step(false, Volts{1.2}, Celsius{110.0}, hours(1.0));
  }
  EXPECT_GT(stressed.delta_vth().value(), 10.0 * relaxed.delta_vth().value());
}

TEST(Transistor, EffectiveVthIncludesShift) {
  Transistor t = make_pmos();
  const double vth0 = t.params().vth0.value();
  t.step(false, Volts{1.2}, Celsius{110.0}, hours(24.0));
  EXPECT_NEAR(t.effective_vth().value(),
              vth0 + t.delta_vth().value(), 1e-12);
}

TEST(Transistor, DirectConditionDrivesRecovery) {
  Transistor t = make_pmos();
  t.step(false, Volts{1.2}, Celsius{110.0}, hours(24.0));
  const double aged = t.delta_vth().value();
  // Fig. 8c: the assist circuitry applies the negative bias directly.
  t.apply(paper_conditions::recovery_no4(), hours(6.0));
  EXPECT_LT(t.delta_vth().value(), 0.5 * aged);
}

TEST(Transistor, MobilityFactorWithinBounds) {
  Transistor t = make_pmos();
  t.step(false, Volts{1.2}, Celsius{110.0}, hours(24.0));
  EXPECT_LT(t.mobility_factor(), 1.0);
  EXPECT_GT(t.mobility_factor(), 0.8);
}

}  // namespace
}  // namespace dh::device
