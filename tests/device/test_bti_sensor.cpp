#include "device/bti_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "device/calibration.hpp"

namespace dh::device {
namespace {

BtiSensor make_sensor(std::uint64_t seed = 1,
                      BtiSensorParams p = BtiSensorParams{}) {
  RingOscillatorParams rop;
  rop.vdd = Volts{1.1};
  return BtiSensor{RingOscillator{rop}, p, Rng{seed}};
}

TEST(BtiSensor, MeasurementNearTruth) {
  BtiSensor sensor = make_sensor();
  auto device = BtiModel::paper_calibrated();
  device.apply(paper_conditions::accelerated_stress(), hours(24.0));
  const double truth = device.delta_vth().value();
  const double measured = sensor.measure_delta_vth(device).value();
  // The frequency readout folds mobility degradation into its apparent
  // Vth shift, so a ~20% systematic overestimate is expected.
  EXPECT_NEAR(measured, truth, 0.25 * truth);
}

TEST(BtiSensor, QuantizationRespectsGateTime) {
  BtiSensorParams p;
  p.gate_time = Seconds{0.01};  // 100 Hz resolution
  p.relative_noise = 0.0;
  BtiSensor sensor = make_sensor(3, p);
  const auto device = BtiModel::paper_calibrated();
  const double f = sensor.measure_frequency(device).value();
  EXPECT_NEAR(std::fmod(f, 100.0), 0.0, 1e-6);
}

TEST(BtiSensor, DeterministicForSameSeed) {
  auto device = BtiModel::paper_calibrated();
  device.apply(paper_conditions::accelerated_stress(), hours(2.0));
  BtiSensor a = make_sensor(42);
  BtiSensor b = make_sensor(42);
  EXPECT_DOUBLE_EQ(a.measure_frequency(device).value(),
                   b.measure_frequency(device).value());
}

TEST(BtiSensor, NoiseStaysBounded) {
  BtiSensor sensor = make_sensor(5);
  const auto device = BtiModel::paper_calibrated();
  const double f0 = sensor.oscillator().params().fresh_frequency.value();
  for (int i = 0; i < 200; ++i) {
    const double f = sensor.measure_frequency(device).value();
    EXPECT_NEAR(f, f0, 0.002 * f0);
  }
}

TEST(BtiSensor, FreshDeviceReadsNearZeroShift) {
  BtiSensor sensor = make_sensor(9);
  const auto device = BtiModel::paper_calibrated();
  EXPECT_LT(sensor.measure_delta_vth(device).value(), 0.002);
}

}  // namespace
}  // namespace dh::device
