// Calibration tests: the full BTI model must reproduce the paper's
// Table I model column.
#include "device/bti_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/calibration.hpp"

namespace dh::device {
namespace {

TEST(BtiModel, TableOneModelColumn) {
  const auto stress = paper_conditions::accelerated_stress();
  for (const auto& target : table1_targets()) {
    auto model = BtiModel::paper_calibrated();
    const auto out =
        run_stress_recovery(model, stress, table1_stress_time(),
                            target.condition, table1_recovery_time());
    // Paper model column: 1% / 14.4% / 29.2% / 72.7%.
    EXPECT_NEAR(out.recovery_fraction(), target.model_fraction, 0.007)
        << target.label;
  }
}

TEST(BtiModel, RecoveryOrderingAcrossConditions) {
  const auto stress = paper_conditions::accelerated_stress();
  double prev = -1.0;
  for (const auto& target : table1_targets()) {
    auto model = BtiModel::paper_calibrated();
    const auto out =
        run_stress_recovery(model, stress, table1_stress_time(),
                            target.condition, table1_recovery_time());
    EXPECT_GT(out.recovery_fraction(), prev) << target.label;
    prev = out.recovery_fraction();
  }
}

TEST(BtiModel, PermanentComponentSurvivesExtendedRecovery) {
  // "there is still a permanent component (>27%) which cannot be
  //  recovered with the extended recovery period (much longer than 6h)".
  auto model = BtiModel::paper_calibrated();
  model.apply(paper_conditions::accelerated_stress(), table1_stress_time());
  const double stressed = model.delta_vth().value();
  model.apply(paper_conditions::recovery_no4(), hours(24.0));
  const double residual = model.delta_vth().value() / stressed;
  EXPECT_GT(residual, 0.20);
  EXPECT_LT(residual, 0.35);
}

TEST(BtiModel, FastRecoveryClaim) {
  // "72.4% of the wearout is recovered within only 1/4 of the stress
  //  time" — 6 h recovery after 24 h stress under condition No. 4.
  auto model = BtiModel::paper_calibrated();
  const auto out = run_stress_recovery(
      model, paper_conditions::accelerated_stress(), hours(24.0),
      paper_conditions::recovery_no4(), hours(6.0));
  EXPECT_GT(out.recovery_fraction(), 0.70);
}

TEST(BtiModel, BreakdownSumsToTotal) {
  auto model = BtiModel::paper_calibrated();
  model.apply(paper_conditions::accelerated_stress(), hours(10.0));
  const auto b = model.breakdown();
  EXPECT_NEAR(b.total().value(), model.delta_vth().value(), 1e-12);
  EXPECT_GT(b.recoverable.value(), 0.0);
}

TEST(BtiModel, ResetRestoresFresh) {
  auto model = BtiModel::paper_calibrated();
  model.apply(paper_conditions::accelerated_stress(), hours(24.0));
  model.reset();
  EXPECT_DOUBLE_EQ(model.delta_vth().value(), 0.0);
}

TEST(BtiModel, MobilityDegradesWithWearout) {
  auto model = BtiModel::paper_calibrated();
  EXPECT_DOUBLE_EQ(model.mobility_factor(), 1.0);
  model.apply(paper_conditions::accelerated_stress(), hours(24.0));
  EXPECT_LT(model.mobility_factor(), 1.0);
  EXPECT_GT(model.mobility_factor(), 0.9);
}

TEST(BtiModel, StressRecoveryHelperValidatesInput) {
  auto model = BtiModel::paper_calibrated();
  EXPECT_THROW((void)run_stress_recovery(model, paper_conditions::recovery_no1(),
                                   hours(1.0),
                                   paper_conditions::recovery_no4(),
                                   hours(1.0)),
               Error);
}

TEST(BtiModel, NominalConditionsAgeSlowly) {
  // A 0.8 V, 50 C device must age orders of magnitude slower than the
  // accelerated test condition.
  auto nominal = BtiModel::paper_calibrated();
  auto accelerated = BtiModel::paper_calibrated();
  nominal.apply({Volts{0.8}, Celsius{50.0}}, hours(24.0));
  accelerated.apply(paper_conditions::accelerated_stress(), hours(24.0));
  EXPECT_LT(nominal.delta_vth().value(),
            0.2 * accelerated.delta_vth().value());
}

}  // namespace
}  // namespace dh::device
