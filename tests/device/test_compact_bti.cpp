// The compact BTI model must track the full trap-ensemble model closely
// enough for system-level use (the ablation bench quantifies this in
// detail; these tests pin the qualitative contract).
#include "device/compact_bti.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"

namespace dh::device {
namespace {

TEST(CompactBti, FreshIsZero) {
  CompactBti m{};
  EXPECT_DOUBLE_EQ(m.delta_vth().value(), 0.0);
}

TEST(CompactBti, StressThenRecoverShape) {
  CompactBti m{};
  m.apply(paper_conditions::accelerated_stress(), hours(24.0));
  const double stressed = m.delta_vth().value();
  EXPECT_GT(stressed, 0.02);
  m.apply(paper_conditions::recovery_no4(), hours(6.0));
  const double recovered = (stressed - m.delta_vth().value()) / stressed;
  // Same ballpark as the full model's 72.7%.
  EXPECT_GT(recovered, 0.5);
  EXPECT_LT(recovered, 0.95);
}

TEST(CompactBti, RecoveryConditionOrdering) {
  const auto conditions = {paper_conditions::recovery_no1(),
                           paper_conditions::recovery_no2(),
                           paper_conditions::recovery_no3(),
                           paper_conditions::recovery_no4()};
  double prev_residual = 1e9;
  for (const auto& cond : conditions) {
    CompactBti m{};
    m.apply(paper_conditions::accelerated_stress(), hours(24.0));
    m.apply(cond, hours(6.0));
    EXPECT_LT(m.delta_vth().value(), prev_residual);
    prev_residual = m.delta_vth().value();
  }
}

TEST(CompactBti, BalancedCyclingStaysLow) {
  CompactBti m{};
  double peak = 0.0;
  for (int c = 0; c < 8; ++c) {
    m.apply(paper_conditions::accelerated_stress(), hours(1.0));
    peak = std::max(peak, m.delta_vth().value());
    m.apply(paper_conditions::recovery_no4(), hours(1.0));
  }
  EXPECT_LT(m.delta_vth().value(), 0.35 * peak);
}

TEST(CompactBti, BreakdownSumsToTotal) {
  CompactBti m{};
  m.apply(paper_conditions::accelerated_stress(), hours(12.0));
  const auto b = m.breakdown();
  EXPECT_NEAR(b.total().value(), m.delta_vth().value(), 1e-12);
}

TEST(CompactBti, ResetClears) {
  CompactBti m{};
  m.apply(paper_conditions::accelerated_stress(), hours(12.0));
  m.reset();
  EXPECT_DOUBLE_EQ(m.delta_vth().value(), 0.0);
}

TEST(CompactBti, TracksFullModelUnderNominalAging) {
  // One year at nominal conditions with daily recovery naps: compact and
  // full models should land within a factor-of-two band.
  CompactBti compact{};
  auto full = BtiModel::paper_calibrated();
  const BtiCondition run{Volts{0.9}, Celsius{60.0}};
  const BtiCondition nap{Volts{-0.3}, Celsius{60.0}};
  for (int d = 0; d < 60; ++d) {
    compact.apply(run, hours(22.0));
    compact.apply(nap, hours(2.0));
    full.apply(run, hours(22.0));
    full.apply(nap, hours(2.0));
  }
  const double c = compact.delta_vth().value();
  const double f = full.delta_vth().value();
  EXPECT_GT(c, 0.3 * f);
  EXPECT_LT(c, 3.0 * f);
}

TEST(CompactBti, MuchFasterThanFullModel) {
  // Smoke check of the design goal (no timing assertion, just step count):
  // 10k steps must run without issue.
  CompactBti m{};
  for (int i = 0; i < 10000; ++i) {
    m.apply(paper_conditions::accelerated_stress(), minutes(30.0));
  }
  EXPECT_GT(m.delta_vth().value(), 0.0);
}

TEST(CompactBti, RejectsInvalidParams) {
  CompactBtiParams p;
  p.fast_sat_v = -1.0;
  EXPECT_THROW(CompactBti{p}, Error);
}

TEST(CompactBti, NegativeDtThrows) {
  CompactBti m{};
  EXPECT_THROW(m.apply(paper_conditions::recovery_no1(), Seconds{-5.0}),
               Error);
}

}  // namespace
}  // namespace dh::device
