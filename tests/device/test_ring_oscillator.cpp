#include "device/ring_oscillator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dh::device {
namespace {

RingOscillator make_ro() { return RingOscillator{RingOscillatorParams{}}; }

TEST(RingOscillator, FreshFrequencyAtZeroShift) {
  const RingOscillator ro = make_ro();
  EXPECT_DOUBLE_EQ(ro.frequency(Volts{0.0}).value(),
                   ro.params().fresh_frequency.value());
  EXPECT_DOUBLE_EQ(ro.degradation(Volts{0.0}), 0.0);
}

TEST(RingOscillator, FrequencyDropsWithVthShift) {
  const RingOscillator ro = make_ro();
  double prev = ro.frequency(Volts{0.0}).value();
  for (double dv = 0.01; dv < 0.2; dv += 0.01) {
    const double f = ro.frequency(Volts{dv}).value();
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(RingOscillator, MobilityScalesFrequencyLinearly) {
  const RingOscillator ro = make_ro();
  const double f_full = ro.frequency(Volts{0.02}, 1.0).value();
  const double f_half = ro.frequency(Volts{0.02}, 0.5).value();
  EXPECT_NEAR(f_half, 0.5 * f_full, 1e-9 * f_full);
}

TEST(RingOscillator, LowerSupplySlows) {
  const RingOscillator ro = make_ro();
  const double f_nom = ro.frequency(Volts{0.0}).value();
  const double f_low =
      ro.frequency_at(Volts{0.9}, Volts{0.0}).value();
  EXPECT_LT(f_low, f_nom);
}

TEST(RingOscillator, InferDeltaVthRoundTrip) {
  const RingOscillator ro = make_ro();
  for (const double dv : {0.005, 0.02, 0.05, 0.1}) {
    const Hertz f = ro.frequency(Volts{dv});
    EXPECT_NEAR(ro.infer_delta_vth(f).value(), dv, 1e-6);
  }
}

TEST(RingOscillator, InferClampsAboveFreshFrequency) {
  const RingOscillator ro = make_ro();
  const Hertz above{ro.params().fresh_frequency.value() * 1.01};
  EXPECT_DOUBLE_EQ(ro.infer_delta_vth(above).value(), 0.0);
}

TEST(RingOscillator, RejectsInvalidConfigs) {
  RingOscillatorParams p;
  p.stages = 4;  // must be odd
  EXPECT_THROW(RingOscillator{p}, Error);
  p = RingOscillatorParams{};
  p.vth0 = p.vdd;  // no overdrive
  EXPECT_THROW(RingOscillator{p}, Error);
  p = RingOscillatorParams{};
  p.alpha = 3.0;  // out of physical range
  EXPECT_THROW(RingOscillator{p}, Error);
}

TEST(RingOscillator, ThrowsWhenDeviceCannotSwitch) {
  const RingOscillator ro = make_ro();
  const double overdrive =
      ro.params().vdd.value() - ro.params().vth0.value();
  EXPECT_THROW((void)ro.frequency(Volts{overdrive + 0.01}), Error);
}

TEST(RingOscillator, PaperScaleDegradation) {
  // A ~74 mV accelerated-stress shift on the 40nm-class RO should cost a
  // clearly measurable but single-digit-percent frequency loss.
  const RingOscillator ro = make_ro();
  const double deg = ro.degradation(Volts{0.074});
  EXPECT_GT(deg, 0.02);
  EXPECT_LT(deg, 0.25);
}

}  // namespace
}  // namespace dh::device
