#include "device/permanent.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/calibration.hpp"

namespace dh::device {
namespace {

PermanentComponent make_pc() {
  return PermanentComponent{paper_calibrated_bti_params().permanent};
}

TEST(Permanent, FreshIsZero) {
  const PermanentComponent pc = make_pc();
  EXPECT_DOUBLE_EQ(pc.total().value(), 0.0);
}

TEST(Permanent, StressGeneratesPrecursors) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(1.0));
  EXPECT_GT(pc.unlocked().value(), 0.0);
}

TEST(Permanent, SustainedStressLocksIn) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(24.0));
  // After 24 h most of the generated population must be locked (that is
  // the Table I > 27% permanent story).
  EXPECT_GT(pc.locked().value(), 5.0 * pc.unlocked().value());
}

TEST(Permanent, ShortStressLocksAlmostNothing) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(1.0));
  EXPECT_LT(pc.locked().value(), 0.15 * pc.unlocked().value());
}

TEST(Permanent, ActiveRecoveryAnnealsPrecursors) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(1.0));
  const double before = pc.unlocked().value();
  pc.apply(paper_conditions::recovery_no4(), hours(3.0));
  EXPECT_LT(pc.unlocked().value(), 0.1 * before);
}

TEST(Permanent, RoomTemperatureRecoveryBarelyAnneals) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(1.0));
  const double before = pc.unlocked().value();
  pc.apply(paper_conditions::recovery_no1(), hours(6.0));
  EXPECT_GT(pc.unlocked().value(), 0.95 * before);
}

TEST(Permanent, LockedComponentSurvivesDeepRecovery) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(24.0));
  const double locked_before = pc.locked().value();
  pc.apply(paper_conditions::recovery_no4(), hours(24.0));
  EXPECT_GT(pc.locked().value(), 0.9 * locked_before);
}

TEST(Permanent, SaturatesAtPmax) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(10000.0));
  EXPECT_LE(pc.total().value(), pc.params().p_max.value() * (1.0 + 1e-6));
}

TEST(Permanent, ResetClearsState) {
  PermanentComponent pc = make_pc();
  pc.apply(paper_conditions::accelerated_stress(), hours(24.0));
  pc.reset();
  EXPECT_DOUBLE_EQ(pc.total().value(), 0.0);
}

TEST(Permanent, GenerationScalesWithVoltage) {
  PermanentComponent lo = make_pc();
  PermanentComponent hi = make_pc();
  lo.apply({Volts{0.9}, Celsius{110.0}}, hours(2.0));
  hi.apply({Volts{1.2}, Celsius{110.0}}, hours(2.0));
  EXPECT_GT(hi.total().value(), lo.total().value());
}

TEST(Permanent, GenerationScalesWithTemperature) {
  PermanentComponent cold = make_pc();
  PermanentComponent hot = make_pc();
  cold.apply({Volts{1.2}, Celsius{50.0}}, hours(2.0));
  hot.apply({Volts{1.2}, Celsius{110.0}}, hours(2.0));
  EXPECT_GT(hot.total().value(), cold.total().value());
}

TEST(Permanent, InvalidParamsRejected) {
  PermanentComponentParams p = paper_calibrated_bti_params().permanent;
  p.p_max = Volts{0.0};
  EXPECT_THROW(PermanentComponent{p}, Error);
}

}  // namespace
}  // namespace dh::device
