#include "device/trap_ensemble.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/calibration.hpp"

namespace dh::device {
namespace {

TrapEnsemble make_ensemble() {
  return TrapEnsemble{paper_calibrated_bti_params().ensemble};
}

TEST(TrapEnsemble, FreshStateIsEmpty) {
  const TrapEnsemble e = make_ensemble();
  EXPECT_DOUBLE_EQ(e.occupied_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(e.delta_vth().value(), 0.0);
}

TEST(TrapEnsemble, StressFillsTraps) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::accelerated_stress(), hours(1.0));
  EXPECT_GT(e.occupied_fraction(), 0.3);
  EXPECT_GT(e.delta_vth().value(), 0.0);
}

TEST(TrapEnsemble, OccupancyBounded) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::accelerated_stress(), hours(100.0));
  for (std::size_t i = 0; i < e.bin_count(); ++i) {
    EXPECT_GE(e.occupancy(i), 0.0);
    EXPECT_LE(e.occupancy(i), 1.0);
  }
  EXPECT_LE(e.occupied_fraction(), 1.0);
}

TEST(TrapEnsemble, StressIsMonotoneInTime) {
  TrapEnsemble e = make_ensemble();
  double prev = 0.0;
  for (int h = 0; h < 10; ++h) {
    e.apply(paper_conditions::accelerated_stress(), hours(1.0));
    const double now = e.occupied_fraction();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(TrapEnsemble, RecoveryIsMonotoneInTime) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::accelerated_stress(), hours(24.0));
  double prev = e.occupied_fraction();
  for (int h = 0; h < 6; ++h) {
    e.apply(paper_conditions::recovery_no4(), hours(1.0));
    const double now = e.occupied_fraction();
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(TrapEnsemble, SplitStepsMatchOneBigStep) {
  // Per-bin updates are analytic, so 24 x 1h must equal 1 x 24h exactly.
  TrapEnsemble big = make_ensemble();
  big.apply(paper_conditions::accelerated_stress(), hours(24.0));
  TrapEnsemble split = make_ensemble();
  for (int h = 0; h < 24; ++h) {
    split.apply(paper_conditions::accelerated_stress(), hours(1.0));
  }
  EXPECT_NEAR(big.occupied_fraction(), split.occupied_fraction(), 1e-12);
}

TEST(TrapEnsemble, ResetRestoresFreshState) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::accelerated_stress(), hours(5.0));
  e.reset();
  EXPECT_DOUBLE_EQ(e.occupied_fraction(), 0.0);
}

TEST(TrapEnsemble, ZeroDtIsNoOp) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::accelerated_stress(), hours(2.0));
  const double before = e.occupied_fraction();
  e.apply(paper_conditions::recovery_no4(), Seconds{0.0});
  EXPECT_DOUBLE_EQ(e.occupied_fraction(), before);
}

TEST(TrapEnsemble, NegativeDtThrows) {
  TrapEnsemble e = make_ensemble();
  EXPECT_THROW(e.apply(paper_conditions::recovery_no1(), Seconds{-1.0}),
               Error);
}

TEST(TrapEnsemble, NoCaptureWithoutStress) {
  TrapEnsemble e = make_ensemble();
  e.apply(paper_conditions::recovery_no1(), hours(100.0));
  EXPECT_DOUBLE_EQ(e.occupied_fraction(), 0.0);
}

/// Property sweep: hotter recovery always recovers at least as much.
class RecoveryTemperature : public ::testing::TestWithParam<double> {};

TEST_P(RecoveryTemperature, HotterRecoversMore) {
  const double t_c = GetParam();
  TrapEnsemble cold = make_ensemble();
  TrapEnsemble hot = make_ensemble();
  cold.apply(paper_conditions::accelerated_stress(), hours(24.0));
  hot.apply(paper_conditions::accelerated_stress(), hours(24.0));
  cold.apply({Volts{-0.3}, Celsius{t_c}}, hours(6.0));
  hot.apply({Volts{-0.3}, Celsius{t_c + 30.0}}, hours(6.0));
  EXPECT_LE(hot.occupied_fraction(), cold.occupied_fraction());
}

INSTANTIATE_TEST_SUITE_P(Temperatures, RecoveryTemperature,
                         ::testing::Values(20.0, 50.0, 80.0, 110.0));

/// Property sweep: more negative recovery bias always recovers more.
class RecoveryBias : public ::testing::TestWithParam<double> {};

TEST_P(RecoveryBias, MoreNegativeBiasRecoversMore) {
  const double bias = GetParam();
  TrapEnsemble weak = make_ensemble();
  TrapEnsemble strong = make_ensemble();
  weak.apply(paper_conditions::accelerated_stress(), hours(24.0));
  strong.apply(paper_conditions::accelerated_stress(), hours(24.0));
  weak.apply({Volts{bias}, Celsius{110.0}}, hours(6.0));
  strong.apply({Volts{bias - 0.15}, Celsius{110.0}}, hours(6.0));
  EXPECT_LE(strong.occupied_fraction(), weak.occupied_fraction());
}

INSTANTIATE_TEST_SUITE_P(Biases, RecoveryBias,
                         ::testing::Values(0.0, -0.1, -0.2, -0.3));

TEST(TrapEnsemble, DensityValidation) {
  TrapEnsembleParams p = paper_calibrated_bti_params().ensemble;
  p.density.breakpoints = {1.0, 0.5};  // not sorted
  EXPECT_THROW(TrapEnsemble{p}, Error);
  p = paper_calibrated_bti_params().ensemble;
  p.density.segment_weights.pop_back();
  EXPECT_THROW(TrapEnsemble{p}, Error);
}

}  // namespace
}  // namespace dh::device
