// Fig. 4 reproduction tests: scheduled periodic recovery eliminates the
// permanent BTI component when stress and recovery are balanced.
#include <gtest/gtest.h>

#include "core/accelerated_test.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"

namespace dh::device {
namespace {

TEST(Fig4, BalancedScheduleKeepsPermanentPracticallyZero) {
  auto model = BtiModel::paper_calibrated();
  const auto stress = paper_conditions::accelerated_stress();
  const auto rec = paper_conditions::recovery_no4();
  double total_shift = 0.0;
  for (int c = 0; c < 8; ++c) {
    model.apply(stress, hours(1.0));
    total_shift = std::max(total_shift, model.delta_vth().value());
    model.apply(rec, hours(1.0));
  }
  // Residual at a few percent of the plot scale reads as "practically
  // zero" in the paper's Fig. 4 (which plots up to the 4:1 pattern's
  // ~20 mV accumulation).
  EXPECT_LT(model.delta_vth().value(), 0.15 * total_shift);
  EXPECT_LT(model.delta_vth().value(), 0.004);
}

TEST(Fig4, UnbalancedScheduleAccumulates) {
  auto model = BtiModel::paper_calibrated();
  const auto stress = paper_conditions::accelerated_stress();
  const auto rec = paper_conditions::recovery_no4();
  std::vector<double> residuals;
  for (int c = 0; c < 8; ++c) {
    model.apply(stress, hours(4.0));
    model.apply(rec, hours(1.0));
    residuals.push_back(model.delta_vth().value());
  }
  // Monotone growth cycle over cycle.
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    EXPECT_GT(residuals[i], residuals[i - 1]);
  }
  // And clearly non-zero by the end.
  EXPECT_GT(residuals.back(), 0.010);
}

TEST(Fig4, PatternOrdering) {
  const auto patterns = core::run_fig4(8);
  ASSERT_EQ(patterns.size(), 4u);
  // 4:1 > 2:1 > 1:1 > 1:2 in final permanent component.
  EXPECT_GT(patterns[0].permanent_mv.back(), patterns[1].permanent_mv.back());
  EXPECT_GT(patterns[1].permanent_mv.back(), patterns[2].permanent_mv.back());
  EXPECT_GT(patterns[2].permanent_mv.back(), patterns[3].permanent_mv.back());
}

TEST(Fig4, BalancedResidualIsSmallFractionOfUnbalanced) {
  const auto patterns = core::run_fig4(8);
  const double balanced = patterns[2].permanent_mv.back();   // 1h:1h
  const double unbalanced = patterns[0].permanent_mv.back(); // 4h:1h
  EXPECT_LT(balanced, 0.2 * unbalanced);
}

TEST(Fig4, EveryPatternRecordsEveryCycle) {
  const auto patterns = core::run_fig4(5);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.permanent_mv.size(), 5u);
    for (const double v : p.permanent_mv) {
      EXPECT_GE(v, 0.0);
    }
  }
}

/// Property sweep: for a fixed 1h recovery, permanent residual grows with
/// the stress interval.
class Fig4StressSweep : public ::testing::TestWithParam<double> {};

TEST_P(Fig4StressSweep, LongerStressLeavesMoreResidual) {
  const double stress_h = GetParam();
  auto shorter = BtiModel::paper_calibrated();
  auto longer = BtiModel::paper_calibrated();
  const auto stress = paper_conditions::accelerated_stress();
  const auto rec = paper_conditions::recovery_no4();
  for (int c = 0; c < 4; ++c) {
    shorter.apply(stress, hours(stress_h));
    shorter.apply(rec, hours(1.0));
    longer.apply(stress, hours(stress_h * 2.0));
    longer.apply(rec, hours(1.0));
  }
  EXPECT_GT(longer.delta_vth().value(), shorter.delta_vth().value());
}

INSTANTIATE_TEST_SUITE_P(StressHours, Fig4StressSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace dh::device
