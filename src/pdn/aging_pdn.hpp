// PDN with per-segment EM aging and assist-circuitry recovery support.
//
// Every local-grid segment carries a compact EM state driven by the IR
// solve's per-segment current density. The assist circuitry's *EM Active
// Recovery* mode reverses the current through the whole local grid (same
// magnitude — the load keeps running), which this model applies as a sign
// flip on every segment's density. Segments whose Blech product sits
// below the critical threshold are immortal and skipped.
#pragma once

#include <span>
#include <vector>

#include "em/compact_em.hpp"
#include "pdn/pdn_grid.hpp"

namespace dh::pdn {

struct AgingPdnStats {
  double worst_drop_v = 0.0;
  double max_void_len_m = 0.0;
  std::size_t nucleated_segments = 0;
  std::size_t broken_segments = 0;
  std::size_t immortal_segments = 0;  // Blech-filtered
  // Sparse-engine counters for the IR solves driving the aging loop
  // (copied from PdnGrid::solve_stats so harnesses can price the solver).
  std::size_t solver_factorizations = 0;
  std::size_t solver_cg_iterations = 0;
};

class AgingPdn {
 public:
  AgingPdn(PdnParams pdn_params, em::EmMaterialParams material);

  /// Advance the grid for `dt`: solve IR with the current (aged) segment
  /// resistances, then age each mortal segment at its own current density.
  /// `em_recovery_mode` reverses every segment current (assist circuitry).
  void step(std::span<const double> load_amps, Celsius temperature,
            Seconds dt, bool em_recovery_mode = false);

  [[nodiscard]] const PdnGrid& grid() const { return grid_; }
  [[nodiscard]] const PdnSolution& last_solution() const { return last_; }
  [[nodiscard]] const em::CompactEm& segment_state(std::size_t i) const;
  [[nodiscard]] AgingPdnStats stats() const;
  [[nodiscard]] Seconds elapsed() const { return Seconds{elapsed_s_}; }

  /// True when any segment has broken or the worst-case IR drop exceeds
  /// `drop_limit` of VDD.
  [[nodiscard]] bool failed(double drop_limit_fraction = 0.10) const;

  /// Checkpoint support: per-segment EM states, aged resistances, the
  /// last solution, and the grid's cached-factor state (see
  /// PdnGrid::save_cache for why the cache matters for bit-identity).
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  PdnGrid grid_;
  em::EmMaterialParams material_;
  std::vector<em::CompactEm> segment_em_;
  std::vector<double> segment_r_;
  std::vector<bool> immortal_;
  PdnSolution last_;
  Celsius last_temp_{20.0};
  double elapsed_s_ = 0.0;
};

}  // namespace dh::pdn
