// On-chip power-delivery-network model: a resistor mesh for the local
// VDD grid fed from pad/global-network connections, solved for IR drop
// and per-segment current density. This is the substrate the paper's EM
// story lives on: "EM is especially critical for power delivery networks"
// — local grids built in thin lower metals carry high unidirectional DC
// current density, while the global top-metal grid is wide, thick, and
// comparatively immortal (Fig. 11).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/math/linalg.hpp"
#include "common/math/sparse/spd_solver.hpp"
#include "common/units.hpp"
#include "em/wire.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::pdn {

struct PdnParams {
  std::size_t rows = 8;
  std::size_t cols = 8;
  /// Local-layer segment between adjacent grid nodes.
  em::WireGeometry segment_wire{
      .length = Meters{200e-6},
      .width = Meters{0.5e-6},
      .thickness = Meters{0.2e-6},
      .resistivity_ref = 2.2e-8,
      .reference_temperature = Celsius{20.0},
      .tcr_per_k = 3.93e-3,
      .liner_ohm_per_m = 2.5e8,
  };
  Volts vdd{1.0};
  /// Resistance from each pad node up through the global grid and bump.
  Ohms pad_resistance{0.05};
  /// Pad nodes; empty = the four corners.
  std::vector<std::size_t> pad_nodes;
  /// Relative per-segment resistance drift that forces the cached sparse
  /// factorization (IC(0) or direct Cholesky, see math::sparse::SpdSolver)
  /// to be rebuilt. Between refactorizations the stale factor
  /// preconditions a conjugate-gradient solve against the *true*
  /// conductances, so accuracy does not depend on the tolerance — only
  /// the CG iteration count does. EM drift is slow, so most solves are a
  /// handful of preconditioned iterations. Set to 0 to refactorize every
  /// time resistances change at all.
  double refactor_tolerance = 0.05;
  /// Engine tuning (direct-vs-CG threshold, CG tolerances).
  math::sparse::SpdSolverOptions solver;
};

/// Counters for the cached IR solver (see PdnGrid::solve).
struct PdnSolveStats {
  std::size_t solves = 0;
  std::size_t factorizations = 0;
  /// CG iterations spent refining against stale (drifted) factors — the
  /// sparse successor of the dense cache's iterative-refinement sweeps.
  std::size_t refinement_iterations = 0;
  /// Total preconditioned-CG iterations across all solves (exact solves
  /// on the IC(0) path plus every drift-refinement iteration).
  std::size_t cg_iterations = 0;
};

struct PdnSolution {
  std::vector<double> node_voltage;
  std::vector<double> segment_current;  // signed, node a -> node b
  double worst_drop_v = 0.0;
  std::size_t worst_node = 0;
};

class PdnGrid {
 public:
  explicit PdnGrid(PdnParams params);

  [[nodiscard]] std::size_t node_count() const {
    return params_.rows * params_.cols;
  }
  [[nodiscard]] std::size_t node_index(std::size_t row, std::size_t col) const;

  struct Segment {
    std::size_t a, b;
  };
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const Segment& segment(std::size_t i) const;

  /// Fresh per-segment resistances at temperature t.
  [[nodiscard]] std::vector<double> fresh_segment_resistances(
      Celsius t) const;

  /// Solve the mesh: `load_amps` is the current drawn at each node;
  /// `segment_resistance` allows aged overrides (same order as segments).
  ///
  /// Runs on the sparse engine (common/math/sparse): the CSR conductance
  /// matrix is factorized — tridiagonal/banded Cholesky for small grids,
  /// IC(0) for large ones — and the factor is cached until any segment
  /// resistance drifts more than `params.refactor_tolerance` (relative);
  /// in between, the stale factor preconditions a CG solve against the
  /// true conductances (applied matrix-free), so the answer matches a
  /// fresh dense solve to ~1e-12 while costing only a few iterations.
  ///
  /// The cache makes this method non-reentrant: a PdnGrid instance must
  /// not be solved from two threads at once (parallel sweeps give each
  /// task its own grid).
  [[nodiscard]] PdnSolution solve(
      std::span<const double> load_amps,
      std::span<const double> segment_resistance) const;

  /// Reference solver: assembles and dense-solves (LU) from scratch, no
  /// cache — the agreement baseline the sparse engine is tested against.
  [[nodiscard]] PdnSolution solve_uncached(
      std::span<const double> load_amps,
      std::span<const double> segment_resistance) const;

  /// Engine the cached solver is using (or will use: derived from the
  /// grid structure before the first solve). kDenseLu means the sparse
  /// factorization broke down and the guard tests should fail.
  [[nodiscard]] math::sparse::SpdMethod solver_method() const;

  /// Counters for the cached solver (how often it actually refactorized).
  [[nodiscard]] const PdnSolveStats& solve_stats() const {
    return solve_stats_;
  }

  /// Current density in a segment carrying `current`.
  [[nodiscard]] AmpsPerM2 current_density(double current_a) const;

  /// Checkpoint support for the cached-factor state. The solve path a
  /// call takes (fresh factorization vs stale-factor drift CG) depends on
  /// which resistances the cached factor was built from, and the two
  /// paths agree only to ~1e-12 — so bit-identical resume requires
  /// rebuilding the factor from the *saved* resistances, not the current
  /// ones. load_cache does that, then restores the solve counters so
  /// summaries match an uninterrupted run.
  void save_cache(ckpt::Serializer& s) const;
  void load_cache(ckpt::Deserializer& d);

  [[nodiscard]] const PdnParams& params() const { return params_; }
  [[nodiscard]] const std::vector<std::size_t>& pads() const { return pads_; }

 private:
  [[nodiscard]] math::Matrix assemble_conductance(
      std::span<const double> segment_resistance) const;
  [[nodiscard]] math::sparse::CsrMatrix assemble_conductance_csr(
      std::span<const double> segment_resistance) const;
  [[nodiscard]] std::vector<double> assemble_rhs(
      std::span<const double> load_amps) const;
  /// y = G(segment_resistance) * x without forming the matrix.
  void apply_conductance(std::span<const double> segment_resistance,
                         std::span<const double> x,
                         std::vector<double>& y) const;
  [[nodiscard]] PdnSolution finish_solution(
      std::vector<double> node_voltage,
      std::span<const double> segment_resistance) const;
  void refactorize(std::span<const double> segment_resistance) const;

  PdnParams params_;
  std::vector<Segment> segments_;
  std::vector<std::size_t> pads_;
  // Cached-solver state (logically const: an acceleration structure).
  mutable std::unique_ptr<math::sparse::SpdSolver> solver_;
  mutable std::vector<double> solver_segment_r_;  // r when factorized
  mutable PdnSolveStats solve_stats_;
};

}  // namespace dh::pdn
