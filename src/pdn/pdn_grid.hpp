// On-chip power-delivery-network model: a resistor mesh for the local
// VDD grid fed from pad/global-network connections, solved for IR drop
// and per-segment current density. This is the substrate the paper's EM
// story lives on: "EM is especially critical for power delivery networks"
// — local grids built in thin lower metals carry high unidirectional DC
// current density, while the global top-metal grid is wide, thick, and
// comparatively immortal (Fig. 11).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/math/linalg.hpp"
#include "common/units.hpp"
#include "em/wire.hpp"

namespace dh::pdn {

struct PdnParams {
  std::size_t rows = 8;
  std::size_t cols = 8;
  /// Local-layer segment between adjacent grid nodes.
  em::WireGeometry segment_wire{
      .length = Meters{200e-6},
      .width = Meters{0.5e-6},
      .thickness = Meters{0.2e-6},
      .resistivity_ref = 2.2e-8,
      .reference_temperature = Celsius{20.0},
      .tcr_per_k = 3.93e-3,
      .liner_ohm_per_m = 2.5e8,
  };
  Volts vdd{1.0};
  /// Resistance from each pad node up through the global grid and bump.
  Ohms pad_resistance{0.05};
  /// Pad nodes; empty = the four corners.
  std::vector<std::size_t> pad_nodes;
};

struct PdnSolution {
  std::vector<double> node_voltage;
  std::vector<double> segment_current;  // signed, node a -> node b
  double worst_drop_v = 0.0;
  std::size_t worst_node = 0;
};

class PdnGrid {
 public:
  explicit PdnGrid(PdnParams params);

  [[nodiscard]] std::size_t node_count() const {
    return params_.rows * params_.cols;
  }
  [[nodiscard]] std::size_t node_index(std::size_t row, std::size_t col) const;

  struct Segment {
    std::size_t a, b;
  };
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const Segment& segment(std::size_t i) const;

  /// Fresh per-segment resistances at temperature t.
  [[nodiscard]] std::vector<double> fresh_segment_resistances(
      Celsius t) const;

  /// Solve the mesh: `load_amps` is the current drawn at each node;
  /// `segment_resistance` allows aged overrides (same order as segments).
  [[nodiscard]] PdnSolution solve(
      std::span<const double> load_amps,
      std::span<const double> segment_resistance) const;

  /// Current density in a segment carrying `current`.
  [[nodiscard]] AmpsPerM2 current_density(double current_a) const;

  [[nodiscard]] const PdnParams& params() const { return params_; }
  [[nodiscard]] const std::vector<std::size_t>& pads() const { return pads_; }

 private:
  PdnParams params_;
  std::vector<Segment> segments_;
  std::vector<std::size_t> pads_;
};

}  // namespace dh::pdn
