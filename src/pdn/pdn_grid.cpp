#include "pdn/pdn_grid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dh::pdn {

PdnGrid::PdnGrid(PdnParams params) : params_(std::move(params)) {
  DH_REQUIRE(params_.rows >= 2 && params_.cols >= 2,
             "PDN grid needs at least 2x2 nodes");
  for (std::size_t r = 0; r < params_.rows; ++r) {
    for (std::size_t c = 0; c < params_.cols; ++c) {
      const std::size_t i = r * params_.cols + c;
      if (c + 1 < params_.cols) segments_.push_back({i, i + 1});
      if (r + 1 < params_.rows) segments_.push_back({i, i + params_.cols});
    }
  }
  if (params_.pad_nodes.empty()) {
    pads_ = {node_index(0, 0), node_index(0, params_.cols - 1),
             node_index(params_.rows - 1, 0),
             node_index(params_.rows - 1, params_.cols - 1)};
  } else {
    pads_ = params_.pad_nodes;
    for (const std::size_t p : pads_) {
      DH_REQUIRE(p < node_count(), "pad node out of range");
    }
  }
}

std::size_t PdnGrid::node_index(std::size_t row, std::size_t col) const {
  DH_REQUIRE(row < params_.rows && col < params_.cols,
             "node coordinates out of range");
  return row * params_.cols + col;
}

const PdnGrid::Segment& PdnGrid::segment(std::size_t i) const {
  DH_REQUIRE(i < segments_.size(), "segment index out of range");
  return segments_[i];
}

std::vector<double> PdnGrid::fresh_segment_resistances(Celsius t) const {
  const double r = params_.segment_wire.resistance_at(to_kelvin(t)).value();
  return std::vector<double>(segments_.size(), r);
}

PdnSolution PdnGrid::solve(std::span<const double> load_amps,
                           std::span<const double> segment_resistance) const {
  const std::size_t n = node_count();
  DH_REQUIRE(load_amps.size() == n, "load vector size mismatch");
  DH_REQUIRE(segment_resistance.size() == segments_.size(),
             "segment resistance vector size mismatch");
  math::Matrix g(n, n, 0.0);
  std::vector<double> rhs(n, 0.0);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    DH_REQUIRE(segment_resistance[s] > 0.0,
               "segment resistance must be positive");
    const double cond = 1.0 / segment_resistance[s];
    const auto [a, b] = segments_[s];
    g(a, a) += cond;
    g(b, b) += cond;
    g(a, b) -= cond;
    g(b, a) -= cond;
  }
  const double g_pad = 1.0 / params_.pad_resistance.value();
  for (const std::size_t p : pads_) {
    g(p, p) += g_pad;
    rhs[p] += g_pad * params_.vdd.value();
  }
  for (std::size_t i = 0; i < n; ++i) rhs[i] -= load_amps[i];

  PdnSolution sol;
  sol.node_voltage = math::solve_dense(g, rhs);
  sol.segment_current.resize(segments_.size());
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto [a, b] = segments_[s];
    sol.segment_current[s] =
        (sol.node_voltage[a] - sol.node_voltage[b]) / segment_resistance[s];
  }
  sol.worst_drop_v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double drop = params_.vdd.value() - sol.node_voltage[i];
    if (drop > sol.worst_drop_v) {
      sol.worst_drop_v = drop;
      sol.worst_node = i;
    }
  }
  return sol;
}

AmpsPerM2 PdnGrid::current_density(double current_a) const {
  return AmpsPerM2{current_a / params_.segment_wire.cross_section_m2()};
}

}  // namespace dh::pdn
