#include "pdn/pdn_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/profile.hpp"

namespace dh::pdn {

namespace {

// Registry view of the cached-solver behavior, aggregated across every
// PdnGrid instance in the process (per-instance numbers stay available
// via PdnGrid::solve_stats).
struct PdnMetrics {
  obs::Counter& solves = obs::registry().counter("pdn.solve.calls");
  obs::Counter& cache_hits = obs::registry().counter("pdn.solve.cache_hits");
  obs::Counter& factorizations =
      obs::registry().counter("pdn.solve.factorizations");
  obs::Counter& refinement_iterations =
      obs::registry().counter("pdn.solve.refinement_iterations");
  obs::Counter& fallback_refactorizations =
      obs::registry().counter("pdn.solve.fallback_refactorizations");
  obs::Counter& cg_iterations =
      obs::registry().counter("pdn.solve.cg_iterations");
};

PdnMetrics& pdn_metrics() {
  static PdnMetrics* m = new PdnMetrics();
  return *m;
}

}  // namespace

PdnGrid::PdnGrid(PdnParams params) : params_(std::move(params)) {
  DH_REQUIRE(params_.rows >= 2 && params_.cols >= 2,
             "PDN grid needs at least 2x2 nodes");
  DH_REQUIRE(params_.vdd.value() > 0.0, "PDN VDD must be positive");
  DH_REQUIRE(params_.pad_resistance.value() > 0.0,
             "pad resistance must be positive");
  DH_REQUIRE(params_.refactor_tolerance >= 0.0,
             "refactor tolerance must be non-negative");
  for (std::size_t r = 0; r < params_.rows; ++r) {
    for (std::size_t c = 0; c < params_.cols; ++c) {
      const std::size_t i = r * params_.cols + c;
      if (c + 1 < params_.cols) segments_.push_back({i, i + 1});
      if (r + 1 < params_.rows) segments_.push_back({i, i + params_.cols});
    }
  }
  if (params_.pad_nodes.empty()) {
    pads_ = {node_index(0, 0), node_index(0, params_.cols - 1),
             node_index(params_.rows - 1, 0),
             node_index(params_.rows - 1, params_.cols - 1)};
  } else {
    pads_ = params_.pad_nodes;
    for (const std::size_t p : pads_) {
      DH_REQUIRE(p < node_count(), "pad node out of range");
    }
  }
  // Without at least one pad the conductance matrix has no path to VDD
  // and is exactly singular — fail here with a clear message instead of
  // letting the LU solver hit a zero pivot mid-simulation.
  DH_REQUIRE(!pads_.empty(), "PDN needs at least one pad node");
}

std::size_t PdnGrid::node_index(std::size_t row, std::size_t col) const {
  DH_REQUIRE(row < params_.rows && col < params_.cols,
             "node coordinates out of range");
  return row * params_.cols + col;
}

const PdnGrid::Segment& PdnGrid::segment(std::size_t i) const {
  DH_REQUIRE(i < segments_.size(), "segment index out of range");
  return segments_[i];
}

std::vector<double> PdnGrid::fresh_segment_resistances(Celsius t) const {
  const double r = params_.segment_wire.resistance_at(to_kelvin(t)).value();
  return std::vector<double>(segments_.size(), r);
}

math::Matrix PdnGrid::assemble_conductance(
    std::span<const double> segment_resistance) const {
  const std::size_t n = node_count();
  math::Matrix g(n, n, 0.0);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const double cond = 1.0 / segment_resistance[s];
    const auto [a, b] = segments_[s];
    g(a, a) += cond;
    g(b, b) += cond;
    g(a, b) -= cond;
    g(b, a) -= cond;
  }
  const double g_pad = 1.0 / params_.pad_resistance.value();
  for (const std::size_t p : pads_) {
    g(p, p) += g_pad;
  }
  return g;
}

std::vector<double> PdnGrid::assemble_rhs(
    std::span<const double> load_amps) const {
  const std::size_t n = node_count();
  std::vector<double> rhs(n, 0.0);
  const double g_pad = 1.0 / params_.pad_resistance.value();
  for (const std::size_t p : pads_) {
    rhs[p] += g_pad * params_.vdd.value();
  }
  for (std::size_t i = 0; i < n; ++i) rhs[i] -= load_amps[i];
  return rhs;
}

math::sparse::CsrMatrix PdnGrid::assemble_conductance_csr(
    std::span<const double> segment_resistance) const {
  // 5-point stencil: diagonal + up to 4 mesh neighbours per node.
  math::sparse::CsrBuilder builder(node_count(), node_count(), 5);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    builder.add_edge(segments_[s].a, segments_[s].b,
                     1.0 / segment_resistance[s]);
  }
  const double g_pad = 1.0 / params_.pad_resistance.value();
  for (const std::size_t p : pads_) builder.add_diagonal(p, g_pad);
  return builder.build();
}

void PdnGrid::apply_conductance(std::span<const double> segment_resistance,
                                std::span<const double> x,
                                std::vector<double>& y) const {
  y.assign(node_count(), 0.0);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto [a, b] = segments_[s];
    const double flow = (x[a] - x[b]) / segment_resistance[s];
    y[a] += flow;
    y[b] -= flow;
  }
  const double g_pad = 1.0 / params_.pad_resistance.value();
  for (const std::size_t p : pads_) y[p] += g_pad * x[p];
}

PdnSolution PdnGrid::finish_solution(
    std::vector<double> node_voltage,
    std::span<const double> segment_resistance) const {
  PdnSolution sol;
  sol.node_voltage = std::move(node_voltage);
  sol.segment_current.resize(segments_.size());
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto [a, b] = segments_[s];
    sol.segment_current[s] =
        (sol.node_voltage[a] - sol.node_voltage[b]) / segment_resistance[s];
  }
  sol.worst_drop_v = 0.0;
  for (std::size_t i = 0; i < sol.node_voltage.size(); ++i) {
    const double drop = params_.vdd.value() - sol.node_voltage[i];
    if (drop > sol.worst_drop_v) {
      sol.worst_drop_v = drop;
      sol.worst_node = i;
    }
  }
  return sol;
}

void PdnGrid::refactorize(
    std::span<const double> segment_resistance) const {
  DH_PROF_SCOPE("pdn.refactorize");
  solver_ = std::make_unique<math::sparse::SpdSolver>(
      assemble_conductance_csr(segment_resistance), params_.solver);
  solver_segment_r_.assign(segment_resistance.begin(),
                           segment_resistance.end());
  ++solve_stats_.factorizations;
  pdn_metrics().factorizations.add();
}

math::sparse::SpdMethod PdnGrid::solver_method() const {
  if (solver_ != nullptr) return solver_->method();
  // Mesh bandwidth: node i couples to i+1 and i+cols.
  return math::sparse::SpdSolver::planned_method(
      node_count(), params_.cols, params_.solver);
}

PdnSolution PdnGrid::solve(std::span<const double> load_amps,
                           std::span<const double> segment_resistance) const {
  // No wall-time scope here: solve sits on the per-quantum hot path and a
  // timer would cost two clock reads per call. Counts come from the
  // registry counters; timing lives on the rare refactorize path.
  const std::size_t n = node_count();
  DH_REQUIRE(load_amps.size() == n, "load vector size mismatch");
  DH_REQUIRE(segment_resistance.size() == segments_.size(),
             "segment resistance vector size mismatch");
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    DH_REQUIRE(segment_resistance[s] > 0.0,
               "segment resistance must be positive");
  }
  ++solve_stats_.solves;
  pdn_metrics().solves.add();

  bool exact = solver_ != nullptr;
  bool refactor = solver_ == nullptr;
  if (!refactor) {
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const double drift =
          std::abs(segment_resistance[s] - solver_segment_r_[s]);
      if (drift > params_.refactor_tolerance * solver_segment_r_[s]) {
        refactor = true;
        break;
      }
      if (drift != 0.0) exact = false;
    }
  }
  if (refactor) {
    refactorize(segment_resistance);
    exact = true;
  } else {
    pdn_metrics().cache_hits.add();
  }

  const std::vector<double> rhs = assemble_rhs(load_amps);
  std::vector<double> v;
  math::sparse::SpdSolveInfo info;
  if (exact) {
    v = solver_->solve(rhs, &info);
  } else {
    // The factor describes slightly stale conductances; run CG against
    // the *true* operator (matrix-free) preconditioned by the stale
    // factor. Drift <= tolerance keeps the preconditioned system within
    // a few percent of the identity, so a handful of iterations recover
    // full accuracy — the sparse analogue of stale-LU refinement.
    const bool converged = solver_->solve_drifted(
        [&](std::span<const double> x, std::vector<double>& y) {
          apply_conductance(segment_resistance, x, y);
        },
        rhs, v, &info);
    solve_stats_.refinement_iterations += info.cg_iterations;
    pdn_metrics().refinement_iterations.add(info.cg_iterations);
    if (!converged) {
      // Drift within tolerance but CG stalled (e.g. resistance jump
      // exactly at the threshold): fall back to a fresh factorization.
      pdn_metrics().fallback_refactorizations.add();
      refactorize(segment_resistance);
      solve_stats_.cg_iterations += info.cg_iterations;
      pdn_metrics().cg_iterations.add(info.cg_iterations);
      v = solver_->solve(rhs, &info);
    }
  }
  solve_stats_.cg_iterations += info.cg_iterations;
  pdn_metrics().cg_iterations.add(info.cg_iterations);
  return finish_solution(std::move(v), segment_resistance);
}

PdnSolution PdnGrid::solve_uncached(
    std::span<const double> load_amps,
    std::span<const double> segment_resistance) const {
  const std::size_t n = node_count();
  DH_REQUIRE(load_amps.size() == n, "load vector size mismatch");
  DH_REQUIRE(segment_resistance.size() == segments_.size(),
             "segment resistance vector size mismatch");
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    DH_REQUIRE(segment_resistance[s] > 0.0,
               "segment resistance must be positive");
  }
  const math::Matrix g = assemble_conductance(segment_resistance);
  return finish_solution(math::solve_dense(g, assemble_rhs(load_amps)),
                         segment_resistance);
}

AmpsPerM2 PdnGrid::current_density(double current_a) const {
  return AmpsPerM2{current_a / params_.segment_wire.cross_section_m2()};
}

void PdnGrid::save_cache(ckpt::Serializer& s) const {
  s.begin_section("PDNC");
  s.write_bool(solver_ != nullptr);
  if (solver_ != nullptr) {
    s.write_f64_vec(solver_segment_r_);
    s.write_bool(solver_->cg_rescue_built());
  }
  s.write_u64(solve_stats_.solves);
  s.write_u64(solve_stats_.factorizations);
  s.write_u64(solve_stats_.refinement_iterations);
  s.write_u64(solve_stats_.cg_iterations);
}

void PdnGrid::load_cache(ckpt::Deserializer& d) {
  d.expect_section("PDNC");
  if (d.read_bool()) {
    const std::vector<double> r = d.read_f64_vec();
    DH_REQUIRE(r.size() == segments_.size(),
               "PDN snapshot cached-factor resistances do not match this "
               "grid's segment count");
    refactorize(r);
    if (d.read_bool()) solver_->build_cg_rescue();
  } else {
    solver_.reset();
    solver_segment_r_.clear();
  }
  solve_stats_.solves = static_cast<std::size_t>(d.read_u64());
  solve_stats_.factorizations = static_cast<std::size_t>(d.read_u64());
  solve_stats_.refinement_iterations =
      static_cast<std::size_t>(d.read_u64());
  solve_stats_.cg_iterations = static_cast<std::size_t>(d.read_u64());
}

}  // namespace dh::pdn
