#include "pdn/aging_pdn.hpp"

#include <algorithm>
#include <cmath>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"

namespace dh::pdn {

AgingPdn::AgingPdn(PdnParams pdn_params, em::EmMaterialParams material)
    : grid_(std::move(pdn_params)), material_(material) {
  const auto& wire = grid_.params().segment_wire;
  segment_em_.reserve(grid_.segment_count());
  for (std::size_t s = 0; s < grid_.segment_count(); ++s) {
    em::CompactEmParams p;
    p.wire = wire;
    p.material = material_;
    // Reference the pool kinetics to a hot high-load condition so the
    // Prony time constants straddle the lifetime-relevant range.
    p.j_ref = mega_amps_per_cm2(4.0);
    p.t_ref = Celsius{105.0};
    segment_em_.emplace_back(p);
  }
  segment_r_ = grid_.fresh_segment_resistances(Celsius{20.0});
  immortal_.assign(grid_.segment_count(), false);
}

void AgingPdn::step(std::span<const double> load_amps, Celsius temperature,
                    Seconds dt, bool em_recovery_mode) {
  last_temp_ = temperature;
  // Refresh aged resistances at this temperature.
  for (std::size_t s = 0; s < grid_.segment_count(); ++s) {
    segment_r_[s] = segment_em_[s]
                        .resistance(temperature)
                        .value();
  }
  last_ = grid_.solve(load_amps, segment_r_);

  const double rho =
      grid_.params().segment_wire.resistivity_at(to_kelvin(temperature));
  const double blech_crit = material_.blech_threshold(rho);
  const double seg_len = grid_.params().segment_wire.length.value();

  std::size_t stepped = 0;
  for (std::size_t s = 0; s < grid_.segment_count(); ++s) {
    double current = last_.segment_current[s];
    if (em_recovery_mode) current = -current;
    const AmpsPerM2 j = grid_.current_density(current);
    // Blech immortality filter (physical, and saves work).
    const double blech = std::abs(j.value()) * seg_len;
    immortal_[s] = blech < blech_crit;
    if (immortal_[s] && !segment_em_[s].void_open()) continue;
    segment_em_[s].step(j, temperature, dt);
    ++stepped;
  }
  // Batched so the per-segment loop stays free of telemetry ops: one add
  // per grid step records exactly how many compact-EM evaluations ran.
  static obs::Counter& evals = obs::registry().counter("em.compact.evals");
  evals.add(stepped);
  elapsed_s_ += dt.value();
}

const em::CompactEm& AgingPdn::segment_state(std::size_t i) const {
  DH_REQUIRE(i < segment_em_.size(), "segment index out of range");
  return segment_em_[i];
}

AgingPdnStats AgingPdn::stats() const {
  AgingPdnStats st;
  st.worst_drop_v = last_.worst_drop_v;
  st.solver_factorizations = grid_.solve_stats().factorizations;
  st.solver_cg_iterations = grid_.solve_stats().cg_iterations;
  for (std::size_t s = 0; s < segment_em_.size(); ++s) {
    const auto& em = segment_em_[s];
    st.max_void_len_m = std::max(st.max_void_len_m, em.void_length().value());
    if (em.void_open() || em.void_length().value() > 0.0) {
      ++st.nucleated_segments;
    }
    if (em.broken()) ++st.broken_segments;
    if (immortal_[s]) ++st.immortal_segments;
  }
  return st;
}

bool AgingPdn::failed(double drop_limit_fraction) const {
  if (last_.node_voltage.empty()) return false;
  const auto st = stats();
  if (st.broken_segments > 0) return true;
  return last_.worst_drop_v >
         drop_limit_fraction * grid_.params().vdd.value();
}

void AgingPdn::save_state(ckpt::Serializer& s) const {
  s.begin_section("APDN");
  s.write_u64(segment_em_.size());
  for (const auto& em : segment_em_) em.save_state(s);
  s.write_f64_vec(segment_r_);
  s.write_bool_vec(immortal_);
  s.write_f64_vec(last_.node_voltage);
  s.write_f64_vec(last_.segment_current);
  s.write_f64(last_.worst_drop_v);
  s.write_u64(last_.worst_node);
  s.write_f64(last_temp_.value());
  s.write_f64(elapsed_s_);
  grid_.save_cache(s);
}

void AgingPdn::load_state(ckpt::Deserializer& d) {
  d.expect_section("APDN");
  const std::uint64_t count = d.read_u64();
  DH_REQUIRE(count == segment_em_.size(),
             "PDN snapshot segment count does not match this grid");
  for (auto& em : segment_em_) em.load_state(d);
  segment_r_ = d.read_f64_vec();
  immortal_ = d.read_bool_vec();
  DH_REQUIRE(segment_r_.size() == segment_em_.size() &&
                 immortal_.size() == segment_em_.size(),
             "PDN snapshot per-segment vectors do not match this grid");
  last_.node_voltage = d.read_f64_vec();
  last_.segment_current = d.read_f64_vec();
  last_.worst_drop_v = d.read_f64();
  last_.worst_node = static_cast<std::size_t>(d.read_u64());
  last_temp_ = Celsius{d.read_f64()};
  elapsed_s_ = d.read_f64();
  grid_.load_cache(d);
}

}  // namespace dh::pdn
