// Health monitor: fuses noisy sensor readings into a stable estimate with
// alarm hysteresis — the feedback element of the paper's Fig. 12b loop
// ("BTI/EM Sensing ... short intervals of BTI active recovery can then be
// inserted").
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace dh::sensors {

struct HealthMonitorParams {
  /// Exponential smoothing factor per reading in (0, 1]; 1 = no memory.
  double ewma_alpha = 0.25;
  /// Alarm trips when the smoothed estimate crosses `trip`, clears below
  /// `clear` (hysteresis so sensor noise cannot chatter the scheduler).
  double trip = 0.010;
  double clear = 0.004;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorParams params);

  /// Feed one raw reading (e.g. sensed dVth in volts, or EM life
  /// fraction); returns the smoothed estimate.
  double update(double reading);

  [[nodiscard]] double estimate() const { return estimate_; }
  [[nodiscard]] bool alarm() const { return alarm_; }
  [[nodiscard]] std::size_t readings() const { return readings_; }

  void reset();

 private:
  HealthMonitorParams params_;
  double estimate_ = 0.0;
  bool alarm_ = false;
  std::size_t readings_ = 0;
};

}  // namespace dh::sensors
