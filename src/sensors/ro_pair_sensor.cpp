#include "sensors/ro_pair_sensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dh::sensors {

RoPairSensor::RoPairSensor(RoPairSensorParams params, Rng rng)
    : params_(params),
      ro_(params.ro),
      stressed_(params.bti),
      reference_(params.bti),
      rng_(rng) {
  DH_REQUIRE(params_.gate_time.value() > 0.0,
             "counter gate time must be positive");
}

void RoPairSensor::step(double stress_duty, Volts supply_bias,
                        Celsius temperature, Seconds dt) {
  DH_REQUIRE(stress_duty >= 0.0 && stress_duty <= 1.0,
             "stress duty must be in [0,1]");
  const Seconds on{dt.value() * stress_duty};
  const Seconds off{dt.value() * (1.0 - stress_duty)};
  if (on.value() > 0.0) {
    stressed_.apply({supply_bias, temperature}, on);
  }
  if (off.value() > 0.0) {
    stressed_.apply({Volts{0.0}, temperature}, off);
  }
  // The reference RO spends the whole quantum in active recovery, so it
  // stays effectively fresh for the sensor's lifetime.
  reference_.apply({params_.recovery_bias, temperature}, dt);
}

double RoPairSensor::quantized_frequency(const device::CompactBti& dev) {
  const double truth = ro_.frequency(dev.delta_vth()).value();
  const double noisy =
      truth * (1.0 + rng_.normal(0.0, params_.relative_noise));
  const double resolution = 1.0 / params_.gate_time.value();
  return std::round(noisy / resolution) * resolution;
}

Volts RoPairSensor::measure() {
  const double f_stressed = quantized_frequency(stressed_);
  const double f_reference = quantized_frequency(reference_);
  // Invert the differential readout through the RO model: the reference
  // defines "fresh" even if the absolute frequency drifted.
  const double scale =
      ro_.params().fresh_frequency.value() / std::max(f_reference, 1.0);
  return ro_.infer_delta_vth(Hertz{f_stressed * scale});
}

Volts RoPairSensor::true_dvth() const {
  return stressed_.delta_vth() - reference_.delta_vth();
}

}  // namespace dh::sensors
