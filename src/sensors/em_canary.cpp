#include "sensors/em_canary.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"

namespace dh::sensors {

EmCanaryBank::EmCanaryBank(EmCanaryParams params)
    : params_(std::move(params)) {
  DH_REQUIRE(!params_.width_scales.empty(), "canary bank cannot be empty");
  DH_REQUIRE(std::is_sorted(params_.width_scales.begin(),
                            params_.width_scales.end()),
             "width scales must be ascending (narrowest canary first)");
  for (const double w : params_.width_scales) {
    DH_REQUIRE(w > 0.0 && w <= 1.0,
               "canary width scale must be in (0, 1]");
    em::CompactEmParams p;
    p.wire = params_.mission_wire;
    p.wire.width = Meters{params_.mission_wire.width.value() * w};
    p.material = params_.material;
    canaries_.emplace_back(p);
  }
}

void EmCanaryBank::step(AmpsPerM2 mission_density, Celsius temperature,
                        Seconds dt) {
  const std::size_t tripped_before = tripped();
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    // Same current forced through the narrower cross-section.
    const double scale = 1.0 / params_.width_scales[i];
    canaries_[i].step(AmpsPerM2{mission_density.value() * scale},
                      temperature, dt);
  }
  static obs::Counter& steps =
      obs::registry().counter("sensors.canary.steps");
  steps.add();
  const std::size_t tripped_now = tripped();
  static obs::Gauge& tripped_gauge =
      obs::registry().gauge("sensors.canary.tripped");
  tripped_gauge.set(static_cast<double>(tripped_now));
  if (tripped_now > tripped_before && obs::trace_enabled()) {
    obs::trace_event(
        "sensors", "canary_trip",
        {{"tripped", static_cast<double>(tripped_now)},
         {"bank_size", static_cast<double>(canaries_.size())},
         {"life_consumed", estimated_life_consumed()}});
  }
}

std::size_t EmCanaryBank::tripped() const {
  std::size_t n = 0;
  for (const auto& c : canaries_) {
    if (c.void_open() || c.broken() || c.void_length().value() > 0.0) ++n;
  }
  return n;
}

double EmCanaryBank::estimated_life_consumed() const {
  // The widest *tripped* canary bounds life-consumed from below; the
  // narrowest *untripped* canary bounds it from above. Report the
  // midpoint of the bracket.
  double lower = 0.0;
  double upper = 1.0;
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    const double frac =
        params_.width_scales[i] * params_.width_scales[i];
    const bool hit = canaries_[i].void_open() || canaries_[i].broken() ||
                     canaries_[i].void_length().value() > 0.0;
    if (hit) {
      lower = std::max(lower, frac);
    } else {
      upper = std::min(upper, frac);
    }
  }
  if (upper < lower) upper = lower;
  return 0.5 * (lower + upper);
}

const em::CompactEm& EmCanaryBank::canary(std::size_t i) const {
  DH_REQUIRE(i < canaries_.size(), "canary index out of range");
  return canaries_[i];
}

}  // namespace dh::sensors
