#include "sensors/health_monitor.hpp"

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"

namespace dh::sensors {

HealthMonitor::HealthMonitor(HealthMonitorParams params) : params_(params) {
  DH_REQUIRE(params_.ewma_alpha > 0.0 && params_.ewma_alpha <= 1.0,
             "EWMA alpha must be in (0,1]");
  DH_REQUIRE(params_.clear < params_.trip,
             "hysteresis requires clear < trip");
}

double HealthMonitor::update(double reading) {
  if (readings_ == 0) {
    estimate_ = reading;
  } else {
    estimate_ = params_.ewma_alpha * reading +
                (1.0 - params_.ewma_alpha) * estimate_;
  }
  ++readings_;
  const bool was_alarm = alarm_;
  if (!alarm_ && estimate_ >= params_.trip) {
    alarm_ = true;
  } else if (alarm_ && estimate_ <= params_.clear) {
    alarm_ = false;
  }
  static obs::Counter& readings =
      obs::registry().counter("sensors.health.readings");
  readings.add();
  static obs::Gauge& estimate =
      obs::registry().gauge("sensors.health.estimate", "V");
  estimate.set(estimate_);
  if (alarm_ != was_alarm) {
    static obs::Counter& transitions =
        obs::registry().counter("sensors.health.alarm_transitions");
    transitions.add();
    if (obs::trace_enabled()) {
      obs::trace_event("sensors", alarm_ ? "alarm_trip" : "alarm_clear",
                       {{"estimate", estimate_},
                        {"reading", reading},
                        {"threshold", alarm_ ? params_.trip
                                             : params_.clear}});
    }
  }
  return estimate_;
}

void HealthMonitor::reset() {
  estimate_ = 0.0;
  alarm_ = false;
  readings_ = 0;
}

}  // namespace dh::sensors
