// Ring-oscillator-pair BTI sensor.
//
// The paper's run-time scheduling (Fig. 12b) needs on-chip wearout
// tracking: "novel BTI and EM sensors can be employed to track wearout
// and feed back the run-time degradation information". The standard BTI
// sensor is a pair of matched ring oscillators: one *stressed* alongside
// the logic it shadows, one *reference* kept in recovery/power-gated so it
// stays fresh. The beat between their frequencies cancels common-mode
// variation (temperature, supply) and reads out the Vth shift directly.
#pragma once

#include "common/rng.hpp"
#include "device/bti_model.hpp"
#include "device/compact_bti.hpp"
#include "device/ring_oscillator.hpp"

namespace dh::sensors {

struct RoPairSensorParams {
  device::RingOscillatorParams ro{};
  device::CompactBtiParams bti{};
  Seconds gate_time{0.01};        // counter gate (quantization)
  double relative_noise = 1e-4;   // residual mismatch noise
  Volts recovery_bias{-0.3};      // reference RO healing bias
};

class RoPairSensor {
 public:
  RoPairSensor(RoPairSensorParams params, Rng rng);

  /// Age the sensor alongside the logic it shadows: the stressed RO sees
  /// the logic's duty, the reference RO spends the quantum healing.
  void step(double stress_duty, Volts supply_bias, Celsius temperature,
            Seconds dt);

  /// One differential measurement: apparent Vth shift of the stressed RO
  /// relative to the reference.
  [[nodiscard]] Volts measure();

  /// Ground truth (for tests/benches).
  [[nodiscard]] Volts true_dvth() const;

 private:
  RoPairSensorParams params_;
  device::RingOscillator ro_;
  device::CompactBti stressed_;
  device::CompactBti reference_;
  Rng rng_;

  [[nodiscard]] double quantized_frequency(const device::CompactBti& dev);
};

}  // namespace dh::sensors
