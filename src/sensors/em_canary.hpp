// EM canary sensors: sacrificial wires drawn narrower than the mission
// rails so they see a proportionally higher current density and nucleate
// first — a standard early-warning structure. A bank of canaries at
// graded widths gives a coarse "remaining life" gauge that the recovery
// scheduler can act on *before* the real grid is in danger (schedule EM
// recovery "even earlier" than nucleation, as the paper recommends).
#pragma once

#include <vector>

#include "em/compact_em.hpp"

namespace dh::sensors {

struct EmCanaryParams {
  em::WireGeometry mission_wire{};          // the rail being protected
  em::EmMaterialParams material{};
  /// Width scale factors of the canary set, narrowest first (< 1 means
  /// the canary carries a higher current density than the rail).
  std::vector<double> width_scales{0.5, 0.65, 0.8};
};

class EmCanaryBank {
 public:
  explicit EmCanaryBank(EmCanaryParams params);

  /// Age the bank: the canaries share the rail's current (same absolute
  /// current, narrower cross-section -> scaled density).
  void step(AmpsPerM2 mission_density, Celsius temperature, Seconds dt);

  /// How many canaries have nucleated (0 = healthy ... all = act now).
  [[nodiscard]] std::size_t tripped() const;
  [[nodiscard]] std::size_t size() const { return canaries_.size(); }

  /// Estimated fraction of the mission wire's nucleation life consumed,
  /// inferred from which canaries have tripped: the k-th canary trips at
  /// roughly (w_k)^2 of the mission life (density scales 1/w, nucleation
  /// time scales 1/j^2).
  [[nodiscard]] double estimated_life_consumed() const;

  [[nodiscard]] const em::CompactEm& canary(std::size_t i) const;

 private:
  EmCanaryParams params_;
  std::vector<em::CompactEm> canaries_;
};

}  // namespace dh::sensors
