#include "logic/logic_netlist.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dh::logic {

const char* to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
      return "IN";
    case GateKind::kBuf:
      return "BUF";
    case GateKind::kInv:
      return "INV";
    case GateKind::kNand2:
      return "NAND2";
    case GateKind::kNor2:
      return "NOR2";
    case GateKind::kAnd2:
      return "AND2";
    case GateKind::kOr2:
      return "OR2";
  }
  return "?";
}

namespace {

bool is_two_input(GateKind k) {
  return k == GateKind::kNand2 || k == GateKind::kNor2 ||
         k == GateKind::kAnd2 || k == GateKind::kOr2;
}

double propagate_p(GateKind k, double pa, double pb) {
  switch (k) {
    case GateKind::kBuf:
      return pa;
    case GateKind::kInv:
      return 1.0 - pa;
    case GateKind::kNand2:
      return 1.0 - pa * pb;
    case GateKind::kAnd2:
      return pa * pb;
    case GateKind::kNor2:
      return (1.0 - pa) * (1.0 - pb);
    case GateKind::kOr2:
      return 1.0 - (1.0 - pa) * (1.0 - pb);
    case GateKind::kInput:
      return pa;
  }
  return pa;
}

bool eval_gate(GateKind k, bool a, bool b) {
  switch (k) {
    case GateKind::kBuf:
      return a;
    case GateKind::kInv:
      return !a;
    case GateKind::kNand2:
      return !(a && b);
    case GateKind::kAnd2:
      return a && b;
    case GateKind::kNor2:
      return !(a || b);
    case GateKind::kOr2:
      return a || b;
    case GateKind::kInput:
      return a;
  }
  return a;
}

}  // namespace

LogicNetlist::LogicNetlist(GateParams params) : params_(params) {
  DH_REQUIRE(params_.vdd.value() > params_.vth,
             "supply must exceed the threshold");
}

GateId LogicNetlist::add_input(std::string name, double p_one) {
  DH_REQUIRE(p_one >= 0.0 && p_one <= 1.0, "p_one must be a probability");
  Gate g{GateKind::kInput, 0, 0, std::move(name), p_one,
         device::CompactBti{params_.bti}, device::CompactBti{params_.bti}};
  gates_.push_back(std::move(g));
  inputs_.push_back(gates_.size() - 1);
  return gates_.size() - 1;
}

GateId LogicNetlist::add_gate(GateKind kind, GateId a) {
  DH_REQUIRE(kind == GateKind::kBuf || kind == GateKind::kInv,
             "single-input overload is for BUF/INV");
  DH_REQUIRE(a < gates_.size(), "fanin out of range");
  gates_.push_back(Gate{kind, a, a, to_string(kind), 0.5,
                        device::CompactBti{params_.bti},
                        device::CompactBti{params_.bti}});
  return gates_.size() - 1;
}

GateId LogicNetlist::add_gate(GateKind kind, GateId a, GateId b) {
  DH_REQUIRE(is_two_input(kind), "two-input overload for 2-input gates");
  DH_REQUIRE(a < gates_.size() && b < gates_.size(), "fanin out of range");
  gates_.push_back(Gate{kind, a, b, to_string(kind), 0.5,
                        device::CompactBti{params_.bti},
                        device::CompactBti{params_.bti}});
  return gates_.size() - 1;
}

std::vector<double> LogicNetlist::signal_probabilities() const {
  std::vector<double> p(gates_.size(), 0.5);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kInput) {
      p[i] = g.p_one;
    } else {
      p[i] = propagate_p(g.kind, p[g.a], p[g.b]);
    }
  }
  return p;
}

std::vector<bool> LogicNetlist::evaluate(
    const std::vector<bool>& input_vector) const {
  DH_REQUIRE(input_vector.size() == inputs_.size(),
             "input vector size mismatch");
  std::vector<bool> v(gates_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kInput) {
      v[i] = input_vector[next_input++];
    } else {
      v[i] = eval_gate(g.kind, v[g.a], v[g.b]);
    }
  }
  return v;
}

void LogicNetlist::age(LogicMode mode, Celsius temperature, Seconds dt,
                       const std::vector<bool>& idle_vector) {
  const device::BtiCondition stress{params_.vdd, temperature};
  const device::BtiCondition rest{Volts{0.0}, temperature};
  const device::BtiCondition heal{params_.recovery_bias, temperature};

  switch (mode) {
    case LogicMode::kOperating: {
      // Duty-cycle approximation: pull-up stressed while output is 1.
      const std::vector<double> p = signal_probabilities();
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        if (gates_[i].kind == GateKind::kInput) continue;
        const Seconds up{dt.value() * p[i]};
        const Seconds down{dt.value() * (1.0 - p[i])};
        if (up.value() > 0.0) gates_[i].pull_up.apply(stress, up);
        if (down.value() > 0.0) gates_[i].pull_up.apply(rest, down);
        if (down.value() > 0.0) gates_[i].pull_down.apply(stress, down);
        if (up.value() > 0.0) gates_[i].pull_down.apply(rest, up);
      }
      break;
    }
    case LogicMode::kIdleVector: {
      const std::vector<bool> v = evaluate(idle_vector);
      for (std::size_t i = 0; i < gates_.size(); ++i) {
        if (gates_[i].kind == GateKind::kInput) continue;
        gates_[i].pull_up.apply(v[i] ? stress : rest, dt);
        gates_[i].pull_down.apply(v[i] ? rest : stress, dt);
      }
      break;
    }
    case LogicMode::kActiveRecovery: {
      for (auto& g : gates_) {
        if (g.kind == GateKind::kInput) continue;
        g.pull_up.apply(heal, dt);
        g.pull_down.apply(heal, dt);
      }
      break;
    }
  }
}

double LogicNetlist::fresh_delay_s() const {
  return params_.base_delay.value();
}

Seconds LogicNetlist::gate_delay(GateId g) const {
  DH_REQUIRE(g < gates_.size(), "gate id out of range");
  if (gates_[g].kind == GateKind::kInput) return Seconds{0.0};
  const double dvth = std::max(gates_[g].pull_up.delta_vth().value(),
                               gates_[g].pull_down.delta_vth().value());
  const double vdd = params_.vdd.value();
  const double ov0 = vdd - params_.vth;
  const double ov = ov0 - dvth;
  DH_REQUIRE(ov > 0.0, "gate no longer switches");
  return Seconds{fresh_delay_s() * std::pow(ov0 / ov, params_.alpha)};
}

Seconds LogicNetlist::critical_path_delay() const {
  std::vector<double> at(gates_.size(), 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kInput) {
      at[i] = 0.0;
      continue;
    }
    const double fanin_at = std::max(at[g.a], at[g.b]);
    at[i] = fanin_at + gate_delay(i).value();
    worst = std::max(worst, at[i]);
  }
  return Seconds{worst};
}

double LogicNetlist::delay_degradation() const {
  // Fresh critical path = depth * base delay; compute by counting levels.
  std::vector<double> depth(gates_.size(), 0.0);
  double max_depth = 0.0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kInput) continue;
    depth[i] = std::max(depth[g.a], depth[g.b]) + 1.0;
    max_depth = std::max(max_depth, depth[i]);
  }
  const double fresh = max_depth * fresh_delay_s();
  if (fresh <= 0.0) return 0.0;
  return critical_path_delay().value() / fresh - 1.0;
}

Volts LogicNetlist::worst_dvth() const {
  Volts worst{0.0};
  for (const auto& g : gates_) {
    worst = std::max({worst, g.pull_up.delta_vth(), g.pull_down.delta_vth()});
  }
  return worst;
}

std::vector<bool> LogicNetlist::best_idle_vector() const {
  DH_REQUIRE(inputs_.size() <= 20, "exhaustive vector search capped at 2^20");
  // Minimize the number of stressed networks, weighting pull-ups (NBTI,
  // the first-order effect) double.
  std::vector<bool> best(inputs_.size(), false);
  double best_cost = 1e18;
  const std::size_t n = inputs_.size();
  for (std::size_t code = 0; code < (1u << n); ++code) {
    std::vector<bool> vec(n);
    for (std::size_t b = 0; b < n; ++b) vec[b] = (code >> b) & 1u;
    const std::vector<bool> v = evaluate(vec);
    double cost = 0.0;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
      if (gates_[i].kind == GateKind::kInput) continue;
      cost += v[i] ? 2.0 : 1.0;  // out=1 stresses the pull-up (NBTI)
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = vec;
    }
  }
  return best;
}

LogicNetlist make_c17_plus(GateParams params) {
  LogicNetlist net{params};
  const GateId i1 = net.add_input("G1", 0.5);
  const GateId i2 = net.add_input("G2", 0.5);
  const GateId i3 = net.add_input("G3", 0.5);
  const GateId i4 = net.add_input("G4", 0.5);
  const GateId i5 = net.add_input("G5", 0.5);
  // ISCAS-85 c17.
  const GateId g1 = net.add_gate(GateKind::kNand2, i1, i3);
  const GateId g2 = net.add_gate(GateKind::kNand2, i3, i4);
  const GateId g3 = net.add_gate(GateKind::kNand2, i2, g2);
  const GateId g4 = net.add_gate(GateKind::kNand2, g2, i5);
  const GateId g5 = net.add_gate(GateKind::kNand2, g1, g3);
  const GateId g6 = net.add_gate(GateKind::kNand2, g3, g4);
  // Buffered output chain (adds depth — a more realistic critical path).
  GateId t = net.add_gate(GateKind::kInv, g5);
  t = net.add_gate(GateKind::kInv, t);
  t = net.add_gate(GateKind::kBuf, t);
  (void)net.add_gate(GateKind::kOr2, t, g6);
  return net;
}

}  // namespace dh::logic
