// Signal-probability-aware logic aging with static timing analysis — the
// combinational-logic counterpart of the paper's recovery story, covering
// the prior-work line it cites (Penelope [15], GNOMO [14]: rebalance
// signal probabilities / input-vector control) and the step beyond them
// (assist-circuitry *active* recovery, which needs no favourable vector).
//
// Each gate carries two compact BTI states: the pull-up network (NBTI,
// stressed while the output is high) and the pull-down network (PBTI,
// stressed while the output is low). During operation the stress duty is
// the gate's output signal probability; during idle the duty is fixed by
// the parked input vector; in active recovery mode every device sees the
// negative recovery bias.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "device/compact_bti.hpp"

namespace dh::logic {

enum class GateKind { kInput, kBuf, kInv, kNand2, kNor2, kAnd2, kOr2 };

[[nodiscard]] const char* to_string(GateKind kind);

using GateId = std::size_t;

struct GateParams {
  Volts vdd{0.9};
  double vth = 0.30;
  double alpha = 1.3;
  Seconds base_delay{20e-12};  // fresh gate delay
  Volts recovery_bias{-0.3};
  device::CompactBtiParams bti{};
};

/// What the logic block spends a time slice doing.
enum class LogicMode {
  kOperating,       // inputs toggle with their signal probabilities
  kIdleVector,      // inputs parked at a chosen vector (passive per node)
  kActiveRecovery,  // assist circuitry: every device heals
};

class LogicNetlist {
 public:
  explicit LogicNetlist(GateParams params = {});

  /// Primary input with the given probability of being 1 during
  /// operation.
  [[nodiscard]] GateId add_input(std::string name, double p_one);
  [[nodiscard]] GateId add_gate(GateKind kind, GateId a);  // BUF/INV
  [[nodiscard]] GateId add_gate(GateKind kind, GateId a, GateId b);

  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }

  /// Signal probability of each node under independent-input assumption.
  [[nodiscard]] std::vector<double> signal_probabilities() const;

  /// Boolean evaluation for a specific input vector.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& input_vector) const;

  /// Advance wearout for one quantum in the given mode. `idle_vector` is
  /// required for kIdleVector.
  void age(LogicMode mode, Celsius temperature, Seconds dt,
           const std::vector<bool>& idle_vector = {});

  /// Aged delay of one gate (alpha-power law on the worse of its two
  /// networks' Vth shifts).
  [[nodiscard]] Seconds gate_delay(GateId g) const;

  /// Critical-path arrival time across the netlist (topological STA).
  [[nodiscard]] Seconds critical_path_delay() const;

  /// Fractional critical-path slowdown vs. fresh.
  [[nodiscard]] double delay_degradation() const;

  /// Worst device Vth shift anywhere in the netlist.
  [[nodiscard]] Volts worst_dvth() const;

  /// Exhaustively searches input vectors (inputs <= 20) for the one
  /// minimizing total stressed-device count — the classic NBTI
  /// input-vector-control optimization.
  [[nodiscard]] std::vector<bool> best_idle_vector() const;

 private:
  struct Gate {
    GateKind kind;
    GateId a = 0, b = 0;
    std::string name;
    double p_one = 0.5;  // inputs only
    device::CompactBti pull_up;
    device::CompactBti pull_down;
  };

  [[nodiscard]] double fresh_delay_s() const;

  GateParams params_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
};

/// A representative benchmark circuit: ISCAS-style c17 (6 NAND2) plus a
/// 4-stage buffered output chain, 5 inputs.
[[nodiscard]] LogicNetlist make_c17_plus(GateParams params = {});

}  // namespace dh::logic
