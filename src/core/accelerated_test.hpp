// The paper's experimental protocols, packaged as reusable procedures.
// Benches and integration tests both run these, so the reproduction of
// each table/figure has a single source of truth.
#pragma once

#include <array>
#include <vector>

#include "common/time_series.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "em/korhonen.hpp"

namespace dh::core {

// ---- Table I -------------------------------------------------------------

struct Table1Row {
  const char* label;
  device::BtiCondition condition;
  double model_fraction;       // our model
  double measured_fraction;    // our virtual-chamber "measurement"
  double paper_model;          // the paper's model column
  double paper_measured;       // the paper's measurement column
};

/// Runs the Table I protocol (24 h accelerated stress, 6 h recovery at
/// each of the four conditions) on the calibrated BTI model, plus a
/// noisy ring-oscillator measurement of the same experiment.
[[nodiscard]] std::array<Table1Row, 4> run_table1(std::uint64_t seed = 7);

// ---- Fig. 4 ----------------------------------------------------------------

struct Fig4Pattern {
  const char* label;
  Seconds stress_per_cycle;
  Seconds recovery_per_cycle;
  std::vector<double> permanent_mv;  // residual dVth at the end of each cycle
};

/// Cyclic stress/recovery with recovery condition No. 4; returns the
/// permanent-component trajectory for each stress:recovery pattern.
[[nodiscard]] std::vector<Fig4Pattern> run_fig4(int cycles = 8);

// ---- Figs. 5-7 -------------------------------------------------------------

struct EmExperimentResult {
  TimeSeries resistance;   // measured R(t) at the chamber temperature
  Seconds nucleation_time{-1.0};
  Ohms fresh_resistance{0.0};
  Ohms peak_resistance{0.0};
  Ohms final_resistance{0.0};
  bool broke = false;
  Seconds break_time{-1.0};
  /// Fraction of the stress-induced dR undone by the recovery phase(s).
  [[nodiscard]] double recovery_fraction() const;
};

/// Fig. 5: stress 600 min (through nucleation + deep void growth), then
/// active+accelerated recovery (or passive if `active` is false).
[[nodiscard]] EmExperimentResult run_fig5(bool active_recovery,
                                          Seconds recovery_time = minutes(360));

/// Fig. 6: recovery started early in the void-growth phase, held long
/// enough to show full recovery and then reverse-current-induced EM.
[[nodiscard]] EmExperimentResult run_fig6(Seconds hold_after_heal =
                                              minutes(600));

/// Fig. 7: periodic short reverse intervals during the nucleation phase;
/// reports the (delayed) nucleation and break times.
struct Fig7Result {
  EmExperimentResult periodic;
  Seconds baseline_nucleation{0.0};
  [[nodiscard]] double nucleation_delay_factor() const;
};
[[nodiscard]] Fig7Result run_fig7(Seconds forward_interval = minutes(60),
                                  Seconds reverse_interval = minutes(20),
                                  Seconds max_time = minutes(3000));

}  // namespace dh::core
