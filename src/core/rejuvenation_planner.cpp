#include "core/rejuvenation_planner.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dh::core {

namespace {

/// Residual Vth shift after running the schedule for the whole lifetime.
Volts simulate_schedule(const BtiPlanningInput& in, double recovery_fraction) {
  auto model = device::BtiModel::paper_calibrated();
  const double cycles_exact = in.lifetime.value() / in.period.value();
  const auto cycles = static_cast<long>(std::ceil(cycles_exact));
  const Seconds stress_time{in.period.value() * (1.0 - recovery_fraction)};
  const Seconds recovery_time{in.period.value() * recovery_fraction};
  for (long c = 0; c < cycles; ++c) {
    if (stress_time.value() > 0.0) model.apply(in.stress, stress_time);
    if (recovery_time.value() > 0.0) model.apply(in.recovery, recovery_time);
  }
  return model.delta_vth();
}

}  // namespace

BtiSchedule plan_bti_recovery(const BtiPlanningInput& input) {
  DH_REQUIRE(input.stress.is_stress(),
             "planning input needs a stress condition");
  DH_REQUIRE(input.period.value() > 0.0 && input.lifetime.value() > 0.0,
             "period and lifetime must be positive");
  BtiSchedule out;
  out.period = input.period;
  out.unmitigated_permanent = simulate_schedule(input, 0.0);

  if (out.unmitigated_permanent <= input.residual_budget) {
    out.recovery_fraction = 0.0;
    out.residual_permanent = out.unmitigated_permanent;
    return out;
  }
  // Bisection on the recovery share (residual decreases monotonically).
  double lo = 0.0;
  double hi = 0.9;
  Volts hi_res = simulate_schedule(input, hi);
  if (hi_res > input.residual_budget) {
    // Even 90% recovery cannot meet the budget; report the best we can.
    out.recovery_fraction = hi;
    out.residual_permanent = hi_res;
    return out;
  }
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (simulate_schedule(input, mid) > input.residual_budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.recovery_fraction = hi;
  out.residual_permanent = simulate_schedule(input, hi);
  return out;
}

EmSchedule plan_em_recovery(const EmPlanningInput& input) {
  DH_REQUIRE(input.stress_budget > 0.0 && input.stress_budget < 1.0,
             "stress budget must be in (0,1)");
  EmSchedule out;
  const Kelvin t = to_kelvin(input.temperature);
  const double rho = input.wire.resistivity_at(t);
  const double j_abs = std::abs(input.operating_density.value());
  if (j_abs == 0.0) {
    out.nucleation_margin_factor = 1.0;
    return out;
  }
  // Blech immortality: back-stress alone holds the line below critical.
  const double blech = j_abs * input.wire.length.value();
  if (blech < input.material.blech_threshold(rho) * input.stress_budget) {
    out.nucleation_margin_factor = 1e9;  // effectively immortal
    return out;
  }
  const double g =
      input.material.driving_force(rho, AmpsPerM2{j_abs});
  const double kappa = input.material.kappa(t);
  // Peak stress under an effective (duty-averaged) drive at end of life:
  //   sigma = 2*G_eff*sqrt(kappa*T/pi)  (semi-infinite growth, the worst
  //   case for a long line).
  const double sigma_life =
      2.0 * g * std::sqrt(kappa * input.lifetime.value() / std::numbers::pi);
  const double sigma_max =
      input.stress_budget * input.material.critical_stress.value();
  if (sigma_life <= sigma_max) {
    out.nucleation_margin_factor = sigma_max / sigma_life;
    return out;  // never reaches the budget: no recovery intervals needed
  }
  const double duty = sigma_max / sigma_life;  // G_eff/G required
  // Forward interval chosen so the within-period stress ripple stays below
  // 10% of the budget.
  const double ripple_target = 0.1 * sigma_max;
  const double tf =
      std::numbers::pi / kappa * std::pow(ripple_target / (2.0 * g), 2.0);
  out.forward_interval = Seconds{std::max(tf, 60.0)};
  out.reverse_interval =
      Seconds{out.forward_interval.value() * (1.0 - duty) / (1.0 + duty)};
  // Nucleation time scales as 1/G_eff^2.
  out.nucleation_margin_factor = 1.0 / (duty * duty);
  return out;
}

}  // namespace dh::core
