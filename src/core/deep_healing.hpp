// Umbrella header for the deep-healing library — the public API of this
// reproduction of Guo & Stan, "Deep Healing: Ease the BTI and EM Wearout
// Crisis by Activating Recovery" (DSN 2017).
//
// Layers (bottom-up):
//   dh::device  — BTI trap-ensemble + permanent-component models, ring
//                 oscillator readout, compact BTI model
//   dh::em      — Korhonen stress-evolution solver, void growth/healing,
//                 Black's-equation statistics, compact EM model
//   dh::circuit — MNA simulator and the Fig. 8 assist circuitry
//   dh::thermal — die thermal RC grid (heat-assisted recovery)
//   dh::sensors — RO-pair BTI sensors, EM canary wires, health fusion
//   dh::sram    — 6T cell / array with SNM analysis and recovery boost
//   dh::logic   — signal-probability logic aging + aging-aware STA
//   dh::pdn     — power grid IR solve + per-segment EM aging
//   dh::sched   — cores, workloads, recovery policies, lifetime simulator
//   dh::core    — paper protocols, rejuvenation planning, run-time control
#pragma once

#include "circuit/assist.hpp"
#include "core/accelerated_test.hpp"
#include "core/recovery_controller.hpp"
#include "core/rejuvenation_planner.hpp"
#include "device/bti_model.hpp"
#include "device/calibration.hpp"
#include "device/compact_bti.hpp"
#include "em/black.hpp"
#include "em/compact_em.hpp"
#include "em/korhonen.hpp"
#include "logic/logic_netlist.hpp"
#include "pdn/aging_pdn.hpp"
#include "sched/system_sim.hpp"
#include "sensors/em_canary.hpp"
#include "sensors/health_monitor.hpp"
#include "sensors/ro_pair_sensor.hpp"
#include "sram/sram_array.hpp"
#include "thermal/thermal_grid.hpp"
