// RejuvenationPlanner: turns the paper's "push-pull" observation into a
// design procedure — find the smallest scheduled recovery share that keeps
// the permanent wearout component from accumulating over the device's
// target lifetime, and place EM recovery intervals before void nucleation.
#pragma once

#include "common/units.hpp"
#include "device/bti_model.hpp"
#include "em/compact_em.hpp"

namespace dh::core {

struct BtiSchedule {
  /// Fraction of every period spent in BTI active recovery.
  double recovery_fraction = 0.0;
  Seconds period{0.0};
  /// Predicted permanent component at end of life with this schedule.
  Volts residual_permanent{0.0};
  /// Predicted permanent component with NO scheduled recovery.
  Volts unmitigated_permanent{0.0};
};

struct BtiPlanningInput {
  device::BtiCondition stress;               // operating stress condition
  device::BtiCondition recovery;             // available recovery condition
  Seconds period{hours(24.0)};               // scheduling period
  Seconds lifetime{years(5.0)};
  /// Largest residual permanent shift considered "practically zero".
  Volts residual_budget{0.002};
};

/// Finds, by bisection on the recovery share, the minimal fraction of each
/// period that must be spent in active recovery so the end-of-life
/// permanent component stays within budget. Uses the full calibrated BTI
/// model (cycle-compressed: the schedule is simulated cycle by cycle).
[[nodiscard]] BtiSchedule plan_bti_recovery(const BtiPlanningInput& input);

struct EmSchedule {
  /// Reverse-current interval to insert after every `forward_interval` of
  /// operation so the line never reaches the critical stress.
  Seconds forward_interval{0.0};
  Seconds reverse_interval{0.0};
  /// Nucleation-time improvement factor vs no recovery (>= 1).
  double nucleation_margin_factor = 1.0;
};

struct EmPlanningInput {
  em::WireGeometry wire{};
  em::EmMaterialParams material{};
  AmpsPerM2 operating_density{0.0};
  Celsius temperature{85.0};
  Seconds lifetime{years(5.0)};
  /// Allowed fraction of critical stress at any time (safety margin).
  double stress_budget = 0.7;
};

/// Chooses the duty cycle of EM active recovery so the peak line stress
/// stays below `stress_budget * sigma_crit` across the whole lifetime.
/// Returns a zero-length reverse interval when the wire is already
/// immortal (Blech) or never reaches the budget within the lifetime.
[[nodiscard]] EmSchedule plan_em_recovery(const EmPlanningInput& input);

}  // namespace dh::core
