// RecoveryController: the run-time state machine that drives a block's
// assist circuitry between Normal, EM Active Recovery, and BTI Active
// Recovery according to a planned schedule (Fig. 12b), accounting for
// mode-switch overhead and tracking how much time each mode consumed.
#pragma once

#include <cstddef>

#include "circuit/assist.hpp"
#include "common/units.hpp"
#include "core/rejuvenation_planner.hpp"

namespace dh::core {

struct RecoveryControllerParams {
  BtiSchedule bti{};
  EmSchedule em{};
  /// Time lost per mode switch (from the Fig. 10 study).
  Seconds mode_switch_overhead{500e-9};
};

struct RecoveryAccounting {
  Seconds normal{0.0};
  Seconds em_recovery{0.0};
  Seconds bti_recovery{0.0};
  std::size_t mode_switches = 0;
  /// Fraction of wall time lost to switching.
  [[nodiscard]] double overhead_fraction(Seconds switch_cost) const;
  /// Fraction of wall time the block was operational (Normal or EM mode —
  /// the load keeps running during EM recovery).
  [[nodiscard]] double uptime_fraction() const;
};

class RecoveryController {
 public:
  explicit RecoveryController(RecoveryControllerParams params);

  /// Mode for the quantum starting at `now`. `load_idle` reports whether
  /// the workload has an intrinsic OFF opportunity; BTI recovery windows
  /// are honored regardless (the paper's scheduled recovery), but idle
  /// time is used opportunistically for extra BTI healing.
  [[nodiscard]] circuit::AssistMode decide(Seconds now, bool load_idle);

  /// Advance accounting by one quantum in the mode returned by decide().
  void commit(circuit::AssistMode mode, Seconds dt);

  [[nodiscard]] const RecoveryAccounting& accounting() const {
    return accounting_;
  }
  [[nodiscard]] const RecoveryControllerParams& params() const {
    return params_;
  }

 private:
  RecoveryControllerParams params_;
  RecoveryAccounting accounting_;
  circuit::AssistMode last_mode_ = circuit::AssistMode::kNormal;
  bool have_last_ = false;
};

}  // namespace dh::core
