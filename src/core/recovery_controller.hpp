// RecoveryController: the run-time state machine that drives a block's
// assist circuitry between Normal, EM Active Recovery, and BTI Active
// Recovery according to a planned schedule (Fig. 12b), accounting for
// mode-switch overhead and tracking how much time each mode consumed.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/assist.hpp"
#include "common/units.hpp"
#include "core/rejuvenation_planner.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::core {

struct RecoveryControllerParams {
  BtiSchedule bti{};
  EmSchedule em{};
  /// Time lost per mode switch (from the Fig. 10 study).
  Seconds mode_switch_overhead{500e-9};
};

struct RecoveryAccounting {
  Seconds normal{0.0};
  Seconds em_recovery{0.0};
  Seconds bti_recovery{0.0};
  std::size_t mode_switches = 0;
  /// Fraction of wall time lost to switching.
  [[nodiscard]] double overhead_fraction(Seconds switch_cost) const;
  /// Fraction of wall time the block was operational (Normal or EM mode —
  /// the load keeps running during EM recovery).
  [[nodiscard]] double uptime_fraction() const;
};

/// One homogeneous sub-interval of a quantum (see decide_slices).
struct ModeSlice {
  circuit::AssistMode mode = circuit::AssistMode::kNormal;
  Seconds duration{0.0};
};

class RecoveryController {
 public:
  explicit RecoveryController(RecoveryControllerParams params);

  /// Mode at the instant `now`. `load_idle` reports whether the workload
  /// has an intrinsic OFF opportunity. Precedence: scheduled BTI window,
  /// then scheduled EM reverse window, then opportunistic idle-time BTI
  /// healing, then Normal — the planned EM duty cycle must not be starved
  /// by opportunistic healing, or the line never sees its reverse current
  /// on idle-heavy workloads.
  [[nodiscard]] circuit::AssistMode decide(Seconds now, bool load_idle) const;

  /// Mode for the whole quantum [now, now+dt), classified by *dominant
  /// overlap*: the quantum is split at every schedule boundary it
  /// straddles and the mode covering the most time wins (ties resolve by
  /// the precedence above). Classifying by the quantum's start time
  /// biases duty accounting for coarse quanta — a quantum entering a
  /// recovery window near its end would be wholly attributed to Normal.
  [[nodiscard]] circuit::AssistMode decide(Seconds now, Seconds dt,
                                           bool load_idle) const;

  /// Exact decomposition of [now, now+dt) at schedule boundaries:
  /// consecutive slices with distinct modes whose durations sum to dt.
  /// Committing each slice reproduces a schedule's analytic duty exactly
  /// (e.g. a 1h:1h EM cycle accounts 50/50 for any quantum size).
  [[nodiscard]] std::vector<ModeSlice> decide_slices(Seconds now, Seconds dt,
                                                     bool load_idle) const;

  /// Advance accounting by one quantum in the mode returned by decide().
  void commit(circuit::AssistMode mode, Seconds dt);

  [[nodiscard]] const RecoveryAccounting& accounting() const {
    return accounting_;
  }
  [[nodiscard]] const RecoveryControllerParams& params() const {
    return params_;
  }

  /// Checkpoint support: accounting and the mode-switch edge detector.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  RecoveryControllerParams params_;
  RecoveryAccounting accounting_;
  circuit::AssistMode last_mode_ = circuit::AssistMode::kNormal;
  bool have_last_ = false;
};

}  // namespace dh::core
