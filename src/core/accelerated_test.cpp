#include "core/accelerated_test.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "device/bti_sensor.hpp"
#include "em/em_sensor.hpp"

namespace dh::core {

std::array<Table1Row, 4> run_table1(std::uint64_t seed) {
  using namespace device;
  const auto stress = paper_conditions::accelerated_stress();
  const auto targets = table1_targets();

  std::array<Table1Row, 4> rows{};
  for (std::size_t j = 0; j < targets.size(); ++j) {
    auto model = BtiModel::paper_calibrated();
    const auto out =
        run_stress_recovery(model, stress, table1_stress_time(),
                            targets[j].condition, table1_recovery_time());

    // Virtual-chamber measurement: the same experiment read through a
    // 75-stage ring oscillator and a frequency counter.
    auto measured_model = BtiModel::paper_calibrated();
    RingOscillatorParams rop;
    rop.vdd = Volts{1.1};
    BtiSensor sensor{RingOscillator{rop}, BtiSensorParams{},
                     Rng{seed + j}};
    measured_model.apply(stress, table1_stress_time());
    const Volts dv_stress = sensor.measure_delta_vth(measured_model);
    measured_model.apply(targets[j].condition, table1_recovery_time());
    const Volts dv_rec = sensor.measure_delta_vth(measured_model);
    const double measured_fraction =
        dv_stress.value() > 0.0
            ? (dv_stress.value() - dv_rec.value()) / dv_stress.value()
            : 0.0;

    rows[j] = Table1Row{
        .label = targets[j].label,
        .condition = targets[j].condition,
        .model_fraction = out.recovery_fraction(),
        .measured_fraction = measured_fraction,
        .paper_model = targets[j].model_fraction,
        .paper_measured = targets[j].measured_fraction,
    };
  }
  return rows;
}

std::vector<Fig4Pattern> run_fig4(int cycles) {
  using namespace device;
  DH_REQUIRE(cycles >= 1, "need at least one cycle");
  const auto stress = paper_conditions::accelerated_stress();
  const auto recovery = paper_conditions::recovery_no4();

  std::vector<Fig4Pattern> patterns = {
      {"4h stress : 1h recovery", hours(4), hours(1), {}},
      {"2h stress : 1h recovery", hours(2), hours(1), {}},
      {"1h stress : 1h recovery", hours(1), hours(1), {}},
      {"1h stress : 2h recovery", hours(1), hours(2), {}},
  };
  for (auto& p : patterns) {
    auto model = BtiModel::paper_calibrated();
    for (int c = 0; c < cycles; ++c) {
      model.apply(stress, p.stress_per_cycle);
      model.apply(recovery, p.recovery_per_cycle);
      p.permanent_mv.push_back(model.delta_vth().value() * 1e3);
    }
  }
  return patterns;
}

double EmExperimentResult::recovery_fraction() const {
  const double stressed =
      peak_resistance.value() - fresh_resistance.value();
  if (stressed <= 0.0) return 0.0;
  return (peak_resistance.value() - final_resistance.value()) / stressed;
}

namespace {

struct EmRun {
  em::KorhonenSolver solver{em::paper_wire(),
                            em::paper_calibrated_em_material()};
  em::EmSensor sensor{em::EmSensorParams{}, Rng{99}};
  EmExperimentResult result;
  Celsius chamber = em::paper_em_conditions::chamber();

  EmRun() {
    result.fresh_resistance = solver.resistance(chamber);
    result.resistance =
        TimeSeries{"resistance", "ohm"};
    record();
  }
  void record() {
    const Ohms r = solver.broken()
                       ? Ohms{1e9}
                       : sensor.measure(solver.resistance(chamber));
    result.resistance.append(solver.elapsed(), r.value());
    if (!solver.broken()) {
      result.peak_resistance =
          Ohms{std::max(result.peak_resistance.value(), r.value())};
    }
  }
  void phase(AmpsPerM2 j, Seconds duration, Seconds sample_every) {
    double remaining = duration.value();
    while (remaining > 0.0) {
      const double h = std::min(remaining, sample_every.value());
      solver.step(j, chamber, Seconds{h});
      remaining -= h;
      if (result.nucleation_time.value() < 0.0 && solver.ever_nucleated()) {
        result.nucleation_time = solver.elapsed();
      }
      if (!result.broke && solver.broken()) {
        result.broke = true;
        result.break_time = solver.elapsed();
      }
      record();
    }
  }
  void finish() {
    result.final_resistance = solver.broken()
                                  ? Ohms{1e9}
                                  : solver.resistance(chamber);
  }
};

}  // namespace

EmExperimentResult run_fig5(bool active_recovery, Seconds recovery_time) {
  using namespace em::paper_em_conditions;
  EmRun run;
  run.phase(stress_density(), minutes(600), minutes(5));
  run.phase(active_recovery ? reverse_density() : AmpsPerM2{0.0},
            recovery_time, minutes(5));
  run.finish();
  return run.result;
}

EmExperimentResult run_fig6(Seconds hold_after_heal) {
  using namespace em::paper_em_conditions;
  EmRun run;
  // Stress through nucleation plus a short (early) growth window.
  while (!run.solver.ever_nucleated() &&
         run.solver.elapsed().value() < minutes(900).value()) {
    run.phase(stress_density(), minutes(5), minutes(5));
  }
  run.phase(stress_density(), minutes(30), minutes(5));
  // Active recovery to full healing, then keep the reverse current on:
  // reverse-current-induced EM appears at the other end.
  run.phase(reverse_density(), minutes(240), minutes(5));
  run.result.final_resistance = run.solver.resistance(run.chamber);
  run.phase(reverse_density(), hold_after_heal, minutes(5));
  // final_resistance reflects the healed minimum (before reverse EM).
  return run.result;
}

Fig7Result run_fig7(Seconds forward_interval, Seconds reverse_interval,
                    Seconds max_time) {
  using namespace em::paper_em_conditions;
  Fig7Result out;
  // Baseline: constant stress.
  {
    EmRun base;
    while (!base.solver.ever_nucleated() &&
           base.solver.elapsed().value() < max_time.value()) {
      base.phase(stress_density(), minutes(10), minutes(10));
    }
    out.baseline_nucleation = base.result.nucleation_time;
  }
  // Periodic recovery intervals during the nucleation phase.
  EmRun run;
  while (!run.solver.ever_nucleated() &&
         run.solver.elapsed().value() < max_time.value()) {
    run.phase(stress_density(), forward_interval, minutes(10));
    if (run.solver.ever_nucleated()) break;
    run.phase(reverse_density(), reverse_interval, minutes(10));
  }
  // After (delayed) nucleation, keep stressing until the metal breaks or
  // time runs out — the paper's Fig. 7 ends with "metal broke".
  while (!run.solver.broken() &&
         run.solver.elapsed().value() < max_time.value()) {
    run.phase(stress_density(), minutes(30), minutes(10));
  }
  run.finish();
  out.periodic = run.result;
  return out;
}

double Fig7Result::nucleation_delay_factor() const {
  if (baseline_nucleation.value() <= 0.0 ||
      periodic.nucleation_time.value() <= 0.0) {
    return 0.0;
  }
  return periodic.nucleation_time.value() / baseline_nucleation.value();
}

}  // namespace dh::core
