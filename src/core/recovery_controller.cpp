#include "core/recovery_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::core {

namespace {

/// Push every multiple-of-`period` offset boundary `k*period + offset`
/// falling strictly inside (a, b).
void push_periodic_boundaries(double a, double b, double period,
                              double offset, std::vector<double>& out) {
  if (period <= 0.0) return;
  double k = std::floor((a - offset) / period);
  for (double t = k * period + offset; t < b; t += period) {
    if (t > a) out.push_back(t);
  }
}

}  // namespace

double RecoveryAccounting::overhead_fraction(Seconds switch_cost) const {
  const double total =
      normal.value() + em_recovery.value() + bti_recovery.value();
  if (total <= 0.0) return 0.0;
  return static_cast<double>(mode_switches) * switch_cost.value() / total;
}

double RecoveryAccounting::uptime_fraction() const {
  const double total =
      normal.value() + em_recovery.value() + bti_recovery.value();
  if (total <= 0.0) return 1.0;
  return (normal.value() + em_recovery.value()) / total;
}

RecoveryController::RecoveryController(RecoveryControllerParams params)
    : params_(params) {
  DH_REQUIRE(params_.bti.recovery_fraction >= 0.0 &&
                 params_.bti.recovery_fraction < 1.0,
             "BTI recovery fraction must be in [0,1)");
}

circuit::AssistMode RecoveryController::decide(Seconds now,
                                               bool load_idle) const {
  const double t = now.value();
  // Scheduled BTI window: the trailing fraction of every period.
  if (params_.bti.period.value() > 0.0 &&
      params_.bti.recovery_fraction > 0.0) {
    const double frac = std::fmod(t, params_.bti.period.value()) /
                        params_.bti.period.value();
    if (frac >= 1.0 - params_.bti.recovery_fraction) {
      return circuit::AssistMode::kBtiActiveRecovery;
    }
  }
  // Scheduled EM reverse window. This outranks opportunistic idle-time
  // BTI healing: the planner sized the reverse duty to keep the line
  // below critical stress, and an idle-heavy workload must not starve it.
  const double cycle = params_.em.forward_interval.value() +
                       params_.em.reverse_interval.value();
  if (cycle > 0.0 && params_.em.reverse_interval.value() > 0.0) {
    const double pos = std::fmod(t, cycle);
    if (pos >= params_.em.forward_interval.value()) {
      return circuit::AssistMode::kEmActiveRecovery;
    }
  }
  // Opportunistic BTI recovery during intrinsic idle time.
  if (load_idle) {
    return circuit::AssistMode::kBtiActiveRecovery;
  }
  return circuit::AssistMode::kNormal;
}

std::vector<ModeSlice> RecoveryController::decide_slices(
    Seconds now, Seconds dt, bool load_idle) const {
  DH_REQUIRE(dt.value() >= 0.0, "quantum must be non-negative");
  const double a = now.value();
  const double b = a + dt.value();
  std::vector<double> cuts;
  cuts.push_back(a);
  // BTI window boundaries: window starts at period*(1-fraction), ends at
  // the period wrap.
  if (params_.bti.period.value() > 0.0 &&
      params_.bti.recovery_fraction > 0.0) {
    const double p = params_.bti.period.value();
    push_periodic_boundaries(a, b, p,
                             p * (1.0 - params_.bti.recovery_fraction), cuts);
    push_periodic_boundaries(a, b, p, 0.0, cuts);
  }
  // EM reverse-window boundaries: reverse starts after forward_interval,
  // ends at the cycle wrap.
  const double cycle = params_.em.forward_interval.value() +
                       params_.em.reverse_interval.value();
  if (cycle > 0.0 && params_.em.reverse_interval.value() > 0.0) {
    push_periodic_boundaries(a, b, cycle,
                             params_.em.forward_interval.value(), cuts);
    push_periodic_boundaries(a, b, cycle, 0.0, cuts);
  }
  cuts.push_back(b);
  std::sort(cuts.begin(), cuts.end());

  std::vector<ModeSlice> slices;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double len = cuts[i + 1] - cuts[i];
    if (len <= 1e-9) continue;  // degenerate cut (coincident boundaries)
    // Classify at the midpoint: every cut point is a mode boundary, so
    // the midpoint is safely interior and free of fmod rounding at the
    // boundary itself.
    const circuit::AssistMode mode =
        decide(Seconds{0.5 * (cuts[i] + cuts[i + 1])}, load_idle);
    if (!slices.empty() && slices.back().mode == mode) {
      slices.back().duration += Seconds{len};
    } else {
      slices.push_back({mode, Seconds{len}});
    }
  }
  if (slices.empty()) slices.push_back({decide(now, load_idle), dt});
  return slices;
}

circuit::AssistMode RecoveryController::decide(Seconds now, Seconds dt,
                                               bool load_idle) const {
  if (dt.value() <= 0.0) return decide(now, load_idle);
  double per_mode[3] = {0.0, 0.0, 0.0};
  for (const ModeSlice& s : decide_slices(now, dt, load_idle)) {
    per_mode[static_cast<std::size_t>(s.mode)] += s.duration.value();
  }
  // Dominant overlap; ties resolve by the point rule's precedence (BTI,
  // then EM, then Normal).
  const double bti =
      per_mode[static_cast<std::size_t>(circuit::AssistMode::kBtiActiveRecovery)];
  const double em =
      per_mode[static_cast<std::size_t>(circuit::AssistMode::kEmActiveRecovery)];
  const double normal =
      per_mode[static_cast<std::size_t>(circuit::AssistMode::kNormal)];
  if (bti >= em && bti >= normal && bti > 0.0) {
    return circuit::AssistMode::kBtiActiveRecovery;
  }
  if (em >= normal && em > 0.0) {
    return circuit::AssistMode::kEmActiveRecovery;
  }
  return circuit::AssistMode::kNormal;
}

void RecoveryController::commit(circuit::AssistMode mode, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (have_last_ && mode != last_mode_) {
    ++accounting_.mode_switches;
  }
  last_mode_ = mode;
  have_last_ = true;
  switch (mode) {
    case circuit::AssistMode::kNormal:
      accounting_.normal += dt;
      break;
    case circuit::AssistMode::kEmActiveRecovery:
      accounting_.em_recovery += dt;
      break;
    case circuit::AssistMode::kBtiActiveRecovery:
      accounting_.bti_recovery += dt;
      break;
  }
}

void RecoveryController::save_state(ckpt::Serializer& s) const {
  s.begin_section("RCTL");
  s.write_f64(accounting_.normal.value());
  s.write_f64(accounting_.em_recovery.value());
  s.write_f64(accounting_.bti_recovery.value());
  s.write_u64(accounting_.mode_switches);
  s.write_u8(static_cast<std::uint8_t>(last_mode_));
  s.write_bool(have_last_);
}

void RecoveryController::load_state(ckpt::Deserializer& d) {
  d.expect_section("RCTL");
  accounting_.normal = Seconds{d.read_f64()};
  accounting_.em_recovery = Seconds{d.read_f64()};
  accounting_.bti_recovery = Seconds{d.read_f64()};
  accounting_.mode_switches = static_cast<std::size_t>(d.read_u64());
  const std::uint8_t mode = d.read_u8();
  DH_REQUIRE(mode <= 2,
             "recovery controller snapshot holds an unknown assist mode");
  last_mode_ = static_cast<circuit::AssistMode>(mode);
  have_last_ = d.read_bool();
}

}  // namespace dh::core
