#include "core/recovery_controller.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dh::core {

double RecoveryAccounting::overhead_fraction(Seconds switch_cost) const {
  const double total =
      normal.value() + em_recovery.value() + bti_recovery.value();
  if (total <= 0.0) return 0.0;
  return static_cast<double>(mode_switches) * switch_cost.value() / total;
}

double RecoveryAccounting::uptime_fraction() const {
  const double total =
      normal.value() + em_recovery.value() + bti_recovery.value();
  if (total <= 0.0) return 1.0;
  return (normal.value() + em_recovery.value()) / total;
}

RecoveryController::RecoveryController(RecoveryControllerParams params)
    : params_(params) {
  DH_REQUIRE(params_.bti.recovery_fraction >= 0.0 &&
                 params_.bti.recovery_fraction < 1.0,
             "BTI recovery fraction must be in [0,1)");
}

circuit::AssistMode RecoveryController::decide(Seconds now, bool load_idle) {
  // Scheduled BTI window: the trailing fraction of every period.
  if (params_.bti.period.value() > 0.0 &&
      params_.bti.recovery_fraction > 0.0) {
    const double frac = std::fmod(now.value(), params_.bti.period.value()) /
                        params_.bti.period.value();
    if (frac >= 1.0 - params_.bti.recovery_fraction) {
      return circuit::AssistMode::kBtiActiveRecovery;
    }
  }
  // Opportunistic BTI recovery during intrinsic idle time.
  if (load_idle) {
    return circuit::AssistMode::kBtiActiveRecovery;
  }
  // EM recovery duty during operation (system stays up in EM mode).
  const double cycle = params_.em.forward_interval.value() +
                       params_.em.reverse_interval.value();
  if (cycle > 0.0 && params_.em.reverse_interval.value() > 0.0) {
    const double pos = std::fmod(now.value(), cycle);
    if (pos >= params_.em.forward_interval.value()) {
      return circuit::AssistMode::kEmActiveRecovery;
    }
  }
  return circuit::AssistMode::kNormal;
}

void RecoveryController::commit(circuit::AssistMode mode, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (have_last_ && mode != last_mode_) {
    ++accounting_.mode_switches;
  }
  last_mode_ = mode;
  have_last_ = true;
  switch (mode) {
    case circuit::AssistMode::kNormal:
      accounting_.normal += dt;
      break;
    case circuit::AssistMode::kEmActiveRecovery:
      accounting_.em_recovery += dt;
      break;
    case circuit::AssistMode::kBtiActiveRecovery:
      accounting_.bti_recovery += dt;
      break;
  }
}

}  // namespace dh::core
