// Compact per-segment EM model for system-scale simulation.
//
// The full Korhonen PDE is exact but too heavy to run for every segment of
// a power grid over years of simulated lifetime. This compact model
// approximates the cathode stress response with a small bank of
// first-order pools whose time constants straddle the nucleation
// timescale (a 3-term Prony approximation of the sqrt(t) kernel), and
// models the void phase as drift-velocity growth/healing with the same
// immobilization kinetics as the full solver. Accuracy against the PDE is
// quantified by bench/ablation_compact_models.
#pragma once

#include <array>

#include "common/units.hpp"
#include "em/material.hpp"
#include "em/wire.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::em {

struct CompactEmParams {
  WireGeometry wire;
  EmMaterialParams material;
  /// Middle pool time constant; defaults to the analytic nucleation time
  /// at the reference condition below. <= 0 means "derive at
  /// construction".
  Seconds tau_ref{-1.0};
  AmpsPerM2 j_ref{7.96e10};
  Celsius t_ref{230.0};
  double tau_spread = 10.0;  // ratio between adjacent pool taus
  double kernel_gain = 0.79; // Prony fit gain for the sqrt(t) kernel
};

class CompactEm {
 public:
  explicit CompactEm(CompactEmParams params);

  void step(AmpsPerM2 j, Celsius temperature, Seconds dt);
  void reset();

  /// Approximate tensile stress at the currently stressed end (signed:
  /// positive = void tendency at the forward-current cathode).
  [[nodiscard]] Pascals end_stress() const;
  [[nodiscard]] bool void_open() const { return void_open_; }
  [[nodiscard]] Meters void_length() const {
    return Meters{void_mobile_m_ + void_fixed_m_};
  }
  [[nodiscard]] Meters fixed_void_length() const {
    return Meters{void_fixed_m_};
  }
  [[nodiscard]] bool broken() const { return broken_; }
  [[nodiscard]] Ohms resistance(Celsius t) const;

  /// Analytic nucleation time under constant stress (pi/4*(sc/G)^2/kappa).
  [[nodiscard]] static Seconds analytic_nucleation_time(
      const EmMaterialParams& material, const WireGeometry& wire, AmpsPerM2 j,
      Celsius t);

  [[nodiscard]] const CompactEmParams& params() const { return params_; }

  /// Checkpoint support: bit-exact snapshot of the pool and void states
  /// (taus/gains are derived from params at construction).
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  CompactEmParams params_;
  std::array<double, 3> taus_{};   // pool time constants (s)
  std::array<double, 3> gains_{};  // pool saturation gains (Pa per unit G*sqrt..)
  std::array<double, 3> pools_{};  // pool states (Pa)
  bool void_open_ = false;
  int void_polarity_ = 0;  // +1: forward-current cathode end; -1: other end
  double void_mobile_m_ = 0.0;
  double void_fixed_m_ = 0.0;
  bool broken_ = false;
};

}  // namespace dh::em
