#include "em/wire.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dh::em {

double WireGeometry::resistivity_at(Kelvin t) const {
  const double dt = t.value() - to_kelvin(reference_temperature).value();
  return resistivity_ref * (1.0 + tcr_per_k * dt);
}

Ohms WireGeometry::resistance_at(Kelvin t) const {
  DH_REQUIRE(cross_section_m2() > 0.0, "wire has zero cross section");
  return Ohms{resistivity_at(t) * length.value() / cross_section_m2()};
}

Ohms WireGeometry::resistance_with_void(Kelvin t, Meters void_len) const {
  DH_REQUIRE(void_len.value() >= 0.0, "void length cannot be negative");
  const double lv = std::min(void_len.value(), length.value());
  const double copper =
      resistivity_at(t) * (length.value() - lv) / cross_section_m2();
  const double liner = liner_ohm_per_m * lv;
  return Ohms{copper + liner};
}

Amps WireGeometry::current_for_density(AmpsPerM2 j) const {
  return Amps{j.value() * cross_section_m2()};
}

double WireGeometry::blech_product(AmpsPerM2 j) const {
  return std::abs(j.value()) * length.value();
}

WireGeometry paper_wire() { return WireGeometry{}; }

}  // namespace dh::em
