// Electromigration material/kinetics parameters (Korhonen model inputs).
//
// Defaults are set inside copper-literature ranges and chosen so that at
// the paper's accelerated condition — 230 C and 7.96 MA/cm^2 — the void
// nucleation time lands near the ~6 h mark of Fig. 5 and void growth
// produces ~0.4 Ohm/h of liner-shunted resistance rise. Derivation in
// DESIGN.md §5.
#pragma once

#include "common/units.hpp"

namespace dh::em {

struct EmMaterialParams {
  /// Effective charge number Z* of the electron wind (dimensionless).
  double z_eff = 1.0;
  /// Diffusivity prefactor D0 (m^2/s) and activation energy.
  double d0_m2_per_s = 3.4e-8;
  ElectronVolts diffusion_ea{0.90};
  /// Effective bulk modulus B of the confined line (Pa).
  double bulk_modulus_pa = 1.0e11;
  /// Atomic volume Omega (m^3).
  double atomic_volume_m3 = 1.182e-29;
  /// Critical tensile stress for void nucleation.
  Pascals critical_stress{4.0e8};
  /// Void length at which the line is considered mechanically broken
  /// (liner can no longer carry the current).
  Meters break_void_length{60e-9};
  /// Void-immobilization ("permanent component") kinetics: mobile void
  /// length converts first-order into unhealable length with rate
  /// 1/tau(T) = (1/fix_tau0) * exp(-fix_ea/kT). At 230 C the default
  /// gives tau ~ 24 h.
  double fix_tau0_s = 7.65e-7;
  ElectronVolts fix_ea{1.10};
  /// Fraction of the vacancy flux that grows the current-constricting
  /// slit void (the remainder spreads as distributed porosity with no
  /// resistance signature). Healing refills the slit first, at full
  /// efficiency — one of the two reasons active recovery outpaces growth.
  double slit_efficiency = 0.35;
  /// Current-crowding thermal resistance at the void constriction (K/W):
  /// the liner shunt dissipates I^2*dR locally and raises the local
  /// diffusivity — the second reason recovery under reverse current is
  /// fast (and a real effect in Cu interconnect healing experiments).
  double void_crowding_theta_k_per_w = 1550.0;

  /// Atomic diffusivity at temperature t (m^2/s).
  [[nodiscard]] double diffusivity(Kelvin t) const;
  /// Korhonen effective diffusivity kappa = Da*B*Omega/kT (m^2/s).
  [[nodiscard]] double kappa(Kelvin t) const;
  /// EM driving force G = e*Z*rho(T)*j / Omega (Pa/m); needs the wire's
  /// resistivity at temperature.
  [[nodiscard]] double driving_force(double resistivity_ohm_m,
                                     AmpsPerM2 j) const;
  /// Drift velocity of the void surface under pure electron wind (m/s).
  [[nodiscard]] double drift_velocity(Kelvin t, double resistivity_ohm_m,
                                      AmpsPerM2 j) const;
  /// First-order immobilization rate at temperature t (1/s).
  [[nodiscard]] double fix_rate(Kelvin t) const;
  /// Critical Blech product 2*sigma_c*Omega/(e*Z*rho): below this j*L the
  /// back-stress alone suppresses EM (immortal wire).
  [[nodiscard]] double blech_threshold(double resistivity_ohm_m) const;
};

/// Parameters used for the Fig. 5-7 reproductions.
[[nodiscard]] EmMaterialParams paper_calibrated_em_material();

}  // namespace dh::em
