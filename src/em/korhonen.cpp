#include "em/korhonen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math/interp.hpp"
#include "common/math/linalg.hpp"

namespace dh::em {

KorhonenSolver::KorhonenSolver(WireGeometry wire, EmMaterialParams material,
                               KorhonenGridParams grid)
    : wire_(wire), material_(material), grid_params_(grid) {
  DH_REQUIRE(grid.first_cell.value() > 0.0 &&
                 grid.first_cell.value() < wire.length.value() / 4.0,
             "first grid cell must be positive and much shorter than the wire");
  const double half = wire_.length.value() / 2.0;
  const auto left = math::stretched_grid(0.0, half, grid.first_cell.value(),
                                         grid.stretch_ratio);
  // Mirror onto the right half so both ends are finely resolved.
  x_ = left;
  for (std::size_t i = left.size() - 1; i-- > 0;) {
    x_.push_back(wire_.length.value() - left[i]);
  }
  const std::size_t n = x_.size();
  DH_REQUIRE(n >= 8, "grid unexpectedly coarse");
  cell_w_.resize(n);
  cell_w_[0] = 0.5 * (x_[1] - x_[0]);
  cell_w_[n - 1] = 0.5 * (x_[n - 1] - x_[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    cell_w_[i] = 0.5 * (x_[i + 1] - x_[i - 1]);
  }
  sigma_.assign(n, 0.0);
  tri_lower_.assign(n - 1, 0.0);
  tri_diag_.assign(n, 0.0);
  tri_upper_.assign(n - 1, 0.0);
  tri_rhs_.assign(n, 0.0);
}

void KorhonenSolver::step(AmpsPerM2 j, Celsius temperature, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (broken_) {
    elapsed_s_ += dt.value();
    return;
  }
  const Kelvin t = to_kelvin(temperature);
  double remaining = dt.value();
  const double h_max = grid_params_.max_substep.value();
  while (remaining > 0.0 && !broken_) {
    const double h = std::min(remaining, h_max);
    substep(j, t, h);
    remaining -= h;
  }
}

void KorhonenSolver::substep(AmpsPerM2 j, Kelvin t, double dt) {
  const std::size_t n = x_.size();
  const double kappa = material_.kappa(t);
  const double rho = wire_.resistivity_at(t);
  const double g = material_.driving_force(rho, j);  // Pa/m

  // Assemble the backward-Euler tridiagonal system:
  //   (I/dt - A) sigma^{n+1} = sigma^n/dt + b
  // where A couples neighbours through kappa/h and b carries the wind
  // source at non-Dirichlet boundary cells. The buffers are constructor-
  // sized members (every entry is overwritten below), so substeps stay
  // allocation-free.
  std::vector<double>& lower = tri_lower_;
  std::vector<double>& diag = tri_diag_;
  std::vector<double>& upper = tri_upper_;
  std::vector<double>& rhs = tri_rhs_;

  const bool dirichlet0 = void_start_.open;
  const bool dirichletN = void_end_.open;

  for (std::size_t i = 0; i < n; ++i) {
    if ((i == 0 && dirichlet0) || (i == n - 1 && dirichletN)) {
      diag[i] = 1.0;
      rhs[i] = 0.0;  // free surface: sigma = 0
      if (i == 0) upper[0] = 0.0;
      if (i == n - 1) lower[n - 2] = 0.0;
      continue;
    }
    diag[i] = 1.0 / dt;
    rhs[i] = sigma_[i] / dt;
    // Right face.
    if (i + 1 < n) {
      const double c = kappa / (x_[i + 1] - x_[i]) / cell_w_[i];
      diag[i] += c;
      upper[i] = -c;
      rhs[i] += kappa * g / cell_w_[i];  // wind flux through right face
    }
    // Left face.
    if (i > 0) {
      const double c = kappa / (x_[i] - x_[i - 1]) / cell_w_[i];
      diag[i] += c;
      lower[i - 1] = -c;
      rhs[i] -= kappa * g / cell_w_[i];  // wind flux through left face
    }
  }
  math::solve_tridiagonal(lower, diag, upper, rhs, sigma_, tri_ws_);

  // Void growth/healing from the boundary fluxes.
  auto flux_at_face = [&](std::size_t left_node) {
    const double h = x_[left_node + 1] - x_[left_node];
    return kappa *
           ((sigma_[left_node + 1] - sigma_[left_node]) / h + g);  // Pa*m/s
  };
  const double fix = material_.fix_rate(t);
  const Amps current = wire_.current_for_density(j);
  auto evolve_void = [&](VoidState& v, double signed_flux) {
    if (!v.open) return;
    // Current crowding: the liner shunt around the void dissipates
    // I^2*dR locally and raises the local diffusivity.
    const double dr_void = wire_.liner_ohm_per_m * v.total_m();
    const double p_local =
        current.value() * current.value() * dr_void;
    const Kelvin t_local{t.value() +
                         material_.void_crowding_theta_k_per_w * p_local};
    const double heat_boost =
        material_.diffusivity(t_local) / material_.diffusivity(t);
    const double rate = signed_flux * heat_boost / material_.bulk_modulus_pa;
    // Growth feeds the slit with partial efficiency; healing refills the
    // slit at full efficiency.
    v.mobile_len_m +=
        rate * (rate > 0.0 ? material_.slit_efficiency : 1.0) * dt;
    // First-order immobilization of the healable length.
    const double converted = v.mobile_len_m * (1.0 - std::exp(-fix * dt));
    if (converted > 0.0) {
      v.mobile_len_m -= converted;
      v.fixed_len_m += converted;
    }
    if (v.mobile_len_m <= 0.0) {
      v.mobile_len_m = 0.0;
      v.open = false;  // healed (any fixed residue stays in the resistance)
    }
  };
  // Atoms leaving the x=0 void travel in +x: growth for positive flux.
  evolve_void(void_start_, flux_at_face(0));
  // Atoms leaving the x=L void travel in -x: growth for negative flux.
  evolve_void(void_end_, -flux_at_face(n - 2));

  maybe_nucleate(WireEnd::kStart);
  maybe_nucleate(WireEnd::kEnd);

  if (total_void_length().value() >= material_.break_void_length.value()) {
    broken_ = true;
  }
  elapsed_s_ += dt;
}

void KorhonenSolver::maybe_nucleate(WireEnd end) {
  VoidState& v = end == WireEnd::kStart ? void_start_ : void_end_;
  if (v.open) return;
  const std::size_t node = end == WireEnd::kStart ? 0 : x_.size() - 1;
  if (sigma_[node] >= material_.critical_stress.value()) {
    v.open = true;
    ever_nucleated_ = true;
    if (v.mobile_len_m <= 0.0) {
      v.mobile_len_m = 0.5e-9;  // seed void
    }
    sigma_[node] = 0.0;
  }
}

Ohms KorhonenSolver::resistance(Celsius t) const {
  if (broken_) {
    // The liner has cracked: the line is effectively open.
    return Ohms{1e9};
  }
  return wire_.resistance_with_void(to_kelvin(t), total_void_length());
}

Pascals KorhonenSolver::stress_at(WireEnd end) const {
  return Pascals{end == WireEnd::kStart ? sigma_.front() : sigma_.back()};
}

const VoidState& KorhonenSolver::void_at(WireEnd end) const {
  return end == WireEnd::kStart ? void_start_ : void_end_;
}

Meters KorhonenSolver::total_void_length() const {
  return Meters{void_start_.total_m() + void_end_.total_m()};
}

bool KorhonenSolver::nucleated(WireEnd end) const {
  const VoidState& v = end == WireEnd::kStart ? void_start_ : void_end_;
  return v.open || v.total_m() > 0.0;
}

double KorhonenSolver::stress_integral() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < sigma_.size(); ++i) {
    acc += sigma_[i] * cell_w_[i];
  }
  return acc;
}

}  // namespace dh::em
