// Wire geometry and resistance model for the EM test structure.
//
// The paper's structure (Fig. 3): an on-chip "long and narrow" copper wire
// in 0.18 um technology, top metal (M6), dual damascene:
// 2.673 mm x 1.57 um x 0.8 um, 35.76 Ohm at room temperature.
#pragma once

#include "common/units.hpp"

namespace dh::em {

struct WireGeometry {
  Meters length{2.673e-3};
  Meters width{1.57e-6};
  Meters thickness{0.8e-6};
  /// Effective copper resistivity at the reference temperature (Ohm*m).
  double resistivity_ref = 1.680e-8;
  Celsius reference_temperature{20.0};
  /// Temperature coefficient of resistance (1/K).
  double tcr_per_k = 3.93e-3;
  /// Resistance per meter of the refractory liner/barrier that shunts
  /// current past a void (TaN-class liner, tens of nm thick).
  double liner_ohm_per_m = 6.25e7;

  [[nodiscard]] double cross_section_m2() const {
    return width.value() * thickness.value();
  }
  /// Resistivity at temperature t.
  [[nodiscard]] double resistivity_at(Kelvin t) const;
  /// Resistance of the pristine wire at temperature t.
  [[nodiscard]] Ohms resistance_at(Kelvin t) const;
  /// Resistance with a total void length `void_len` shunted through the
  /// liner.
  [[nodiscard]] Ohms resistance_with_void(Kelvin t, Meters void_len) const;
  /// Current through the wire for a given current density.
  [[nodiscard]] Amps current_for_density(AmpsPerM2 j) const;
  /// Blech product j*L (A/m) — immortality check input.
  [[nodiscard]] double blech_product(AmpsPerM2 j) const;
};

/// The exact structure of the paper's Fig. 3 (35.76 Ohm at room T).
[[nodiscard]] WireGeometry paper_wire();

}  // namespace dh::em
