#include "em/compact_em.hpp"

#include <cmath>
#include <numbers>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::em {

Seconds CompactEm::analytic_nucleation_time(const EmMaterialParams& material,
                                            const WireGeometry& wire,
                                            AmpsPerM2 j, Celsius t) {
  DH_REQUIRE(std::abs(j.value()) > 0.0,
             "nucleation time undefined at zero current");
  const Kelvin tk = to_kelvin(t);
  const double g =
      material.driving_force(wire.resistivity_at(tk), AmpsPerM2{
                                                          std::abs(j.value())});
  const double kappa = material.kappa(tk);
  const double ratio = material.critical_stress.value() / g;
  return Seconds{std::numbers::pi / 4.0 * ratio * ratio / kappa};
}

CompactEm::CompactEm(CompactEmParams params) : params_(params) {
  double tau_mid = params_.tau_ref.value();
  if (tau_mid <= 0.0) {
    tau_mid = analytic_nucleation_time(params_.material, params_.wire,
                                       params_.j_ref, params_.t_ref)
                  .value();
  }
  DH_REQUIRE(tau_mid > 0.0, "reference timescale must be positive");
  taus_ = {tau_mid / params_.tau_spread, tau_mid,
           tau_mid * params_.tau_spread};
  // Each pool saturates to 2*G*sqrt(kappa*tau_k/pi)*gain; we store the
  // sqrt(tau) factors and apply G*sqrt(kappa) at step time.
  for (std::size_t k = 0; k < taus_.size(); ++k) {
    gains_[k] = 2.0 * params_.kernel_gain *
                std::sqrt(taus_[k] / std::numbers::pi);
  }
  reset();
}

void CompactEm::reset() {
  pools_ = {0.0, 0.0, 0.0};
  void_open_ = false;
  void_polarity_ = 0;
  void_mobile_m_ = 0.0;
  void_fixed_m_ = 0.0;
  broken_ = false;
}

void CompactEm::step(AmpsPerM2 j, Celsius temperature, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (dt.value() == 0.0 || broken_) return;
  const Kelvin t = to_kelvin(temperature);
  const double kappa = params_.material.kappa(t);
  const double rho = params_.wire.resistivity_at(t);
  const double g = params_.material.driving_force(rho, j);

  // Temperature scales the pool kinetics through kappa (same Arrhenius as
  // the PDE). Pool targets follow the signed driving force; while a void
  // is open the stressed end is a free surface, so targets collapse to 0.
  const double kappa_ref =
      params_.material.kappa(to_kelvin(params_.t_ref));
  const double speedup = kappa / kappa_ref;
  for (std::size_t k = 0; k < taus_.size(); ++k) {
    const double target =
        void_open_ ? 0.0 : g * std::sqrt(kappa) * gains_[k];
    const double tau = taus_[k] / std::max(speedup, 1e-12);
    pools_[k] = target + (pools_[k] - target) * std::exp(-dt.value() / tau);
  }

  if (!void_open_) {
    const double sc = params_.material.critical_stress.value();
    const double stress = end_stress().value();
    if (std::abs(stress) >= sc) {
      void_open_ = true;
      void_polarity_ = stress > 0.0 ? 1 : -1;
      if (void_mobile_m_ <= 0.0) void_mobile_m_ = 0.5e-9;
    }
  }

  if (void_open_) {
    // Drift growth when the wind pushes atoms away from the void end;
    // healing when reversed.
    const double v = params_.material.drift_velocity(t, rho, j);
    const double rate = static_cast<double>(void_polarity_) * v;
    // Growth feeds the slit with partial efficiency; healing refills it at
    // full efficiency (same physics as the PDE solver).
    void_mobile_m_ +=
        rate * (rate > 0.0 ? params_.material.slit_efficiency : 1.0) *
        dt.value();
    const double fix = params_.material.fix_rate(t);
    const double converted =
        void_mobile_m_ * (1.0 - std::exp(-fix * dt.value()));
    if (converted > 0.0) {
      void_mobile_m_ -= converted;
      void_fixed_m_ += converted;
    }
    if (void_mobile_m_ <= 0.0) {
      void_mobile_m_ = 0.0;
      void_open_ = false;
      void_polarity_ = 0;
    }
    if (void_mobile_m_ + void_fixed_m_ >=
        params_.material.break_void_length.value()) {
      broken_ = true;
    }
  }
}

Pascals CompactEm::end_stress() const {
  return Pascals{pools_[0] + pools_[1] + pools_[2]};
}

Ohms CompactEm::resistance(Celsius t) const {
  if (broken_) return Ohms{1e9};
  return params_.wire.resistance_with_void(
      to_kelvin(t), Meters{void_mobile_m_ + void_fixed_m_});
}

void CompactEm::save_state(ckpt::Serializer& s) const {
  s.begin_section("CPEM");
  for (const double p : pools_) s.write_f64(p);
  s.write_bool(void_open_);
  s.write_i64(void_polarity_);
  s.write_f64(void_mobile_m_);
  s.write_f64(void_fixed_m_);
  s.write_bool(broken_);
}

void CompactEm::load_state(ckpt::Deserializer& d) {
  d.expect_section("CPEM");
  for (double& p : pools_) p = d.read_f64();
  void_open_ = d.read_bool();
  void_polarity_ = static_cast<int>(d.read_i64());
  void_mobile_m_ = d.read_f64();
  void_fixed_m_ = d.read_f64();
  broken_ = d.read_bool();
}

}  // namespace dh::em
