// Black's equation TTF model with a lognormal failure population — the
// classical statistical EM lifetime view, used as the baseline that the
// physics-based Korhonen solver (and the recovery scheduling built on it)
// is compared against, and by the PDN aging layer for fast per-segment
// lifetime estimates.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace dh::em {

struct BlackParams {
  /// Scale constant A chosen so the median TTF equals `ttf_ref` at the
  /// reference stress condition.
  Seconds ttf_ref{0.0};
  AmpsPerM2 j_ref{0.0};
  Celsius t_ref{25.0};
  double current_exponent = 2.0;  // n (void-nucleation limited)
  ElectronVolts ea{0.90};
  double sigma_lognormal = 0.3;   // population spread of ln(TTF)

  /// Construct from a known median lifetime at a reference condition.
  [[nodiscard]] static BlackParams from_reference(Seconds ttf_ref,
                                                  AmpsPerM2 j_ref,
                                                  Celsius t_ref);
};

class BlackModel {
 public:
  explicit BlackModel(BlackParams params);

  /// Median time-to-failure at the given condition.
  [[nodiscard]] Seconds median_ttf(AmpsPerM2 j, Celsius t) const;

  /// Lifetime quantile: time by which `fraction` of a population fails.
  [[nodiscard]] Seconds ttf_quantile(AmpsPerM2 j, Celsius t,
                                     double fraction) const;

  /// Draw one sample lifetime from the lognormal population.
  [[nodiscard]] Seconds sample_ttf(AmpsPerM2 j, Celsius t, Rng& rng) const;

  /// Acceleration factor of condition (j, t) relative to (j2, t2).
  [[nodiscard]] double acceleration_factor(AmpsPerM2 j, Celsius t,
                                           AmpsPerM2 j2, Celsius t2) const;

  [[nodiscard]] const BlackParams& params() const { return params_; }

 private:
  BlackParams params_;
};

}  // namespace dh::em
