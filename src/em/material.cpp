#include "em/material.hpp"

#include <cmath>

#include "common/arrhenius.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace dh::em {

double EmMaterialParams::diffusivity(Kelvin t) const {
  return d0_m2_per_s * boltzmann_factor(diffusion_ea, t);
}

double EmMaterialParams::kappa(Kelvin t) const {
  const double kt_j = constants::kBoltzmannJ * t.value();
  return diffusivity(t) * bulk_modulus_pa * atomic_volume_m3 / kt_j;
}

double EmMaterialParams::driving_force(double resistivity_ohm_m,
                                       AmpsPerM2 j) const {
  return constants::kElementaryCharge * z_eff * resistivity_ohm_m *
         j.value() / atomic_volume_m3;
}

double EmMaterialParams::drift_velocity(Kelvin t, double resistivity_ohm_m,
                                        AmpsPerM2 j) const {
  const double kt_j = constants::kBoltzmannJ * t.value();
  return diffusivity(t) * constants::kElementaryCharge * z_eff *
         resistivity_ohm_m * j.value() / kt_j;
}

double EmMaterialParams::fix_rate(Kelvin t) const {
  return 1.0 / fix_tau0_s * boltzmann_factor(fix_ea, t);
}

double EmMaterialParams::blech_threshold(double resistivity_ohm_m) const {
  DH_REQUIRE(resistivity_ohm_m > 0.0, "resistivity must be positive");
  return 2.0 * critical_stress.value() * atomic_volume_m3 /
         (constants::kElementaryCharge * z_eff * resistivity_ohm_m);
}

EmMaterialParams paper_calibrated_em_material() { return EmMaterialParams{}; }

}  // namespace dh::em
