// Four-point resistance measurement of an EM test wire — the paper's
// probe-pad setup (Fig. 3) with realistic meter resolution and noise.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace dh::em {

struct EmSensorParams {
  double relative_noise = 5e-4;   // contact/thermal noise
  Ohms resolution{0.01};          // meter quantization
};

class EmSensor {
 public:
  EmSensor(EmSensorParams params, Rng rng);

  /// One resistance measurement of a wire whose true resistance is `r`.
  [[nodiscard]] Ohms measure(Ohms r);

 private:
  EmSensorParams params_;
  Rng rng_;
};

/// The paper's accelerated EM conditions (Figs. 5-7): 230 C chamber,
/// +/- 7.96 MA/cm^2.
namespace paper_em_conditions {
[[nodiscard]] inline Celsius chamber() { return Celsius{230.0}; }
[[nodiscard]] inline AmpsPerM2 stress_density() {
  return mega_amps_per_cm2(7.96);
}
[[nodiscard]] inline AmpsPerM2 reverse_density() {
  return mega_amps_per_cm2(-7.96);
}
}  // namespace paper_em_conditions

}  // namespace dh::em
