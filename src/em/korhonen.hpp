// Korhonen-type 1-D electromigration stress-evolution solver.
//
// Physics (Korhonen 1993; Huang [5] and Sukharev [12] in the paper's
// reference list):
//
//   d(sigma)/dt = d/dx [ kappa * ( d(sigma)/dx + G ) ]
//
// where sigma is the hydrostatic stress in the line (positive = tensile),
// kappa = Da*B*Omega/kT, and G = e*Z*rho*j/Omega is the electron-wind
// driving force. Both line ends are flux-blocked (dual-damascene vias act
// as diffusion barriers). For forward current (j > 0) tensile stress
// builds at the cathode (x = 0); when it exceeds the critical stress a
// void nucleates there (the paper's *void nucleation phase*, during which
// the resistance is flat). The void end then becomes a free surface
// (sigma = 0) and the void grows at the drift velocity (the *void growth
// phase*, resistance rising as current shunts through the liner).
// Reversing the current reverses the atom flux and heals the void — the
// paper's *EM active recovery* — and, if held after full healing, builds
// tensile stress at the opposite end and nucleates a reverse void
// (the "reverse current-induced EM" of Fig. 6).
//
// The permanent component of Fig. 5 is modeled as first-order
// *immobilization* of void length (interface passivation): mobile void
// converts to unhealable void with an Arrhenius rate, so recovery applied
// early in the growth phase is complete (Fig. 6) while late recovery
// leaves a residue (Fig. 5).
//
// Numerics: finite volume on a two-sided geometrically stretched grid
// (all the action lives within a few diffusion lengths of the ends of the
// 2.673 mm line), backward-Euler time stepping with a tridiagonal solve.
#pragma once

#include <vector>

#include "common/math/linalg.hpp"
#include "common/units.hpp"
#include "em/material.hpp"
#include "em/wire.hpp"

namespace dh::em {

enum class WireEnd { kStart, kEnd };  // x = 0 and x = L

struct VoidState {
  bool open = false;
  double mobile_len_m = 0.0;  // healable void length
  double fixed_len_m = 0.0;   // immobilized (permanent) void length
  [[nodiscard]] double total_m() const { return mobile_len_m + fixed_len_m; }
};

struct KorhonenGridParams {
  Meters first_cell{0.2e-6};
  double stretch_ratio = 1.3;
  Seconds max_substep{30.0};
};

class KorhonenSolver {
 public:
  KorhonenSolver(WireGeometry wire, EmMaterialParams material,
                 KorhonenGridParams grid = {});

  /// Advance by `dt` under current density `j` (sign = direction) at the
  /// given chamber/line temperature. Internally substeps.
  void step(AmpsPerM2 j, Celsius temperature, Seconds dt);

  /// Wire resistance at measurement temperature `t`, including liner
  /// shunting through both voids. Returns a large value once broken.
  [[nodiscard]] Ohms resistance(Celsius t) const;

  [[nodiscard]] Pascals stress_at(WireEnd end) const;
  [[nodiscard]] const VoidState& void_at(WireEnd end) const;
  [[nodiscard]] Meters total_void_length() const;
  [[nodiscard]] bool nucleated(WireEnd end) const;
  /// True once either void has ever opened.
  [[nodiscard]] bool ever_nucleated() const { return ever_nucleated_; }
  [[nodiscard]] bool broken() const { return broken_; }
  [[nodiscard]] Seconds elapsed() const { return Seconds{elapsed_s_}; }

  /// Total stress integral over the line (Pa*m) — conserved while both
  /// ends are blocked (used by the property tests).
  [[nodiscard]] double stress_integral() const;

  [[nodiscard]] const std::vector<double>& grid() const { return x_; }
  [[nodiscard]] const std::vector<double>& stress_profile() const {
    return sigma_;
  }

  [[nodiscard]] const WireGeometry& wire() const { return wire_; }
  [[nodiscard]] const EmMaterialParams& material() const { return material_; }

 private:
  void substep(AmpsPerM2 j, Kelvin t, double dt);
  void maybe_nucleate(WireEnd end);

  WireGeometry wire_;
  EmMaterialParams material_;
  KorhonenGridParams grid_params_;
  std::vector<double> x_;       // node coordinates
  std::vector<double> cell_w_;  // finite-volume cell widths
  std::vector<double> sigma_;   // stress at nodes (Pa)
  // Backward-Euler assembly buffers + Thomas scratch, sized once in the
  // constructor and reused by every substep of every step (the per-wire
  // hot loop of population sweeps allocates nothing after construction).
  std::vector<double> tri_lower_;
  std::vector<double> tri_diag_;
  std::vector<double> tri_upper_;
  std::vector<double> tri_rhs_;
  math::TridiagonalWorkspace tri_ws_;
  VoidState void_start_;
  VoidState void_end_;
  bool broken_ = false;
  bool ever_nucleated_ = false;
  double elapsed_s_ = 0.0;
};

}  // namespace dh::em
