#include "em/em_sensor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dh::em {

EmSensor::EmSensor(EmSensorParams params, Rng rng)
    : params_(params), rng_(rng) {
  DH_REQUIRE(params_.resolution.value() > 0.0,
             "meter resolution must be positive");
}

Ohms EmSensor::measure(Ohms r) {
  const double noisy =
      r.value() * (1.0 + rng_.normal(0.0, params_.relative_noise));
  const double q = params_.resolution.value();
  return Ohms{std::round(noisy / q) * q};
}

}  // namespace dh::em
