#include "em/black.hpp"

#include <cmath>

#include "common/arrhenius.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace dh::em {

BlackParams BlackParams::from_reference(Seconds ttf_ref, AmpsPerM2 j_ref,
                                        Celsius t_ref) {
  BlackParams p;
  p.ttf_ref = ttf_ref;
  p.j_ref = j_ref;
  p.t_ref = t_ref;
  return p;
}

BlackModel::BlackModel(BlackParams params) : params_(params) {
  DH_REQUIRE(params_.ttf_ref.value() > 0.0,
             "reference TTF must be positive");
  DH_REQUIRE(std::abs(params_.j_ref.value()) > 0.0,
             "reference current density must be non-zero");
  DH_REQUIRE(params_.current_exponent > 0.0,
             "Black current exponent must be positive");
}

Seconds BlackModel::median_ttf(AmpsPerM2 j, Celsius t) const {
  DH_REQUIRE(std::abs(j.value()) > 0.0,
             "TTF undefined at zero current (wire is immortal)");
  const double jr = std::abs(j.value() / params_.j_ref.value());
  const double current_term = std::pow(jr, -params_.current_exponent);
  // exp(Ea/kT - Ea/kT_ref): hotter -> shorter life.
  const double temp_term =
      1.0 / arrhenius_acceleration(params_.ea, to_kelvin(t),
                                   to_kelvin(params_.t_ref));
  return Seconds{params_.ttf_ref.value() * current_term * temp_term};
}

Seconds BlackModel::ttf_quantile(AmpsPerM2 j, Celsius t,
                                 double fraction) const {
  const double median = median_ttf(j, t).value();
  const double z = stats::inverse_normal_cdf(fraction);
  return Seconds{median * std::exp(params_.sigma_lognormal * z)};
}

Seconds BlackModel::sample_ttf(AmpsPerM2 j, Celsius t, Rng& rng) const {
  const double median = median_ttf(j, t).value();
  return Seconds{rng.lognormal(std::log(median), params_.sigma_lognormal)};
}

double BlackModel::acceleration_factor(AmpsPerM2 j, Celsius t, AmpsPerM2 j2,
                                       Celsius t2) const {
  return median_ttf(j2, t2).value() / median_ttf(j, t).value();
}

}  // namespace dh::em
