#include "sram/sram_cell.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/mna.hpp"
#include "common/error.hpp"
#include "common/math/interp.hpp"

namespace dh::sram {

SramCell::SramCell(SramCellParams params)
    : params_(params),
      left_pmos_(params.bti),
      right_pmos_(params.bti) {
  DH_REQUIRE(params_.vdd.value() > params_.pmos_vth,
             "supply must exceed the PMOS threshold");
}

void SramCell::step(CellMode mode, bool stored_bit, Celsius temperature,
                    Seconds dt) {
  switch (mode) {
    case CellMode::kHold: {
      // The PMOS on the "1" side conducts: |Vsg| = VDD (NBTI stress).
      const device::BtiCondition stressed{params_.vdd, temperature};
      const device::BtiCondition resting{Volts{0.0}, temperature};
      left_pmos_.apply(stored_bit ? stressed : resting, dt);
      right_pmos_.apply(stored_bit ? resting : stressed, dt);
      break;
    }
    case CellMode::kRecoveryBoost: {
      const device::BtiCondition boost{params_.recovery_bias, temperature};
      left_pmos_.apply(boost, dt);
      right_pmos_.apply(boost, dt);
      break;
    }
  }
}

Volts SramCell::left_pmos_dvth() const { return left_pmos_.delta_vth(); }
Volts SramCell::right_pmos_dvth() const { return right_pmos_.delta_vth(); }

std::vector<double> inverter_vtc(const SramCellParams& params,
                                 Volts pmos_dvth, Volts nmos_dvth,
                                 const std::vector<double>& vin) {
  std::vector<double> out;
  out.reserve(vin.size());
  for (const double v : vin) {
    circuit::Circuit c;
    const auto vdd = c.add_node("vdd");
    const auto in = c.add_node("in");
    const auto o = c.add_node("out");
    (void)c.add_voltage_source(vdd, circuit::Circuit::ground(),
                               circuit::Waveform::dc(params.vdd.value()));
    (void)c.add_voltage_source(in, circuit::Circuit::ground(),
                               circuit::Waveform::dc(v));
    circuit::MosfetParams p;
    p.polarity = circuit::MosPolarity::kPmos;
    p.vth = params.pmos_vth + pmos_dvth.value();
    p.beta = params.pmos_beta;
    circuit::MosfetParams n;
    n.polarity = circuit::MosPolarity::kNmos;
    n.vth = params.nmos_vth + nmos_dvth.value();
    n.beta = params.nmos_beta;
    (void)c.add_mosfet(p, in, o, vdd);
    (void)c.add_mosfet(n, in, o, circuit::Circuit::ground());
    out.push_back(c.solve_dc().voltage(o));
  }
  return out;
}

namespace {

/// Inverts a monotonically *decreasing* tabulated VTC: returns y with
/// f(y) = x (clamped).
double invert_decreasing(const std::vector<double>& xs,
                         const std::vector<double>& fs, double target) {
  // Reverse so the table is increasing in f.
  std::vector<double> f_rev(fs.rbegin(), fs.rend());
  std::vector<double> x_rev(xs.rbegin(), xs.rend());
  // Enforce strictly increasing f for the interpolator.
  for (std::size_t i = 1; i < f_rev.size(); ++i) {
    if (f_rev[i] <= f_rev[i - 1]) f_rev[i] = f_rev[i - 1] + 1e-12;
  }
  return math::interp_linear(f_rev, x_rev, target);
}

/// Largest square of side s that fits in the lobe where curve A
/// (y = f_a(x)) lies above the inverse of curve B. Both boundaries are
/// decreasing, so the square [x, x+s] x [y, y+s] fits iff
/// f_a(x+s) - f_b^{-1}(x) >= s.
double lobe_square(const std::vector<double>& vin,
                   const std::vector<double>& f_a,
                   const std::vector<double>& f_b) {
  const double vmax = vin.back();
  auto fits = [&](double s) {
    for (int k = 0; k <= 160; ++k) {
      const double x = (vmax - s) * k / 160.0;
      const double top = math::interp_linear(vin, f_a, x + s);
      const double bottom = invert_decreasing(vin, f_b, x);
      if (top - bottom >= s) return true;
    }
    return false;
  };
  double lo = 0.0;
  double hi = vmax;
  if (!fits(1e-6)) return 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double snm_from_vtcs(const std::vector<double>& vin,
                     const std::vector<double>& vtc1,
                     const std::vector<double>& vtc2) {
  DH_REQUIRE(vin.size() == vtc1.size() && vin.size() == vtc2.size() &&
                 vin.size() >= 4,
             "VTC tables must match and have >= 4 points");
  // The butterfly has two lobes; the hold SNM is the side of the largest
  // square embedded in the *smaller* lobe. Lobe 1: curve A above B's
  // inverse; lobe 2: the mirror case with the roles swapped.
  const double lobe1 = lobe_square(vin, vtc1, vtc2);
  const double lobe2 = lobe_square(vin, vtc2, vtc1);
  return std::min(lobe1, lobe2);
}

namespace {

double cell_snm(const SramCellParams& params, Volts left_dvth,
                Volts right_dvth) {
  const auto vin = math::linspace(0.0, params.vdd.value(), 41);
  // In the cross-coupled pair, the inverter driving Q uses the left
  // PMOS and the one driving Qb uses the right PMOS. PBTI on the NMOS
  // devices is second order for hold SNM and held fresh here.
  const auto f1 = inverter_vtc(params, left_dvth, Volts{0.0}, vin);
  const auto f2 = inverter_vtc(params, right_dvth, Volts{0.0}, vin);
  return snm_from_vtcs(vin, f1, f2);
}

}  // namespace

Volts SramCell::hold_snm() const {
  return Volts{cell_snm(params_, left_pmos_.delta_vth(),
                        right_pmos_.delta_vth())};
}

Volts SramCell::fresh_snm() const {
  return Volts{cell_snm(params_, Volts{0.0}, Volts{0.0})};
}

}  // namespace dh::sram
