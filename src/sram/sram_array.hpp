// SRAM array with data-pattern statistics and recovery-boost scheduling —
// the array-level view of [17]'s proactive wearout recovery, driven by
// our calibrated BTI model.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sram/sram_cell.hpp"

namespace dh::sram {

/// How the stored data behaves over time.
enum class DataPattern {
  kStatic,        // cells hold their initial bits forever (worst case)
  kFlipping,      // bits re-randomized every step (signal-prob balancing)
};

struct SramArrayParams {
  std::size_t cells = 64;
  SramCellParams cell{};
  DataPattern pattern = DataPattern::kStatic;
  double p_one = 0.5;  // probability a cell stores 1
  std::uint64_t seed = 17;
};

struct SramArrayHealth {
  Volts worst_snm{0.0};
  Volts mean_snm{0.0};
  Volts worst_pmos_dvth{0.0};
};

class SramArray {
 public:
  explicit SramArray(SramArrayParams params);

  /// Advance the whole array: `boost_fraction` of the quantum is spent in
  /// recovery boost (cells idle), the rest holding data.
  void step(Celsius temperature, Seconds dt, double boost_fraction = 0.0);

  /// Full-accuracy health scan (computes every cell's SNM; O(cells)
  /// circuit solves — use sparingly).
  [[nodiscard]] SramArrayHealth scan_health() const;

  /// Cheap health proxy: SNM of the cell with the worst PMOS asymmetry.
  [[nodiscard]] SramArrayHealth worst_cell_health() const;

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] const SramCell& cell(std::size_t i) const;

 private:
  SramArrayParams params_;
  std::vector<SramCell> cells_;
  std::vector<bool> bits_;
  Rng rng_;
};

}  // namespace dh::sram
