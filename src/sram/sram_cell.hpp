// 6T SRAM cell with per-device BTI wearout — the substrate for the
// "recovery boost" idea the paper builds on (Shin et al. [17]: raise the
// gate voltages of a memory cell to put PMOS devices into recovery
// enhancement mode). The cell's health metric is its hold static noise
// margin (SNM), computed from the two cross-coupled inverters' transfer
// curves through the MNA circuit simulator.
//
// NBTI asymmetry: in a cell holding a constant value, the PMOS on the
// stored-"1" side conducts (gate low -> |Vsg| = VDD) and ages, while the
// other PMOS rests. Data that never flips therefore skews the butterfly
// curve — exactly the failure mode recovery boost targets.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "device/compact_bti.hpp"

namespace dh::sram {

struct SramCellParams {
  Volts vdd{0.9};
  double pmos_vth = 0.30;
  double nmos_vth = 0.28;
  double pmos_beta = 0.8e-4;   // weak pull-ups (standard 6T ratioing)
  double nmos_beta = 2.0e-4;   // strong pull-downs
  Volts recovery_bias{-0.3};   // assist/boost bias for PMOS recovery
  device::CompactBtiParams bti{};
};

/// What the cell spends a time slice doing.
enum class CellMode {
  kHold,          // statically holding `stored_bit`
  kRecoveryBoost, // both PMOS driven into active recovery (cell idle)
};

class SramCell {
 public:
  explicit SramCell(SramCellParams params);

  /// Advance wearout. While holding, the PMOS on the side storing "1"
  /// is under NBTI stress; in recovery-boost mode both PMOS heal.
  void step(CellMode mode, bool stored_bit, Celsius temperature,
            Seconds dt);

  /// Write the opposite bit (models data-flipping/rebalancing policies;
  /// free in this model — the stress side just changes on the next step).
  [[nodiscard]] Volts left_pmos_dvth() const;
  [[nodiscard]] Volts right_pmos_dvth() const;

  /// Hold static noise margin of the aged cell, in volts (the side of
  /// the largest square embedded in the butterfly plot).
  [[nodiscard]] Volts hold_snm() const;

  /// Fresh-cell SNM for the same parameters (reference).
  [[nodiscard]] Volts fresh_snm() const;

  [[nodiscard]] const SramCellParams& params() const { return params_; }

 private:
  SramCellParams params_;
  device::CompactBti left_pmos_;   // drives node Q high (stressed when Q=1)
  device::CompactBti right_pmos_;  // drives node Qb high (stressed when Q=0)
};

/// Static noise margin from two inverter voltage transfer curves
/// (45-degree rotation method). `vtc1` maps Vin->Vout for inverter 1,
/// `vtc2` for inverter 2; both sampled on `vin` (volts, increasing).
[[nodiscard]] double snm_from_vtcs(const std::vector<double>& vin,
                                   const std::vector<double>& vtc1,
                                   const std::vector<double>& vtc2);

/// Inverter VTC with aged device thresholds, solved point by point with
/// the MNA simulator.
[[nodiscard]] std::vector<double> inverter_vtc(
    const SramCellParams& params, Volts pmos_dvth, Volts nmos_dvth,
    const std::vector<double>& vin);

}  // namespace dh::sram
