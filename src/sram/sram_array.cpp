#include "sram/sram_array.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dh::sram {

SramArray::SramArray(SramArrayParams params)
    : params_(params), rng_(params.seed) {
  DH_REQUIRE(params_.cells >= 1, "array needs at least one cell");
  DH_REQUIRE(params_.p_one >= 0.0 && params_.p_one <= 1.0,
             "p_one must be a probability");
  cells_.reserve(params_.cells);
  bits_.reserve(params_.cells);
  for (std::size_t i = 0; i < params_.cells; ++i) {
    cells_.emplace_back(params_.cell);
    bits_.push_back(rng_.bernoulli(params_.p_one));
  }
}

void SramArray::step(Celsius temperature, Seconds dt,
                     double boost_fraction) {
  DH_REQUIRE(boost_fraction >= 0.0 && boost_fraction <= 1.0,
             "boost fraction must be in [0,1]");
  const Seconds hold{dt.value() * (1.0 - boost_fraction)};
  const Seconds boost{dt.value() * boost_fraction};
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (params_.pattern == DataPattern::kFlipping) {
      bits_[i] = rng_.bernoulli(params_.p_one);
    }
    if (hold.value() > 0.0) {
      cells_[i].step(CellMode::kHold, bits_[i], temperature, hold);
    }
    if (boost.value() > 0.0) {
      cells_[i].step(CellMode::kRecoveryBoost, bits_[i], temperature,
                     boost);
    }
  }
}

SramArrayHealth SramArray::scan_health() const {
  SramArrayHealth h;
  h.worst_snm = Volts{1e9};
  double acc = 0.0;
  for (const auto& c : cells_) {
    const Volts snm = c.hold_snm();
    h.worst_snm = std::min(h.worst_snm, snm);
    acc += snm.value();
    h.worst_pmos_dvth = std::max(
        {h.worst_pmos_dvth, c.left_pmos_dvth(), c.right_pmos_dvth()});
  }
  h.mean_snm = Volts{acc / static_cast<double>(cells_.size())};
  return h;
}

SramArrayHealth SramArray::worst_cell_health() const {
  // The hold SNM is governed by the *asymmetry* between the two pull-ups;
  // find the most asymmetric cell and compute only its SNM.
  const SramCell* worst = &cells_.front();
  double worst_asym = -1.0;
  SramArrayHealth h;
  for (const auto& c : cells_) {
    const double asym = std::abs(c.left_pmos_dvth().value() -
                                 c.right_pmos_dvth().value());
    if (asym > worst_asym) {
      worst_asym = asym;
      worst = &c;
    }
    h.worst_pmos_dvth = std::max(
        {h.worst_pmos_dvth, c.left_pmos_dvth(), c.right_pmos_dvth()});
  }
  h.worst_snm = worst->hold_snm();
  h.mean_snm = h.worst_snm;  // proxy scan does not average
  return h;
}

const SramCell& SramArray::cell(std::size_t i) const {
  DH_REQUIRE(i < cells_.size(), "cell index out of range");
  return cells_[i];
}

}  // namespace dh::sram
