#include "sram/sram_array.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace dh::sram {

SramArray::SramArray(SramArrayParams params)
    : params_(params), rng_(params.seed) {
  DH_REQUIRE(params_.cells >= 1, "array needs at least one cell");
  DH_REQUIRE(params_.p_one >= 0.0 && params_.p_one <= 1.0,
             "p_one must be a probability");
  cells_.reserve(params_.cells);
  bits_.reserve(params_.cells);
  for (std::size_t i = 0; i < params_.cells; ++i) {
    cells_.emplace_back(params_.cell);
    bits_.push_back(rng_.bernoulli(params_.p_one));
  }
}

void SramArray::step(Celsius temperature, Seconds dt,
                     double boost_fraction) {
  DH_REQUIRE(boost_fraction >= 0.0 && boost_fraction <= 1.0,
             "boost fraction must be in [0,1]");
  const Seconds hold{dt.value() * (1.0 - boost_fraction)};
  const Seconds boost{dt.value() * boost_fraction};
  // Data re-randomization stays serial (one shared stream, draw order is
  // part of the array's deterministic behaviour); the per-cell aging
  // physics is independent and runs over the pool.
  if (params_.pattern == DataPattern::kFlipping) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      bits_[i] = rng_.bernoulli(params_.p_one);
    }
  }
  parallel_for(cells_.size(), [&](std::size_t i) {
    if (hold.value() > 0.0) {
      cells_[i].step(CellMode::kHold, bits_[i], temperature, hold);
    }
    if (boost.value() > 0.0) {
      cells_[i].step(CellMode::kRecoveryBoost, bits_[i], temperature,
                     boost);
    }
  });
}

SramArrayHealth SramArray::scan_health() const {
  // The per-cell SNM is a butterfly-curve circuit solve — the expensive
  // part — so it fans out over the pool; the reduction runs serially in
  // index order so the mean is bit-identical at any thread count.
  const std::vector<double> snm =
      parallel_map(cells_.size(), [&](std::size_t i) {
        return cells_[i].hold_snm().value();
      });
  SramArrayHealth h;
  h.worst_snm = Volts{1e9};
  double acc = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    h.worst_snm = std::min(h.worst_snm, Volts{snm[i]});
    acc += snm[i];
    h.worst_pmos_dvth =
        std::max({h.worst_pmos_dvth, cells_[i].left_pmos_dvth(),
                  cells_[i].right_pmos_dvth()});
  }
  h.mean_snm = Volts{acc / static_cast<double>(cells_.size())};
  return h;
}

SramArrayHealth SramArray::worst_cell_health() const {
  // The hold SNM is governed by the *asymmetry* between the two pull-ups;
  // find the most asymmetric cell and compute only its SNM.
  const SramCell* worst = &cells_.front();
  double worst_asym = -1.0;
  SramArrayHealth h;
  for (const auto& c : cells_) {
    const double asym = std::abs(c.left_pmos_dvth().value() -
                                 c.right_pmos_dvth().value());
    if (asym > worst_asym) {
      worst_asym = asym;
      worst = &c;
    }
    h.worst_pmos_dvth = std::max(
        {h.worst_pmos_dvth, c.left_pmos_dvth(), c.right_pmos_dvth()});
  }
  h.worst_snm = worst->hold_snm();
  h.mean_snm = h.worst_snm;  // proxy scan does not average
  return h;
}

const SramCell& SramArray::cell(std::size_t i) const {
  DH_REQUIRE(i < cells_.size(), "cell index out of range");
  return cells_[i];
}

}  // namespace dh::sram
