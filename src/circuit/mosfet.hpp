// EKV-flavoured MOSFET model: a single smooth expression covering weak
// inversion, triode, and saturation — chosen for Newton-Raphson
// robustness. Strong-inversion saturation reduces to the familiar
// (beta/2)*(Vgs-Vth)^2*(1+lambda*Vds).
#pragma once

#include "common/units.hpp"

namespace dh::circuit {

enum class MosPolarity { kNmos, kPmos };

struct MosfetParams {
  MosPolarity polarity = MosPolarity::kNmos;
  double vth = 0.30;        // threshold voltage (magnitude), V
  double beta = 2e-3;       // transconductance factor kp*W/L, A/V^2
  double lambda = 0.05;     // channel-length modulation, 1/V
  double n = 1.4;           // subthreshold slope factor
  double temp_c = 27.0;     // device temperature (sets VT)

  [[nodiscard]] double thermal_voltage() const;
};

/// Drain current and its partial derivatives w.r.t. each terminal
/// voltage. Terminal voltages are absolute; the model internally mirrors
/// PMOS and swaps source/drain for negative Vds so callers never need to.
/// `ids` is the current flowing into the drain terminal and out of the
/// source terminal (negative for a conducting PMOS).
struct MosfetEval {
  double ids = 0.0;
  double d_vg = 0.0;  // d ids / d vg
  double d_vd = 0.0;  // d ids / d vd
  double d_vs = 0.0;  // d ids / d vs
};

[[nodiscard]] MosfetEval evaluate_mosfet(const MosfetParams& p, double vg,
                                         double vd, double vs);

}  // namespace dh::circuit
