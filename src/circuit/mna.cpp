#include "circuit/mna.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math/linalg.hpp"

namespace dh::circuit {

double DcSolution::voltage(NodeId n) const {
  if (n == 0) return 0.0;
  DH_REQUIRE(n - 1 < node_count, "node id out of range");
  return x[n - 1];
}

double DcSolution::branch_current(std::size_t branch) const {
  DH_REQUIRE(node_count - 1 + branch < x.size(),
             "branch index out of range");
  return x[node_count - 1 + branch];
}

const TimeSeries& TransientResult::trace(const std::string& label) const {
  for (const auto& t : traces) {
    if (t.name() == label) return t;
  }
  throw Error("no transient trace named '" + label + "'");
}

NodeId Circuit::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  return node_names_.size() - 1;
}

NodeId Circuit::node(const std::string& name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return i;
  }
  throw Error("no node named '" + name + "'");
}

void Circuit::add_resistor(NodeId a, NodeId b, Ohms r) {
  DH_REQUIRE(r.value() > 0.0, "resistance must be positive");
  DH_REQUIRE(a < node_count() && b < node_count(), "resistor node invalid");
  resistors_.push_back({a, b, 1.0 / r.value()});
}

void Circuit::add_capacitor(NodeId a, NodeId b, Farads c) {
  DH_REQUIRE(c.value() > 0.0, "capacitance must be positive");
  DH_REQUIRE(a < node_count() && b < node_count(), "capacitor node invalid");
  capacitors_.push_back({a, b, c.value()});
}

void Circuit::add_current_source(NodeId from, NodeId to, Waveform w) {
  DH_REQUIRE(from < node_count() && to < node_count(),
             "current source node invalid");
  isources_.push_back({from, to, std::move(w)});
}

VsourceId Circuit::add_voltage_source(NodeId plus, NodeId minus, Waveform w) {
  DH_REQUIRE(plus < node_count() && minus < node_count(),
             "voltage source node invalid");
  vsources_.push_back({plus, minus, std::move(w)});
  return VsourceId{vsources_.size() - 1};
}

MosfetId Circuit::add_mosfet(const MosfetParams& params, NodeId gate,
                             NodeId drain, NodeId source) {
  DH_REQUIRE(gate < node_count() && drain < node_count() &&
                 source < node_count(),
             "mosfet node invalid");
  mosfets_.push_back({params, gate, drain, source});
  return MosfetId{mosfets_.size() - 1};
}

SwitchId Circuit::add_switch(NodeId a, NodeId b, Ohms r_on, Ohms r_off) {
  DH_REQUIRE(a < node_count() && b < node_count(), "switch node invalid");
  DH_REQUIRE(r_on.value() > 0.0 && r_off.value() > r_on.value(),
             "switch resistances invalid");
  switches_.push_back({a, b, 1.0 / r_on.value(), 1.0 / r_off.value(), false});
  return SwitchId{switches_.size() - 1};
}

void Circuit::set_switch(SwitchId s, bool closed) {
  DH_REQUIRE(s.index < switches_.size(), "switch id invalid");
  switches_[s.index].closed = closed;
}

MosfetParams& Circuit::mosfet_params(MosfetId m) {
  DH_REQUIRE(m.index < mosfets_.size(), "mosfet id invalid");
  return mosfets_[m.index].params;
}

// ---- Assembly -------------------------------------------------------------

class AssembleOut {
 public:
  AssembleOut(std::size_t n_unknowns, std::size_t n_nodes)
      : g(n_unknowns, n_unknowns, 0.0), rhs(n_unknowns, 0.0),
        n_nodes_(n_nodes) {}

  // Node index -> unknown index (ground excluded).
  [[nodiscard]] bool grounded(NodeId n) const { return n == 0; }
  [[nodiscard]] std::size_t idx(NodeId n) const { return n - 1; }

  void add_conductance(NodeId a, NodeId b, double cond) {
    if (!grounded(a)) g(idx(a), idx(a)) += cond;
    if (!grounded(b)) g(idx(b), idx(b)) += cond;
    if (!grounded(a) && !grounded(b)) {
      g(idx(a), idx(b)) -= cond;
      g(idx(b), idx(a)) -= cond;
    }
  }
  /// Current `i` flows out of node a into node b (through the element).
  void add_current(NodeId a, NodeId b, double i) {
    if (!grounded(a)) rhs[idx(a)] -= i;
    if (!grounded(b)) rhs[idx(b)] += i;
  }
  /// Transconductance: current out of `a` into `b` controlled by the
  /// voltage of node `ctrl`: i = gm * v(ctrl).
  void add_transconductance(NodeId a, NodeId b, NodeId ctrl, double gm) {
    if (grounded(ctrl)) return;
    if (!grounded(a)) g(idx(a), idx(ctrl)) += gm;
    if (!grounded(b)) g(idx(b), idx(ctrl)) -= gm;
  }

  math::Matrix g;
  std::vector<double> rhs;

 private:
  std::size_t n_nodes_;
};

void Circuit::assemble(std::vector<double>& x_guess, double t, double gmin,
                       const std::vector<double>* x_prev, double dt,
                       AssembleOut& out) const {
  auto v_of = [&](NodeId n) { return n == 0 ? 0.0 : x_guess[n - 1]; };
  auto v_prev_of = [&](NodeId n) {
    return (n == 0 || x_prev == nullptr) ? 0.0 : (*x_prev)[n - 1];
  };

  // gmin leak on every non-ground node.
  for (std::size_t n = 1; n < node_count(); ++n) {
    out.g(n - 1, n - 1) += gmin;
  }

  for (const auto& r : resistors_) out.add_conductance(r.a, r.b, r.g);

  for (const auto& s : switches_) {
    out.add_conductance(s.a, s.b, s.closed ? s.g_on : s.g_off);
  }

  for (const auto& c : capacitors_) {
    if (x_prev == nullptr) continue;  // DC: capacitor is open
    const double geq = c.c / dt;
    out.add_conductance(c.a, c.b, geq);
    const double v0 = v_prev_of(c.a) - v_prev_of(c.b);
    // Companion current source geq*v0 from b to a (it fights change).
    out.add_current(c.a, c.b, -geq * v0);
  }

  for (const auto& i : isources_) {
    out.add_current(i.from, i.to, i.w.value(t));
  }

  for (const auto& m : mosfets_) {
    const MosfetEval e =
        evaluate_mosfet(m.params, v_of(m.g), v_of(m.d), v_of(m.s));
    // Linearized: i(v) = ids + d_vg*dvg + d_vd*dvd + d_vs*dvs.
    // Current flows drain -> source through the device.
    const double ieq = e.ids - e.d_vg * v_of(m.g) - e.d_vd * v_of(m.d) -
                       e.d_vs * v_of(m.s);
    out.add_current(m.d, m.s, ieq);
    out.add_transconductance(m.d, m.s, m.g, e.d_vg);
    out.add_transconductance(m.d, m.s, m.d, e.d_vd);
    out.add_transconductance(m.d, m.s, m.s, e.d_vs);
  }

  const std::size_t nn = node_count() - 1;
  for (std::size_t k = 0; k < vsources_.size(); ++k) {
    const auto& vs = vsources_[k];
    const std::size_t br = nn + k;
    if (vs.p != 0) {
      out.g(vs.p - 1, br) += 1.0;
      out.g(br, vs.p - 1) += 1.0;
    }
    if (vs.n != 0) {
      out.g(vs.n - 1, br) -= 1.0;
      out.g(br, vs.n - 1) -= 1.0;
    }
    out.rhs[br] += vs.w.value(t);
  }
}

std::optional<std::vector<double>> Circuit::newton_solve(
    std::vector<double> x0, double t, double gmin,
    const std::vector<double>* x_prev, double dt, const SolverOptions& opts,
    int* iters_out) const {
  const std::size_t n = unknown_count();
  std::vector<double> x = std::move(x0);
  x.resize(n, 0.0);
  const std::size_t nn = node_count() - 1;
  for (int iter = 0; iter < opts.max_newton_iterations; ++iter) {
    AssembleOut out(n, node_count());
    assemble(x, t, gmin, x_prev, dt, out);
    std::vector<double> x_new;
    try {
      x_new = math::solve_dense(out.g, out.rhs);
    } catch (const Error&) {
      return std::nullopt;  // singular system at this gmin level
    }
    // Damping: limit the node-voltage update.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nn; ++i) {
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    }
    double scale = 1.0;
    if (max_dv > opts.max_step_v) scale = opts.max_step_v / max_dv;
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = (x_new[i] - x[i]) * scale;
      if (std::abs(dx) >
          opts.abs_tol + opts.rel_tol * std::abs(x[i])) {
        converged = false;
      }
      x[i] += dx;
    }
    if (converged && scale == 1.0) {
      if (iters_out != nullptr) *iters_out = iter + 1;
      return x;
    }
  }
  return std::nullopt;
}

DcSolution Circuit::solve_dc(double t, const SolverOptions& opts) const {
  DH_REQUIRE(node_count() >= 2, "circuit has no nodes");
  // gmin continuation: start leaky, tighten, reusing each stage's solution.
  const double gmin_levels[] = {1e-3, 1e-5, 1e-7, 1e-9, 0.0};
  std::vector<double> x(unknown_count(), 0.0);
  int iters = 0;
  bool have_solution = false;
  for (const double gmin : gmin_levels) {
    const double g = std::max(gmin, opts.gmin_floor);
    int it = 0;
    auto sol = newton_solve(x, t, g, nullptr, 0.0, opts, &it);
    if (sol) {
      x = std::move(*sol);
      iters += it;
      have_solution = true;
    } else if (!have_solution) {
      continue;  // try the next (tighter) level from scratch anyway
    }
  }
  if (!have_solution) {
    throw ConvergenceError("DC operating point failed to converge");
  }
  DcSolution out;
  out.x = std::move(x);
  out.node_count = node_count();
  out.newton_iterations = iters;
  return out;
}

TransientResult Circuit::solve_transient(double t_end, double dt,
                                         const std::vector<Probe>& probes,
                                         const SolverOptions& opts) const {
  DH_REQUIRE(t_end > 0.0 && dt > 0.0 && dt < t_end,
             "transient window/step invalid");
  TransientResult result;
  for (const auto& p : probes) {
    result.traces.emplace_back(p.label,
                               p.kind == Probe::Kind::kNodeVoltage ? "V"
                                                                   : "A");
  }
  DcSolution ic = solve_dc(0.0, opts);
  std::vector<double> x = ic.x;
  const std::size_t nn = node_count() - 1;
  auto record = [&](double time) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      double v = 0.0;
      if (probes[p].kind == Probe::Kind::kNodeVoltage) {
        v = probes[p].target == 0 ? 0.0 : x[probes[p].target - 1];
      } else {
        v = x[nn + probes[p].target];
      }
      result.traces[p].append(Seconds{time}, v);
    }
  };
  record(0.0);
  double t = 0.0;
  std::vector<double> x_prev = x;
  while (t < t_end - 0.5 * dt) {
    t += dt;
    x_prev = x;
    int it = 0;
    auto sol = newton_solve(x, t, opts.gmin_floor, &x_prev, dt, opts, &it);
    if (!sol) {
      // Retry once with a leakier gmin before giving up.
      sol = newton_solve(x, t, 1e-6, &x_prev, dt, opts, &it);
      if (!sol) {
        throw ConvergenceError("transient step failed to converge at t=" +
                               std::to_string(t));
      }
    }
    x = std::move(*sol);
    record(t);
  }
  return result;
}

}  // namespace dh::circuit
