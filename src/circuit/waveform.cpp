#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math/interp.hpp"

namespace dh::circuit {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.dc_ = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay_s, double rise_s,
                         double fall_s, double width_s, double period_s) {
  DH_REQUIRE(rise_s > 0.0 && fall_s > 0.0, "pulse edges must be positive");
  DH_REQUIRE(period_s >= rise_s + width_s + fall_s,
             "pulse period shorter than one cycle");
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay_s;
  w.rise_ = rise_s;
  w.fall_ = fall_s;
  w.width_ = width_s;
  w.period_ = period_s;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  DH_REQUIRE(times.size() == values.size() && times.size() >= 2,
             "PWL needs >= 2 matched points");
  DH_REQUIRE(std::is_sorted(times.begin(), times.end()),
             "PWL times must be increasing");
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.times_ = std::move(times);
  w.values_ = std::move(values);
  return w;
}

Waveform Waveform::step(double v1, double v2, double t0_s, double ramp_s) {
  return pwl({t0_s - 1.0, t0_s, t0_s + ramp_s, t0_s + ramp_s + 1.0},
             {v1, v1, v2, v2});
}

double Waveform::value(double t_s) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPulse: {
      if (t_s < delay_) return v1_;
      const double tc = std::fmod(t_s - delay_, period_);
      if (tc < rise_) return v1_ + (v2_ - v1_) * tc / rise_;
      if (tc < rise_ + width_) return v2_;
      if (tc < rise_ + width_ + fall_) {
        return v2_ + (v1_ - v2_) * (tc - rise_ - width_) / fall_;
      }
      return v1_;
    }
    case Kind::kPwl:
      return math::interp_linear(times_, values_, t_s);
  }
  return 0.0;
}

}  // namespace dh::circuit
