#include "circuit/assist.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace dh::circuit {

const char* to_string(AssistMode mode) {
  switch (mode) {
    case AssistMode::kNormal:
      return "Normal";
    case AssistMode::kEmActiveRecovery:
      return "EM Active Recovery";
    case AssistMode::kBtiActiveRecovery:
      return "BTI Active Recovery";
  }
  return "?";
}

namespace {

/// Gate states for the ten devices per mode (true = device ON).
/// Order: P1 (VDD->gA), P3 (VDD->gB), P2 (gB->loadVdd), P4 (gA->loadVdd),
///        N1 (loadVss->hA), N3 (loadVss->hB), N2 (hA->VSS), N4 (hB->VSS),
///        Pb (VDD->loadVss), Nb (loadVdd->VSS).
constexpr std::array<bool, 10> gate_states(AssistMode m) {
  switch (m) {
    case AssistMode::kNormal:
      //        P1     P3     P2     P4     N1     N3     N2     N4   Pb Nb
      return {true, false, true, false, true, false, true, false, false,
              false};
    case AssistMode::kEmActiveRecovery:
      return {false, true, false, true, false, true, false, true, false,
              false};
    case AssistMode::kBtiActiveRecovery:
      return {false, false, false, false, false, false, false, false, true,
              true};
  }
  return {};
}

}  // namespace

struct AssistCircuit::Built {
  Circuit ckt;
  NodeId vdd, ga, gmid, gb, ha, hb, load_vdd, load_vss;
  VsourceId ammeter;  // 0 V source in series with the VDD grid
};

AssistCircuit::AssistCircuit(AssistCircuitParams params) : params_(params) {
  DH_REQUIRE(params_.load_units >= 1, "need at least one load unit");
  DH_REQUIRE(params_.vdd.value() > params_.vth,
             "supply must exceed the device threshold");
}

AssistCircuit::Built AssistCircuit::build(AssistMode dc_mode, bool transient,
                                          AssistMode to_mode,
                                          double t_switch) const {
  Built b;
  Circuit& c = b.ckt;
  b.vdd = c.add_node("vdd");
  b.ga = c.add_node("gA");
  b.gmid = c.add_node("gMid");
  b.gb = c.add_node("gB");
  b.ha = c.add_node("hA");
  b.hb = c.add_node("hB");
  b.load_vdd = c.add_node("loadVdd");
  b.load_vss = c.add_node("loadVss");

  const double vdd = params_.vdd.value();
  (void)c.add_voltage_source(b.vdd, Circuit::ground(), Waveform::dc(vdd));

  // VDD grid with a 0 V ammeter in series (gA -> gMid -> gB).
  b.ammeter = c.add_voltage_source(b.ga, b.gmid, Waveform::dc(0.0));
  c.add_resistor(b.gmid, b.gb, params_.vdd_grid);
  // VSS grid.
  c.add_resistor(b.ha, b.hb, params_.vss_grid);

  // Grid wire capacitance (needed for the switching-time study).
  c.add_capacitor(b.ga, Circuit::ground(), params_.grid_cap);
  c.add_capacitor(b.gb, Circuit::ground(), params_.grid_cap);
  c.add_capacitor(b.ha, Circuit::ground(), params_.grid_cap);
  c.add_capacitor(b.hb, Circuit::ground(), params_.grid_cap);

  // Pass devices. Gate drives are step waveforms when simulating a mode
  // transition, DC otherwise.
  const auto from_states = gate_states(dc_mode);
  const auto to_states = gate_states(to_mode);
  MosfetParams pfet;
  pfet.polarity = MosPolarity::kPmos;
  pfet.vth = params_.vth;
  pfet.beta = params_.pass_beta;
  MosfetParams nfet = pfet;
  nfet.polarity = MosPolarity::kNmos;
  MosfetParams p_bti = pfet;
  p_bti.beta = params_.bti_beta;
  MosfetParams n_bti = nfet;
  n_bti.beta = params_.bti_beta;

  // Device table: {params, drain, source, on-gate-voltage, off-gate-voltage}.
  struct Dev {
    const MosfetParams* p;
    NodeId d, s;
  };
  const std::array<Dev, 10> devs = {{
      {&pfet, b.ga, b.vdd},        // P1: VDD -> gA
      {&pfet, b.gb, b.vdd},        // P3: VDD -> gB
      {&pfet, b.load_vdd, b.gb},   // P2: gB -> loadVdd
      {&pfet, b.load_vdd, b.ga},   // P4: gA -> loadVdd
      {&nfet, b.load_vss, b.ha},   // N1: loadVss -> hA
      {&nfet, b.load_vss, b.hb},   // N3: loadVss -> hB
      {&nfet, b.ha, Circuit::ground()},  // N2: hA -> VSS
      {&nfet, b.hb, Circuit::ground()},  // N4: hB -> VSS
      {&p_bti, b.load_vss, b.vdd},       // Pb: VDD -> loadVss
      {&n_bti, b.load_vdd, Circuit::ground()},  // Nb: loadVdd -> VSS
  }};
  for (std::size_t i = 0; i < devs.size(); ++i) {
    const bool is_pmos = devs[i].p->polarity == MosPolarity::kPmos;
    const double v_on = is_pmos ? 0.0 : vdd;
    const double v_off = is_pmos ? vdd : 0.0;
    const double v_from = from_states[i] ? v_on : v_off;
    const double v_to = to_states[i] ? v_on : v_off;
    const NodeId gate = c.add_node("gate" + std::to_string(i));
    const Waveform w = transient && v_from != v_to
                           ? Waveform::step(v_from, v_to, t_switch, 2e-10)
                           : Waveform::dc(v_from);
    (void)c.add_voltage_source(gate, Circuit::ground(), w);
    (void)c.add_mosfet(*devs[i].p, gate, devs[i].d, devs[i].s);
  }

  // Load bank.
  const int n = params_.load_units;
  const bool active_from = dc_mode != AssistMode::kBtiActiveRecovery;
  const bool active_to = to_mode != AssistMode::kBtiActiveRecovery;
  c.add_capacitor(b.load_vdd, Circuit::ground(), params_.load_rail_cap);
  c.add_capacitor(b.load_vss, Circuit::ground(), params_.load_rail_cap);
  for (int u = 0; u < n; ++u) {
    c.add_resistor(b.load_vdd, b.load_vss, params_.load_leak_per_unit);
    c.add_capacitor(b.load_vdd, b.load_vss, params_.load_cap);
  }
  // Activity-equivalent load: present while the load operates. For a
  // transition involving BTI mode the activity stops/starts with the
  // switch; we approximate with a switch element driven by the mode.
  if (active_from || active_to) {
    const double r_act =
        params_.load_active_per_unit.value() / static_cast<double>(n);
    if (active_from && active_to) {
      c.add_resistor(b.load_vdd, b.load_vss, Ohms{r_act});
    } else {
      // Activity ramps with the mode change: model as a resistor in
      // series with a switch-like FET is overkill here — use two
      // resistors gated by complementary step sources feeding a
      // current-free gate is unnecessary; instead approximate with the
      // 'from' state for DC and accept the step for transient studies.
      const NodeId act = c.add_node("act_gate");
      const double on_v = params_.vdd.value();
      const Waveform w =
          transient
              ? Waveform::step(active_from ? on_v : 0.0,
                               active_to ? on_v : 0.0, t_switch, 2e-10)
              : Waveform::dc(active_from ? on_v : 0.0);
      (void)c.add_voltage_source(act, Circuit::ground(), w);
      MosfetParams act_fet;
      act_fet.polarity = MosPolarity::kNmos;
      act_fet.vth = params_.vth;
      // Sized so the on-resistance matches the activity load.
      act_fet.beta = 1.0 / (r_act * (params_.vdd.value() - params_.vth));
      (void)c.add_mosfet(act_fet, act, b.load_vdd, b.load_vss);
    }
  }
  return b;
}

AssistOperating AssistCircuit::solve(AssistMode mode) const {
  Built b = build(mode, false, mode, 0.0);
  const DcSolution sol = b.ckt.solve_dc();
  AssistOperating op;
  op.mode = mode;
  op.load_vdd = sol.voltage(b.load_vdd);
  op.load_vss = sol.voltage(b.load_vss);
  // Ammeter measures current gA -> gMid; positive = Normal direction
  // (into the grid from the VDD header at A).
  op.grid_current = sol.branch_current(b.ammeter.index);
  return op;
}

TransientResult AssistCircuit::transition(AssistMode from, AssistMode to,
                                          Seconds t_switch, Seconds t_end,
                                          Seconds dt) const {
  Built b = build(from, true, to, t_switch.value());
  const std::vector<Probe> probes = {
      {Probe::Kind::kVsourceCurrent, b.ammeter.index, "grid_current"},
      {Probe::Kind::kNodeVoltage, b.load_vdd, "load_vdd"},
      {Probe::Kind::kNodeVoltage, b.load_vss, "load_vss"},
      {Probe::Kind::kNodeVoltage, b.ga, "gA"},
      {Probe::Kind::kNodeVoltage, b.gb, "gB"},
  };
  return b.ckt.solve_transient(t_end.value(), dt.value(), probes);
}

Seconds AssistCircuit::switching_time(AssistMode from, AssistMode to,
                                      double settle_band) const {
  const bool slow = from == AssistMode::kBtiActiveRecovery ||
                    to == AssistMode::kBtiActiveRecovery;
  const Seconds t_switch{slow ? 20e-9 : 2e-9};
  const Seconds t_end{slow ? 1.5e-6 : 80e-9};
  const Seconds dt{slow ? 2e-9 : 5e-11};
  const TransientResult tr = transition(from, to, t_switch, t_end, dt);
  // A mode switch is complete when every observable (grid current, load
  // pins, grid nodes) has settled within `settle_band` of its final value,
  // measured relative to each trace's full swing. Traces that barely move
  // are ignored.
  double settled_at = t_switch.value();
  for (const auto& trace : tr.traces) {
    // The grid ends float through cut-off devices when the grid is parked
    // (BTI mode); their milli-volt drift is not a functional observable.
    if (trace.name() == "gA" || trace.name() == "gB") continue;
    const double swing = trace.max_value() - trace.min_value();
    if (swing < 1e-6) continue;
    const double band = settle_band * swing;
    const double final_v = trace.back_value();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const double t = trace.time_at(i).value();
      if (t < t_switch.value()) continue;
      if (std::abs(trace.value_at(i) - final_v) > band) {
        settled_at = std::max(settled_at, t);
      }
    }
  }
  return Seconds{settled_at - t_switch.value()};
}

double AssistCircuit::normalized_load_delay(AssistMode mode) const {
  const AssistOperating op = solve(mode);
  const double v_eff = op.effective_supply();
  const double vdd = params_.vdd.value();
  DH_REQUIRE(v_eff > params_.vth,
             "load supply collapsed below threshold — resize the headers");
  const double a = params_.ro_alpha;
  const double d_ideal = vdd / std::pow(vdd - params_.vth, a);
  const double d_eff = v_eff / std::pow(v_eff - params_.vth, a);
  return d_eff / d_ideal;
}

Volts AssistCircuit::bti_recovery_bias() const {
  const AssistOperating op = solve(AssistMode::kBtiActiveRecovery);
  // With VDD/VSS swapped, a held-input device sees a negative gate-source
  // bias equal to the swapped supply span.
  return Volts{-(op.load_vss - op.load_vdd)};
}

}  // namespace dh::circuit
