#include "circuit/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"

namespace dh::circuit {

double MosfetParams::thermal_voltage() const {
  return constants::kBoltzmannEv * (temp_c + kCelsiusOffset);
}

namespace {

/// EKV interpolation function F(u) = ln^2(1 + e^{u/2}) and its derivative.
struct FEval {
  double f;
  double df;
};

FEval ekv_f(double u) {
  const double half = 0.5 * u;
  double sp;       // ln(1 + e^{half})
  double sigmoid;  // e^{half} / (1 + e^{half})
  if (half > 30.0) {
    sp = half;
    sigmoid = 1.0;
  } else if (half < -30.0) {
    sp = std::exp(half);
    sigmoid = sp;
  } else {
    sp = std::log1p(std::exp(half));
    sigmoid = 1.0 / (1.0 + std::exp(-half));
  }
  return FEval{sp * sp, sp * sigmoid};
}

struct NmosFrame {
  double i;       // I(vgs, vds), vds >= 0
  double di_vgs;
  double di_vds;
};

/// Drain current in the canonical NMOS frame (vds >= 0).
NmosFrame nmos_current(const MosfetParams& p, double vgs, double vds) {
  const double vt = p.thermal_voltage();
  const double nvt = p.n * vt;
  const double is = 2.0 * p.n * vt * vt * p.beta;
  const FEval ff = ekv_f((vgs - p.vth) / nvt);
  const FEval fr = ekv_f((vgs - p.vth - p.n * vds) / nvt);
  const double clm = 1.0 + p.lambda * vds;
  const double i0 = is * (ff.f - fr.f);
  NmosFrame out;
  out.i = i0 * clm;
  out.di_vgs = is * (ff.df - fr.df) / nvt * clm;
  out.di_vds = is * fr.df / vt * clm + i0 * p.lambda;
  return out;
}

}  // namespace

MosfetEval evaluate_mosfet(const MosfetParams& p, double vg, double vd,
                           double vs) {
  const double m = p.polarity == MosPolarity::kNmos ? 1.0 : -1.0;
  // Mirror PMOS into the NMOS frame: I_p(vg,vd,vs) = -I_n(-vg,-vd,-vs),
  // and by the chain rule the terminal partials carry no extra sign.
  const double vgn = m * vg;
  const double vdn = m * vd;
  const double vsn = m * vs;

  MosfetEval out;
  if (vdn >= vsn) {
    const NmosFrame f = nmos_current(p, vgn - vsn, vdn - vsn);
    out.ids = m * f.i;
    out.d_vg = f.di_vgs;
    out.d_vd = f.di_vds;
    out.d_vs = -f.di_vgs - f.di_vds;
  } else {
    // Source/drain swap: current reverses.
    const NmosFrame f = nmos_current(p, vgn - vdn, vsn - vdn);
    out.ids = -m * f.i;
    out.d_vg = -f.di_vgs;
    out.d_vd = f.di_vgs + f.di_vds;
    out.d_vs = -f.di_vds;
  }
  return out;
}

}  // namespace dh::circuit
