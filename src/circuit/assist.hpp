// The paper's assist circuitry (Fig. 8): a symmetric header/footer scheme
// around the local VDD/VSS grids supporting three modes:
//
//   Normal            — current flows VDD -> gridA -> gridB -> load -> VSS grid.
//   EM Active Recovery — the grid drive and tap ends are swapped, so the
//                        current through both grids reverses with the same
//                        magnitude (the load still sees a normal supply).
//   BTI Active Recovery — the idle load's VDD/VSS pins are cross-connected
//                        (loadVDD -> VSS + dV, loadVSS -> VDD - dV), putting
//                        every held-input device into negative-bias active
//                        recovery (Fig. 8c).
//
// We implement the explicit 10-transistor form (8 grid pass devices + the
// 2 BTI cross devices); the paper's 8-T sketch shares the cross pair with
// the grid taps, which changes nothing functionally.
//
// The load is a bank of N identical units (the paper uses parallel ring
// oscillators); each unit draws an activity current when operating and a
// leakage current when idle.
#pragma once

#include "circuit/mna.hpp"
#include "common/units.hpp"

namespace dh::circuit {

enum class AssistMode { kNormal, kEmActiveRecovery, kBtiActiveRecovery };

[[nodiscard]] const char* to_string(AssistMode mode);

struct AssistCircuitParams {
  Volts vdd{1.0};
  Ohms vdd_grid{1.0};            // local VDD grid, end to end
  Ohms vss_grid{1.0};
  int load_units = 1;
  Ohms load_active_per_unit{2000.0};  // activity-equivalent load
  Ohms load_leak_per_unit{50000.0};   // idle leakage path
  Farads grid_cap{20e-12};            // per grid end (wire capacitance)
  Farads load_rail_cap{10e-12};       // fixed local-rail wire capacitance
  Farads load_cap{0.2e-12};           // per load unit decap
  double pass_beta = 24e-3;           // grid header/footer devices
  double bti_beta = 0.10e-3;          // weak BTI cross devices
  double vth = 0.30;
  double ro_alpha = 1.3;              // alpha-power exponent for delay
};

/// DC operating point summary of the assist circuitry in one mode.
struct AssistOperating {
  AssistMode mode;
  double load_vdd = 0.0;      // V at the load's VDD pin
  double load_vss = 0.0;      // V at the load's VSS pin
  double grid_current = 0.0;  // A through the VDD grid (+ = Normal direction)
  /// Effective supply seen by the load.
  [[nodiscard]] double effective_supply() const {
    return load_vdd - load_vss;
  }
};

class AssistCircuit {
 public:
  explicit AssistCircuit(AssistCircuitParams params);

  /// DC operating point in the given mode (load active in Normal/EM,
  /// idle in BTI recovery).
  [[nodiscard]] AssistOperating solve(AssistMode mode) const;

  /// Transient waveforms across a mode transition at `t_switch`;
  /// probes: vdd-grid current, load VDD and VSS pins (Fig. 9).
  [[nodiscard]] TransientResult transition(AssistMode from, AssistMode to,
                                           Seconds t_switch, Seconds t_end,
                                           Seconds dt) const;

  /// Time for the VDD grid node to settle within `settle_band` volts of
  /// its final value after the mode switch (Fig. 10's switching time).
  [[nodiscard]] Seconds switching_time(AssistMode from, AssistMode to,
                                       double settle_band = 0.02) const;

  /// Load delay under the given mode's effective supply, normalized to an
  /// ideal (droop-free) supply: alpha-power law (Fig. 10's load delay).
  [[nodiscard]] double normalized_load_delay(AssistMode mode) const;

  /// Negative gate bias magnitude available for BTI recovery (paper
  /// quotes ~0.6-0.8 V — comfortably beyond the -0.3 V its experiments
  /// needed).
  [[nodiscard]] Volts bti_recovery_bias() const;

  [[nodiscard]] const AssistCircuitParams& params() const { return params_; }

 private:
  struct Built;
  [[nodiscard]] Built build(AssistMode dc_mode, bool transient,
                            AssistMode to_mode, double t_switch) const;

  AssistCircuitParams params_;
};

}  // namespace dh::circuit
