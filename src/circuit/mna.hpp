// Modified nodal analysis circuit simulator: DC operating point via
// damped Newton-Raphson with gmin continuation, and backward-Euler
// transient analysis. Scales comfortably to the few-hundred-node circuits
// in this project (assist circuitry, ring oscillators, PDN slices).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "circuit/mosfet.hpp"
#include "circuit/waveform.hpp"
#include "common/time_series.hpp"
#include "common/units.hpp"

namespace dh::circuit {

/// Node handle; 0 is ground.
using NodeId = std::size_t;

/// Handle to a voltage source (for branch-current probing).
struct VsourceId {
  std::size_t index;
};
/// Handle to a switch (for mode control).
struct SwitchId {
  std::size_t index;
};
/// Handle to a MOSFET (for parameter updates, e.g. aged Vth).
struct MosfetId {
  std::size_t index;
};

struct DcSolution {
  std::vector<double> x;  // node voltages then branch currents
  std::size_t node_count = 0;
  [[nodiscard]] double voltage(NodeId n) const;
  [[nodiscard]] double branch_current(std::size_t branch) const;
  int newton_iterations = 0;
};

/// Probe request for transient analysis.
struct Probe {
  enum class Kind { kNodeVoltage, kVsourceCurrent } kind;
  std::size_t target;  // NodeId or VsourceId.index
  std::string label;
};

struct TransientResult {
  std::vector<TimeSeries> traces;  // one per probe, same order
  [[nodiscard]] const TimeSeries& trace(const std::string& label) const;
};

struct SolverOptions {
  int max_newton_iterations = 200;
  double abs_tol = 1e-9;
  double rel_tol = 1e-6;
  double max_step_v = 0.5;    // Newton damping limit on node voltages
  double gmin_floor = 1e-12;  // permanent leak to ground for robustness
};

class Circuit {
 public:
  Circuit() = default;

  [[nodiscard]] static NodeId ground() { return 0; }
  [[nodiscard]] NodeId add_node(std::string name);
  [[nodiscard]] NodeId node(const std::string& name) const;
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  void add_resistor(NodeId a, NodeId b, Ohms r);
  void add_capacitor(NodeId a, NodeId b, Farads c);
  /// Current flows from `from` to `to` through the source (i.e. it is
  /// injected into `to`).
  void add_current_source(NodeId from, NodeId to, Waveform w);
  VsourceId add_voltage_source(NodeId plus, NodeId minus, Waveform w);
  MosfetId add_mosfet(const MosfetParams& params, NodeId gate, NodeId drain,
                      NodeId source);
  SwitchId add_switch(NodeId a, NodeId b, Ohms r_on = Ohms{1.0},
                      Ohms r_off = Ohms{1e12});

  void set_switch(SwitchId s, bool closed);
  [[nodiscard]] MosfetParams& mosfet_params(MosfetId m);

  /// DC operating point at source time `t` (waveforms evaluated at t).
  [[nodiscard]] DcSolution solve_dc(double t = 0.0,
                                    const SolverOptions& opts = {}) const;

  /// Backward-Euler transient from a DC initial point at t=0.
  [[nodiscard]] TransientResult solve_transient(
      double t_end, double dt, const std::vector<Probe>& probes,
      const SolverOptions& opts = {}) const;

  [[nodiscard]] std::size_t branch_count() const { return vsources_.size(); }

 private:
  struct Resistor {
    NodeId a, b;
    double g;
  };
  struct Capacitor {
    NodeId a, b;
    double c;
  };
  struct Isource {
    NodeId from, to;
    Waveform w;
  };
  struct Vsource {
    NodeId p, n;
    Waveform w;
  };
  struct Mosfet {
    MosfetParams params;
    NodeId g, d, s;
  };
  struct Switch {
    NodeId a, b;
    double g_on, g_off;
    bool closed = false;
  };

  [[nodiscard]] std::size_t unknown_count() const {
    return node_count() - 1 + vsources_.size();
  }
  void assemble(std::vector<double>& x_guess, double t, double gmin,
                const std::vector<double>* x_prev, double dt,
                class AssembleOut& out) const;
  [[nodiscard]] std::optional<std::vector<double>> newton_solve(
      std::vector<double> x0, double t, double gmin,
      const std::vector<double>* x_prev, double dt,
      const SolverOptions& opts, int* iters_out) const;

  std::vector<std::string> node_names_{"0"};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Isource> isources_;
  std::vector<Vsource> vsources_;
  std::vector<Mosfet> mosfets_;
  std::vector<Switch> switches_;
};

}  // namespace dh::circuit
