// Source waveforms for the circuit simulator: DC, pulse, and
// piecewise-linear, mirroring the SPICE primitives the paper's 28 nm
// FD-SOI validation (Fig. 9) would have used.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace dh::circuit {

class Waveform {
 public:
  /// Constant value.
  [[nodiscard]] static Waveform dc(double value);

  /// SPICE-style pulse: v1 -> v2 with delay, rise/fall, width, period.
  [[nodiscard]] static Waveform pulse(double v1, double v2, double delay_s,
                                      double rise_s, double fall_s,
                                      double width_s, double period_s);

  /// Piecewise linear through (time, value) points (times increasing);
  /// clamps outside the range.
  [[nodiscard]] static Waveform pwl(std::vector<double> times,
                                    std::vector<double> values);

  /// A single step from v1 to v2 at t0 with linear transition `ramp_s`.
  [[nodiscard]] static Waveform step(double v1, double v2, double t0_s,
                                     double ramp_s = 1e-12);

  [[nodiscard]] double value(double t_s) const;

 private:
  Waveform() = default;
  enum class Kind { kDc, kPulse, kPwl } kind_ = Kind::kDc;
  double dc_ = 0.0;
  // pulse
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0,
         width_ = 0.0, period_ = 0.0;
  // pwl
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace dh::circuit
