// A minimal transistor description carrying the BTI-relevant state.
// NBTI affects PMOS under negative gate stress; PBTI affects NMOS — the
// assist circuitry (Fig. 8c) selects which one recovers based on the
// held input value.
#pragma once

#include "device/bti_model.hpp"

namespace dh::device {

enum class Polarity { kNmos, kPmos };

struct TransistorParams {
  Polarity polarity = Polarity::kPmos;
  Volts vth0{0.30};        // fresh threshold magnitude
  double width_um = 1.0;
  double length_um = 0.04;
  double mobility_um2_per_vs = 1.0;  // normalized fresh mobility
};

/// A transistor with an attached BTI wearout state. The BTI model tracks
/// |delta Vth|; `effective_vth` reports the aged magnitude.
class Transistor {
 public:
  Transistor(TransistorParams params, BtiModel model);

  /// Age/recover for `dt`. `input_high` selects whether this device is the
  /// one under bias for its polarity (a PMOS is stressed when its gate is
  /// low, i.e. input "0"; an NMOS when its gate is high).
  void step(bool input_high, Volts supply, Celsius temperature, Seconds dt);

  /// Apply an explicit condition (used by recovery controllers that drive
  /// the gate directly, e.g. the Fig. 8c scheme).
  void apply(const BtiCondition& condition, Seconds dt);

  [[nodiscard]] Volts effective_vth() const;
  [[nodiscard]] Volts delta_vth() const { return model_.delta_vth(); }
  [[nodiscard]] double mobility_factor() const {
    return model_.mobility_factor();
  }
  [[nodiscard]] const TransistorParams& params() const { return params_; }
  [[nodiscard]] BtiModel& bti() { return model_; }
  [[nodiscard]] const BtiModel& bti() const { return model_; }

 private:
  TransistorParams params_;
  BtiModel model_;
};

}  // namespace dh::device
