// Calibration of the BTI model to the paper's Table I.
//
// Derivation sketch (full math in DESIGN.md §5): with attempt time
// tau0 = 1e-10 s, a 6 h recovery empties every trap whose emission time
// constant at the recovery condition is below ~t_rec, i.e. whose emission
// energy lies below the cutoff
//
//   Ea* = kT * ( ln(t_rec / tau0) + |V_rec| / V0 )
//
// which evaluates to 0.834 eV (20 °C, 0 V), 0.935 eV (20 °C, −0.3 V),
// 1.090 eV (110 °C, 0 V), and 1.222 eV (110 °C, −0.3 V). The recoverable
// trap density is therefore laid out in segments between those cutoffs so
// that the cumulative weight below each cutoff equals the paper's model
// column (1 % / 14.4 % / 29.2 % / 72.7 % of the *total* shift); the
// > 27 % that survives even condition No. 4 after a 24 h stress is carried
// by the locked permanent component. The weights below were fine-tuned
// numerically (tools/calibrate_bti.cpp) against the exact smooth-decay
// dynamics rather than the sharp-cutoff approximation.
#include "device/calibration.hpp"

namespace dh::device {

namespace {

// Fitted recoverable-trap density (emission energy, eV). Segment edges sit
// at the four recovery cutoffs; the top segment is kept *below* the 1 h
// No. 4 emission cutoff (1.163 eV) so that a 1 h active accelerated
// recovery empties every recoverable trap a 1 h stress fills — the Fig. 4
// balanced-schedule behaviour. The gaps between segments keep the
// dense segments clear of the neighbouring cutoff smear. The weights are the
// numerically tuned values printed by tools/calibrate_bti.
TrapDensity fitted_density() {
  return TrapDensity{
      .breakpoints = {0.40, 0.8337, 0.885, 0.9347, 1.000, 1.0896, 1.124,
                      1.144},
      .segment_weights = {0.002668, 0.0, 0.384616, 0.0, 0.013495, 0.0,
                          1.273589},
  };
}

}  // namespace

BtiModelParams paper_calibrated_bti_params() {
  BtiModelParams p;
  p.ensemble = TrapEnsembleParams{
      .density = fitted_density(),
      .tau0_capture_s = 1e-10,
      .tau0_emission_s = 1e-10,
      .v0_capture = 0.075,
      .v0_emission = 0.075,
      .v0_suppress = 0.075,
      .delta_ce_ev = 0.4700,
      .dvth_max = Volts{0.052},
      .bins = 360,
  };
  p.permanent = PermanentComponentParams{
      .gen_rate_ref_v_per_s = 3.312e-7,
      .gen_ref_bias = Volts{1.2},
      .gen_ref_temperature = Celsius{110.0},
      .gen_v0 = 0.1,
      .gen_ea = ElectronVolts{0.80},
      .p_max = Volts{0.060},
      .k_lock_per_v_s = 0.041,
      .anneal_tau0_s = 1.4e-8,
      .anneal_ea = ElectronVolts{1.0},
      .anneal_v0 = 0.075,
      .lock_anneal_ratio = 1e-3,
  };
  return p;
}

std::array<TableITarget, 4> table1_targets() {
  using namespace paper_conditions;
  return {{
      {"No. 1 (20C, 0V)", recovery_no1(), 0.010, 0.0066},
      {"No. 2 (20C, -0.3V)", recovery_no2(), 0.144, 0.167},
      {"No. 3 (110C, 0V)", recovery_no3(), 0.292, 0.287},
      {"No. 4 (110C, -0.3V)", recovery_no4(), 0.727, 0.724},
  }};
}

Seconds table1_stress_time() { return hours(24.0); }
Seconds table1_recovery_time() { return hours(6.0); }

}  // namespace dh::device
