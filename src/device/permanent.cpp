#include "device/permanent.hpp"

#include <algorithm>
#include <cmath>

#include "common/arrhenius.hpp"
#include "common/error.hpp"

namespace dh::device {

PermanentComponent::PermanentComponent(PermanentComponentParams params)
    : params_(params) {
  DH_REQUIRE(params_.p_max.value() > 0.0, "P_max must be positive");
  DH_REQUIRE(params_.gen_rate_ref_v_per_s >= 0.0,
             "generation rate must be non-negative");
}

void PermanentComponent::apply(const BtiCondition& condition, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (dt.value() == 0.0) return;
  const Kelvin t = to_kelvin(condition.temperature);
  const double v = condition.gate_bias.value();

  if (condition.is_stress()) {
    // Generation + second-order locking: integrate with small explicit
    // substeps (the dynamics are mildly nonlinear but smooth; a 60 s
    // substep is far below every time constant involved).
    const double g = params_.gen_rate_ref_v_per_s *
                     std::exp((v - params_.gen_ref_bias.value()) /
                              params_.gen_v0) *
                     arrhenius_acceleration(
                         params_.gen_ea, t,
                         to_kelvin(params_.gen_ref_temperature));
    const int substeps =
        std::max(1, static_cast<int>(std::ceil(dt.value() / 60.0)));
    const double h = dt.value() / substeps;
    for (int s = 0; s < substeps; ++s) {
      const double saturation =
          std::max(0.0, 1.0 - (pu_ + pl_) / params_.p_max.value());
      const double lock_flux = params_.k_lock_per_v_s * pu_ * pu_;
      pu_ += h * (g * saturation - lock_flux);
      pl_ += h * lock_flux;
      pu_ = std::max(pu_, 0.0);
    }
  } else {
    // Annealing: linear decay, exact update.
    const double rate = 1.0 / params_.anneal_tau0_s *
                        boltzmann_factor(params_.anneal_ea, t) *
                        std::exp(std::max(-v, 0.0) / params_.anneal_v0);
    pu_ *= std::exp(-dt.value() * rate);
    pl_ *= std::exp(-dt.value() * rate * params_.lock_anneal_ratio);
  }
}

void PermanentComponent::reset() {
  pu_ = 0.0;
  pl_ = 0.0;
}

}  // namespace dh::device
