// Capture/emission trap-ensemble model of the recoverable BTI component.
//
// The mainstream physical picture of BTI (which the paper cites via
// Mahapatra and Grasser) is an ensemble of oxide/interface traps with
// widely distributed capture and emission time constants. We discretize
// the ensemble over the *emission* activation energy Ea. Each bin i has
//
//   capture  rate  rc_i = 1/tau0c * exp(-(Ea_i + delta_ce)/kT) * exp( V/V0c)   (V > 0)
//   emission rate  re_i = 1/tau0e * exp(- Ea_i            /kT) * exp(|V|/V0e)  (V < 0)
//
// so that a *negative* gate bias accelerates emission (the paper's
// "activated" recovery) and temperature accelerates both (the paper's
// "accelerated" recovery) — exactly the four quadrants of Fig. 2a.
// During stress, emission is field-suppressed by exp(-V/V0e).
//
// Over a constant-condition interval each bin relaxes analytically toward
// its equilibrium occupancy, which makes the update unconditionally stable
// for arbitrarily long steps.
#pragma once

#include <cstddef>
#include <vector>

#include "device/bti_types.hpp"

namespace dh::device {

/// Piecewise-constant trap density over emission activation energy.
/// `breakpoints` has N+1 increasing entries (eV); `segment_weights` has N
/// entries and is normalized to sum to 1 on construction.
struct TrapDensity {
  std::vector<double> breakpoints;
  std::vector<double> segment_weights;
};

struct TrapEnsembleParams {
  TrapDensity density;
  double tau0_capture_s = 1e-10;   // capture attempt time
  double tau0_emission_s = 1e-10;  // emission attempt time
  double v0_capture = 0.075;       // V per e-fold of capture acceleration
  double v0_emission = 0.075;      // V per e-fold of emission acceleration
  double v0_suppress = 0.075;      // V per e-fold of emission suppression under stress
  double delta_ce_ev = 0.3962;     // capture barrier excess over emission barrier
  Volts dvth_max{0.052};           // Vth shift with every trap occupied
  std::size_t bins = 240;
};

class TrapEnsemble {
 public:
  explicit TrapEnsemble(TrapEnsembleParams params);

  /// Advance the ensemble for `dt` under a constant condition.
  void apply(const BtiCondition& condition, Seconds dt);

  /// Reset to the fresh (all traps empty) state.
  void reset();

  /// Vth shift contributed by currently occupied traps.
  [[nodiscard]] Volts delta_vth() const;

  /// Weighted fraction of traps occupied, in [0, 1].
  [[nodiscard]] double occupied_fraction() const;

  /// Occupancy of bin i (for tests/inspection).
  [[nodiscard]] double occupancy(std::size_t i) const;
  [[nodiscard]] std::size_t bin_count() const { return centers_.size(); }
  [[nodiscard]] double bin_energy_ev(std::size_t i) const;

  [[nodiscard]] const TrapEnsembleParams& params() const { return params_; }

 private:
  TrapEnsembleParams params_;
  std::vector<double> centers_;  // bin center emission energies (eV)
  std::vector<double> weights_;  // normalized bin weights (sum = 1)
  std::vector<double> occupancy_;
};

}  // namespace dh::device
