// Compact BTI model for system-scale simulation.
//
// The paper's stated future work is "high-level compact models that
// capture the accurate device and circuit level BTI/EM recovery
// information while being able to apply at the architectural and system
// level". This is that model: a two-pool (fast/slow) first-order
// abstraction of the trap ensemble plus the same precursor-locking
// permanent dynamics, cheap enough to step once per scheduling quantum for
// hundreds of cores over years of simulated lifetime. Its fidelity
// against the full ensemble is quantified by bench/ablation_compact_models.
#pragma once

#include "device/bti_types.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::device {

struct CompactBtiParams {
  // Saturation levels of the two recoverable pools (V of Vth shift) at the
  // reference stress condition.
  double fast_sat_v = 0.012;
  double slow_sat_v = 0.040;
  // Capture time constants at the reference stress condition.
  double fast_tau_stress_s = 600.0;     // ~10 min
  double slow_tau_stress_s = 3.6e5;     // ~100 h
  // Emission time constants at the reference *active accelerated* recovery
  // condition (110 C, -0.3 V).
  double fast_tau_recover_s = 300.0;
  double slow_tau_recover_s = 1.5e4;
  // Reference conditions the taus are quoted at.
  BtiCondition stress_ref{Volts{1.2}, Celsius{110.0}};
  BtiCondition recover_ref{Volts{-0.3}, Celsius{110.0}};
  // Arrhenius activation energy for both pools' kinetics.
  ElectronVolts kinetics_ea{0.55};
  // Voltage acceleration (per e-fold) for capture/emission.
  double v0 = 0.25;
  // Permanent precursor dynamics (same structure as the full model).
  double gen_rate_ref_v_per_s = 2.55e-7;
  double gen_v0 = 0.1;  // strong voltage acceleration of generation
  ElectronVolts gen_ea{0.80};  // generation activation energy
  double k_lock_per_v_s = 0.041;
  double anneal_rate_ref_per_s = 2.8e-4;  // at recover_ref
  double p_max_v = 0.040;
};

class CompactBti {
 public:
  explicit CompactBti(CompactBtiParams params = {});

  void apply(const BtiCondition& condition, Seconds dt);
  void reset();

  [[nodiscard]] Volts delta_vth() const;
  [[nodiscard]] BtiBreakdown breakdown() const;

  [[nodiscard]] const CompactBtiParams& params() const { return params_; }

  /// Checkpoint support: bit-exact snapshot of the pool states (params
  /// are construction inputs and not serialized).
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  CompactBtiParams params_;
  double fast_ = 0.0;
  double slow_ = 0.0;
  double pu_ = 0.0;
  double pl_ = 0.0;
};

}  // namespace dh::device
