#include "device/transistor.hpp"

#include <utility>

namespace dh::device {

Transistor::Transistor(TransistorParams params, BtiModel model)
    : params_(params), model_(std::move(model)) {}

void Transistor::step(bool input_high, Volts supply, Celsius temperature,
                      Seconds dt) {
  // A PMOS sees gate-source stress when its gate is driven low (input 0);
  // an NMOS when driven high. The un-stressed device sits at zero bias
  // (passive recovery).
  const bool stressed = params_.polarity == Polarity::kPmos ? !input_high
                                                            : input_high;
  const Volts bias = stressed ? supply : Volts{0.0};
  model_.apply(BtiCondition{bias, temperature}, dt);
}

void Transistor::apply(const BtiCondition& condition, Seconds dt) {
  model_.apply(condition, dt);
}

Volts Transistor::effective_vth() const {
  return params_.vth0 + model_.delta_vth();
}

}  // namespace dh::device
