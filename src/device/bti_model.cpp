#include "device/bti_model.hpp"

#include <utility>

#include "common/error.hpp"
#include "device/calibration.hpp"

namespace dh::device {

BtiModel::BtiModel(BtiModelParams params)
    : params_(params),
      ensemble_(params.ensemble),
      permanent_(params.permanent) {}

BtiModel BtiModel::paper_calibrated() {
  return BtiModel{paper_calibrated_bti_params()};
}

void BtiModel::apply(const BtiCondition& condition, Seconds dt) {
  ensemble_.apply(condition, dt);
  permanent_.apply(condition, dt);
}

void BtiModel::reset() {
  ensemble_.reset();
  permanent_.reset();
}

Volts BtiModel::delta_vth() const {
  return ensemble_.delta_vth() + permanent_.total();
}

BtiBreakdown BtiModel::breakdown() const {
  return BtiBreakdown{
      .recoverable = ensemble_.delta_vth(),
      .unlocked = permanent_.unlocked(),
      .locked = permanent_.locked(),
  };
}

double BtiModel::mobility_factor() const {
  // First-order mobility coupling: a fully-degraded gate stack loses a
  // few percent of carrier mobility. theta is folded into the calibrated
  // params via dvth_max; 0.30 per volt of Vth shift is a typical slope.
  constexpr double kThetaPerVolt = 0.30;
  const double dvth = delta_vth().value();
  const double factor = 1.0 / (1.0 + kThetaPerVolt * dvth);
  return factor;
}

double RecoveryOutcome::recovery_fraction() const {
  const double stressed = dvth_after_stress.value();
  if (stressed <= 0.0) return 0.0;
  return (stressed - dvth_after_recovery.value()) / stressed;
}

RecoveryOutcome run_stress_recovery(BtiModel& model,
                                    const BtiCondition& stress_cond,
                                    Seconds stress_time,
                                    const BtiCondition& recovery_cond,
                                    Seconds recovery_time) {
  DH_REQUIRE(stress_cond.is_stress(),
             "stress phase requires a positive gate bias");
  model.reset();
  model.apply(stress_cond, stress_time);
  RecoveryOutcome out;
  out.dvth_after_stress = model.delta_vth();
  model.apply(recovery_cond, recovery_time);
  out.dvth_after_recovery = model.delta_vth();
  return out;
}

}  // namespace dh::device
