// The quasi-permanent BTI component and why in-time recovery removes it.
//
// Table I shows that even the strongest one-shot recovery (110 °C, −0.3 V)
// leaves > 27 % of the wearout after a long 24 h stress — yet Fig. 4 shows
// that *scheduled* 1 h : 1 h stress/recovery cycles keep the permanent
// component at "practically 0". The model that reconciles both
// observations (and matches the degradation-reversal literature the paper
// cites, Grasser IRPS'16): stress generates *precursor* defects that are
// still annealable, and precursors gradually *lock in* — a second-order
// (cooperative) process. Sustained stress lets the precursor population
// sit high for hours and lock; short stress intervals punctuated by active
// recovery anneal the precursors before meaningful locking happens.
//
//   stress:    dP_u/dt = g(V,T) * (1 - (P_u+P_l)/P_max) - k_lock * P_u^2
//              dP_l/dt = k_lock * P_u^2
//   recovery:  dP_u/dt = -P_u * r_anneal(V,T)
//              dP_l/dt = -P_l * r_anneal(V,T) * lock_anneal_ratio
//
// r_anneal is thermally activated and field-accelerated just like trap
// emission, so only the combined high-T + negative-V condition anneals
// precursors quickly.
#pragma once

#include "device/bti_types.hpp"

namespace dh::device {

struct PermanentComponentParams {
  // Generation under stress.
  double gen_rate_ref_v_per_s = 2.55e-7;  // at the reference stress condition
  Volts gen_ref_bias{1.2};
  Celsius gen_ref_temperature{110.0};
  double gen_v0 = 0.3;             // V per e-fold of generation acceleration
  ElectronVolts gen_ea{0.80};      // generation activation energy
  Volts p_max{0.040};              // saturation level of P_u + P_l
  // Locking (precursor -> permanent), second order in P_u.
  double k_lock_per_v_s = 0.041;
  // Annealing of precursors under recovery.
  double anneal_tau0_s = 1.4e-8;
  ElectronVolts anneal_ea{1.0};
  double anneal_v0 = 0.075;        // V per e-fold of anneal acceleration
  double lock_anneal_ratio = 1e-3; // locked component anneals ~1000x slower
};

class PermanentComponent {
 public:
  explicit PermanentComponent(PermanentComponentParams params);

  void apply(const BtiCondition& condition, Seconds dt);
  void reset();

  [[nodiscard]] Volts unlocked() const { return Volts{pu_}; }
  [[nodiscard]] Volts locked() const { return Volts{pl_}; }
  [[nodiscard]] Volts total() const { return Volts{pu_ + pl_}; }

  [[nodiscard]] const PermanentComponentParams& params() const {
    return params_;
  }

 private:
  PermanentComponentParams params_;
  double pu_ = 0.0;  // annealable precursor population (V of Vth shift)
  double pl_ = 0.0;  // locked permanent population (V of Vth shift)
};

}  // namespace dh::device
