// Calibrated parameter sets reproducing the paper's Table I model column.
#pragma once

#include <array>

#include "device/bti_model.hpp"

namespace dh::device {

/// The BTI model parameters fitted to the paper's four-condition recovery
/// experiment (24 h accelerated stress, 6 h recovery). See calibration.cpp
/// for the derivation.
[[nodiscard]] BtiModelParams paper_calibrated_bti_params();

/// Table I targets: recovery fraction per condition (model column).
struct TableITarget {
  const char* label;
  BtiCondition condition;
  double model_fraction;        // the paper's analytical-model column
  double measured_fraction;     // the paper's measurement column
};

[[nodiscard]] std::array<TableITarget, 4> table1_targets();

/// Paper protocol constants (Section III-C).
[[nodiscard]] Seconds table1_stress_time();    // 24 h
[[nodiscard]] Seconds table1_recovery_time();  // 6 h

}  // namespace dh::device
