#include "device/compact_bti.hpp"

#include <algorithm>
#include <cmath>

#include "common/arrhenius.hpp"
#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::device {

namespace {

/// First-order relaxation of pool `x` toward `target` with time constant
/// `tau` over `dt` (exact update).
double relax(double x, double target, double tau, double dt) {
  if (tau <= 0.0) return target;
  return target + (x - target) * std::exp(-dt / tau);
}

}  // namespace

CompactBti::CompactBti(CompactBtiParams params) : params_(params) {
  DH_REQUIRE(params_.fast_sat_v > 0.0 && params_.slow_sat_v > 0.0,
             "pool saturation levels must be positive");
}

void CompactBti::apply(const BtiCondition& condition, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (dt.value() == 0.0) return;
  const Kelvin t = to_kelvin(condition.temperature);
  const double v = condition.gate_bias.value();

  if (condition.is_stress()) {
    const double af_t = arrhenius_acceleration(
        params_.kinetics_ea, t, to_kelvin(params_.stress_ref.temperature));
    const double af_v =
        std::exp((v - params_.stress_ref.gate_bias.value()) / params_.v0);
    const double accel = af_t * af_v;
    // Saturation level scales strongly with overdrive (the trap ensemble
    // only fills up to a voltage-dependent energy cutoff; a cubic law
    // tracks the calibrated model well across 0.6-1.2 V).
    const double ratio =
        std::max(0.1, v / params_.stress_ref.gate_bias.value());
    const double sat_scale = ratio * ratio * ratio;
    fast_ = relax(fast_, params_.fast_sat_v * sat_scale,
                  params_.fast_tau_stress_s / accel, dt.value());
    slow_ = relax(slow_, params_.slow_sat_v * sat_scale,
                  params_.slow_tau_stress_s / accel, dt.value());
    // Permanent precursor generation + second-order locking. Generation
    // carries its own (stronger) voltage acceleration, mirroring the full
    // model's gen_v0.
    const double g =
        params_.gen_rate_ref_v_per_s *
        arrhenius_acceleration(params_.gen_ea, t,
                               to_kelvin(params_.stress_ref.temperature)) *
        std::exp((v - params_.stress_ref.gate_bias.value()) /
                 params_.gen_v0);
    const int substeps =
        std::max(1, static_cast<int>(std::ceil(dt.value() / 300.0)));
    const double h = dt.value() / substeps;
    for (int s = 0; s < substeps; ++s) {
      const double saturation =
          std::max(0.0, 1.0 - (pu_ + pl_) / params_.p_max_v);
      const double lock_flux = params_.k_lock_per_v_s * pu_ * pu_;
      pu_ += h * (g * saturation - lock_flux);
      pl_ += h * lock_flux;
      pu_ = std::max(pu_, 0.0);
    }
  } else {
    const double af_t = arrhenius_acceleration(
        params_.kinetics_ea, t, to_kelvin(params_.recover_ref.temperature));
    const double v_ref = -params_.recover_ref.gate_bias.value();
    const double af_v = std::exp((std::max(-v, 0.0) - v_ref) / params_.v0);
    const double accel = af_t * af_v;
    fast_ = relax(fast_, 0.0, params_.fast_tau_recover_s / accel, dt.value());
    slow_ = relax(slow_, 0.0, params_.slow_tau_recover_s / accel, dt.value());
    const double anneal = params_.anneal_rate_ref_per_s * accel;
    pu_ *= std::exp(-dt.value() * anneal);
    pl_ *= std::exp(-dt.value() * anneal * 1e-3);
  }
}

void CompactBti::reset() {
  fast_ = slow_ = pu_ = pl_ = 0.0;
}

Volts CompactBti::delta_vth() const {
  return Volts{fast_ + slow_ + pu_ + pl_};
}

BtiBreakdown CompactBti::breakdown() const {
  return BtiBreakdown{
      .recoverable = Volts{fast_ + slow_},
      .unlocked = Volts{pu_},
      .locked = Volts{pl_},
  };
}

void CompactBti::save_state(ckpt::Serializer& s) const {
  s.begin_section("CBTI");
  s.write_f64(fast_);
  s.write_f64(slow_);
  s.write_f64(pu_);
  s.write_f64(pl_);
}

void CompactBti::load_state(ckpt::Deserializer& d) {
  d.expect_section("CBTI");
  fast_ = d.read_f64();
  slow_ = d.read_f64();
  pu_ = d.read_f64();
  pl_ = d.read_f64();
}

}  // namespace dh::device
