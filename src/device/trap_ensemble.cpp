#include "device/trap_ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/arrhenius.hpp"
#include "common/error.hpp"

namespace dh::device {

TrapEnsemble::TrapEnsemble(TrapEnsembleParams params)
    : params_(std::move(params)) {
  const auto& bp = params_.density.breakpoints;
  const auto& sw = params_.density.segment_weights;
  DH_REQUIRE(bp.size() >= 2, "trap density needs at least one segment");
  DH_REQUIRE(sw.size() + 1 == bp.size(),
             "segment weights must match breakpoints");
  DH_REQUIRE(std::is_sorted(bp.begin(), bp.end()),
             "density breakpoints must be increasing");
  DH_REQUIRE(params_.bins >= sw.size(), "need at least one bin per segment");
  const double total =
      std::accumulate(sw.begin(), sw.end(), 0.0);
  DH_REQUIRE(total > 0.0, "trap density must have positive total weight");

  const double lo = bp.front();
  const double hi = bp.back();
  const double dE = (hi - lo) / static_cast<double>(params_.bins);
  centers_.resize(params_.bins);
  weights_.resize(params_.bins);
  for (std::size_t i = 0; i < params_.bins; ++i) {
    const double e0 = lo + dE * static_cast<double>(i);
    const double e1 = e0 + dE;
    centers_[i] = 0.5 * (e0 + e1);
    // Integrate the piecewise-constant density over [e0, e1].
    double w = 0.0;
    for (std::size_t s = 0; s < sw.size(); ++s) {
      const double seg_lo = bp[s];
      const double seg_hi = bp[s + 1];
      const double overlap =
          std::max(0.0, std::min(e1, seg_hi) - std::max(e0, seg_lo));
      if (overlap > 0.0 && seg_hi > seg_lo) {
        w += sw[s] / total * overlap / (seg_hi - seg_lo);
      }
    }
    weights_[i] = w;
  }
  occupancy_.assign(params_.bins, 0.0);
}

void TrapEnsemble::apply(const BtiCondition& condition, Seconds dt) {
  DH_REQUIRE(dt.value() >= 0.0, "time step must be non-negative");
  if (dt.value() == 0.0) return;
  const Kelvin t = to_kelvin(condition.temperature);
  const double kT = thermal_energy_ev(t);
  const double v = condition.gate_bias.value();
  const double v_stress = std::max(v, 0.0);
  const double v_recover = std::max(-v, 0.0);

  const double capture_gain =
      v_stress > 0.0 ? std::exp(v_stress / params_.v0_capture) : 0.0;
  const double emission_gain = std::exp(v_recover / params_.v0_emission -
                                        v_stress / params_.v0_suppress);

  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const double ea_e = centers_[i];
    const double ea_c = ea_e + params_.delta_ce_ev;
    const double rc =
        capture_gain > 0.0
            ? capture_gain / params_.tau0_capture_s * std::exp(-ea_c / kT)
            : 0.0;
    const double re =
        emission_gain / params_.tau0_emission_s * std::exp(-ea_e / kT);
    const double rate = rc + re;
    if (rate <= 0.0) continue;
    const double n_eq = rc / rate;
    const double decay = std::exp(-dt.value() * rate);
    occupancy_[i] = n_eq + (occupancy_[i] - n_eq) * decay;
  }
}

void TrapEnsemble::reset() {
  std::fill(occupancy_.begin(), occupancy_.end(), 0.0);
}

Volts TrapEnsemble::delta_vth() const {
  return params_.dvth_max * occupied_fraction();
}

double TrapEnsemble::occupied_fraction() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] * occupancy_[i];
  }
  return acc;
}

double TrapEnsemble::occupancy(std::size_t i) const {
  DH_REQUIRE(i < occupancy_.size(), "trap bin index out of range");
  return occupancy_[i];
}

double TrapEnsemble::bin_energy_ev(std::size_t i) const {
  DH_REQUIRE(i < centers_.size(), "trap bin index out of range");
  return centers_[i];
}

}  // namespace dh::device
