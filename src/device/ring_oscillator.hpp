// Ring-oscillator frequency model — the paper's BTI measurement structure
// (a 75-stage LUT-mapped RO on a 40 nm FPGA). Stage delay follows the
// alpha-power law, so the oscillation frequency is a direct, monotonic
// readout of the threshold-voltage shift.
#pragma once

#include "common/units.hpp"

namespace dh::device {

struct RingOscillatorParams {
  int stages = 75;           // paper: 75-stage LUT-mapped RO
  Volts vdd{1.1};
  Volts vth0{0.35};
  double alpha = 1.3;        // velocity-saturation exponent
  Hertz fresh_frequency{80e6};
};

class RingOscillator {
 public:
  explicit RingOscillator(RingOscillatorParams params);

  /// Oscillation frequency for a given Vth shift and mobility factor.
  [[nodiscard]] Hertz frequency(Volts delta_vth,
                                double mobility_factor = 1.0) const;

  /// Same at a non-nominal supply.
  [[nodiscard]] Hertz frequency_at(Volts vdd, Volts delta_vth,
                                   double mobility_factor = 1.0) const;

  /// Fractional frequency degradation (positive = slower) for a shift.
  [[nodiscard]] double degradation(Volts delta_vth,
                                   double mobility_factor = 1.0) const;

  /// Inverts the frequency readout into an apparent Vth shift (what a
  /// frequency-based wearout sensor reports). Monotonic bisection.
  [[nodiscard]] Volts infer_delta_vth(Hertz measured) const;

  [[nodiscard]] const RingOscillatorParams& params() const { return params_; }

 private:
  RingOscillatorParams params_;
};

}  // namespace dh::device
