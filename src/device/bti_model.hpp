// Full BTI wearout/recovery model: trap ensemble (recoverable) +
// precursor/locking dynamics (quasi-permanent). This is the device-level
// model behind Table I and Fig. 4.
#pragma once

#include "device/bti_types.hpp"
#include "device/permanent.hpp"
#include "device/trap_ensemble.hpp"

namespace dh::device {

struct BtiModelParams {
  TrapEnsembleParams ensemble;
  PermanentComponentParams permanent;
};

class BtiModel {
 public:
  explicit BtiModel(BtiModelParams params);

  /// Model calibrated to the paper's Table I (see calibration.cpp for the
  /// fitted constants and the fitting procedure).
  [[nodiscard]] static BtiModel paper_calibrated();

  /// Advance the device state for `dt` under a constant condition.
  void apply(const BtiCondition& condition, Seconds dt);

  /// Convenience: run a stress phase then a recovery phase.
  void stress(const BtiCondition& condition, Seconds duration) {
    apply(condition, duration);
  }
  void recover(const BtiCondition& condition, Seconds duration) {
    apply(condition, duration);
  }

  void reset();

  /// Total threshold-voltage shift relative to fresh.
  [[nodiscard]] Volts delta_vth() const;

  /// Component breakdown (recoverable / unlocked precursor / locked).
  [[nodiscard]] BtiBreakdown breakdown() const;

  /// Carrier-mobility degradation factor in (0, 1]; BTI reduces mobility
  /// together with shifting Vth (Section I of the paper). Modeled as a
  /// first-order coupling to the interface-charge population.
  [[nodiscard]] double mobility_factor() const;

  [[nodiscard]] const BtiModelParams& params() const { return params_; }

 private:
  BtiModelParams params_;
  TrapEnsemble ensemble_;
  PermanentComponent permanent_;
};

/// Result of a stress-then-recover experiment.
struct RecoveryOutcome {
  Volts dvth_after_stress{0.0};
  Volts dvth_after_recovery{0.0};
  /// Fraction of the stress-induced shift undone by the recovery phase.
  [[nodiscard]] double recovery_fraction() const;
};

/// Runs the paper's canonical experiment shape: fresh device, stress for
/// `stress_time` under `stress_cond`, then recover for `recovery_time`
/// under `recovery_cond`.
[[nodiscard]] RecoveryOutcome run_stress_recovery(
    BtiModel& model, const BtiCondition& stress_cond, Seconds stress_time,
    const BtiCondition& recovery_cond, Seconds recovery_time);

}  // namespace dh::device
