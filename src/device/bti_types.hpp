// Shared vocabulary types for the BTI wearout/recovery models.
#pragma once

#include "common/units.hpp"

namespace dh::device {

/// An operating condition for a transistor's gate stack.
///
/// `gate_bias` follows the paper's Fig. 2a convention:
///   > 0  — stress (the magnitude of the stress overdrive),
///   = 0  — device OFF, passive recovery (paper condition No. 1/3),
///   < 0  — active recovery: negative Vsg applied (condition No. 2/4).
/// Temperature selects between room-temperature and accelerated recovery.
struct BtiCondition {
  Volts gate_bias{0.0};
  Celsius temperature{20.0};

  [[nodiscard]] bool is_stress() const { return gate_bias.value() > 0.0; }
  [[nodiscard]] bool is_active_recovery() const {
    return gate_bias.value() < 0.0;
  }
};

/// The four recovery conditions of Table I (and the paper's accelerated
/// stress condition).
namespace paper_conditions {

/// Accelerated stress: "high voltage and temperature" (Section III-C).
[[nodiscard]] inline BtiCondition accelerated_stress() {
  return {Volts{1.2}, Celsius{110.0}};
}
/// No. 1: passive recovery, 20 °C and 0 V.
[[nodiscard]] inline BtiCondition recovery_no1() {
  return {Volts{0.0}, Celsius{20.0}};
}
/// No. 2: active recovery, 20 °C and −0.3 V.
[[nodiscard]] inline BtiCondition recovery_no2() {
  return {Volts{-0.3}, Celsius{20.0}};
}
/// No. 3: accelerated recovery, 110 °C and 0 V.
[[nodiscard]] inline BtiCondition recovery_no3() {
  return {Volts{0.0}, Celsius{110.0}};
}
/// No. 4: accelerated + active recovery, 110 °C and −0.3 V.
[[nodiscard]] inline BtiCondition recovery_no4() {
  return {Volts{-0.3}, Celsius{110.0}};
}

}  // namespace paper_conditions

/// Decomposition of the threshold-voltage shift into the paper's
/// recoverable and (quasi-)permanent parts.
struct BtiBreakdown {
  Volts recoverable{0.0};   // trapped-charge component (de-trappable)
  Volts unlocked{0.0};      // permanent-precursor, still annealable
  Volts locked{0.0};        // locked-in permanent component
  [[nodiscard]] Volts total() const {
    return recoverable + unlocked + locked;
  }
};

}  // namespace dh::device
