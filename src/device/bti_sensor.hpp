// Frequency-counter BTI sensor: reads an aged ring oscillator the way the
// paper's FPGA test harness does — with a finite gate time (quantization)
// and supply/temperature noise. Produces the "measurement" column of our
// Table I reproduction next to the analytic "model" column.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "device/bti_model.hpp"
#include "device/ring_oscillator.hpp"

namespace dh::device {

struct BtiSensorParams {
  Seconds gate_time{0.1};          // counter gate: resolution = 1/gate_time
  double relative_noise = 2e-4;    // supply/temperature-induced jitter
};

class BtiSensor {
 public:
  BtiSensor(RingOscillator ro, BtiSensorParams params, Rng rng);

  /// One frequency measurement of a device in the given BTI state.
  [[nodiscard]] Hertz measure_frequency(const BtiModel& device);

  /// Measured Vth shift: frequency readout inverted through the RO model.
  [[nodiscard]] Volts measure_delta_vth(const BtiModel& device);

  [[nodiscard]] const RingOscillator& oscillator() const { return ro_; }

 private:
  RingOscillator ro_;
  BtiSensorParams params_;
  Rng rng_;
};

}  // namespace dh::device
