#include "device/ring_oscillator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math/roots.hpp"

namespace dh::device {

RingOscillator::RingOscillator(RingOscillatorParams params)
    : params_(params) {
  DH_REQUIRE(params_.stages >= 3 && params_.stages % 2 == 1,
             "ring oscillator needs an odd stage count >= 3");
  DH_REQUIRE(params_.vdd > params_.vth0,
             "supply must exceed the threshold voltage");
  DH_REQUIRE(params_.alpha >= 1.0 && params_.alpha <= 2.0,
             "alpha-power exponent out of physical range");
}

Hertz RingOscillator::frequency(Volts delta_vth,
                                double mobility_factor) const {
  return frequency_at(params_.vdd, delta_vth, mobility_factor);
}

Hertz RingOscillator::frequency_at(Volts vdd, Volts delta_vth,
                                   double mobility_factor) const {
  DH_REQUIRE(mobility_factor > 0.0 && mobility_factor <= 1.0,
             "mobility factor must be in (0, 1]");
  const double overdrive0 = params_.vdd.value() - params_.vth0.value();
  const double overdrive =
      vdd.value() - params_.vth0.value() - delta_vth.value();
  DH_REQUIRE(overdrive > 0.0,
             "device no longer switches: Vdd - Vth - dVth <= 0");
  // Alpha-power law: f ~ mu * (Vdd - Vth)^alpha / Vdd.
  const double ratio = mobility_factor *
                       std::pow(overdrive / overdrive0, params_.alpha) *
                       (params_.vdd.value() / vdd.value());
  return Hertz{params_.fresh_frequency.value() * ratio};
}

double RingOscillator::degradation(Volts delta_vth,
                                   double mobility_factor) const {
  const double f = frequency(delta_vth, mobility_factor).value();
  return 1.0 - f / params_.fresh_frequency.value();
}

Volts RingOscillator::infer_delta_vth(Hertz measured) const {
  const double overdrive0 = params_.vdd.value() - params_.vth0.value();
  const double hi = overdrive0 * 0.95;
  const auto f = [&](double dv) {
    return frequency(Volts{dv}).value() - measured.value();
  };
  if (f(0.0) <= 0.0) return Volts{0.0};  // at/above fresh frequency
  return Volts{math::brent_root(f, 0.0, hi, 1e-9)};
}

}  // namespace dh::device
