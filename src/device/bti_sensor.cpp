#include "device/bti_sensor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dh::device {

BtiSensor::BtiSensor(RingOscillator ro, BtiSensorParams params, Rng rng)
    : ro_(ro), params_(params), rng_(rng) {
  DH_REQUIRE(params_.gate_time.value() > 0.0,
             "counter gate time must be positive");
  DH_REQUIRE(params_.relative_noise >= 0.0, "noise must be non-negative");
}

Hertz BtiSensor::measure_frequency(const BtiModel& device) {
  const double truth =
      ro_.frequency(device.delta_vth(), device.mobility_factor()).value();
  const double noisy =
      truth * (1.0 + rng_.normal(0.0, params_.relative_noise));
  // Counter quantization: counts within one gate period.
  const double resolution = 1.0 / params_.gate_time.value();
  const double quantized = std::round(noisy / resolution) * resolution;
  return Hertz{quantized};
}

Volts BtiSensor::measure_delta_vth(const BtiModel& device) {
  return ro_.infer_delta_vth(measure_frequency(device));
}

}  // namespace dh::device
