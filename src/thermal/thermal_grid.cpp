#include "thermal/thermal_grid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dh::thermal {

ThermalGrid::ThermalGrid(ThermalGridParams params) : params_(params) {
  DH_REQUIRE(params_.rows >= 1 && params_.cols >= 1, "grid must be non-empty");
  DH_REQUIRE(params_.vertical_g_w_per_k > 0.0,
             "package conductance must be positive");
  power_.assign(tile_count(), 0.0);
  temp_rise_.assign(tile_count(), 0.0);
  build_conductance();
}

std::size_t ThermalGrid::index(std::size_t row, std::size_t col) const {
  DH_REQUIRE(row < params_.rows && col < params_.cols,
             "tile coordinates out of range");
  return row * params_.cols + col;
}

void ThermalGrid::build_conductance() {
  const std::size_t n = tile_count();
  g_ = math::Matrix(n, n, 0.0);
  // Lateral conductance between adjacent tiles: k * (w * t) / w = k * t.
  const double g_lat =
      params_.k_silicon_w_per_mk * params_.die_thickness.value();
  for (std::size_t r = 0; r < params_.rows; ++r) {
    for (std::size_t c = 0; c < params_.cols; ++c) {
      const std::size_t i = r * params_.cols + c;
      g_(i, i) += params_.vertical_g_w_per_k;
      const auto couple = [&](std::size_t j) {
        g_(i, i) += g_lat;
        g_(i, j) -= g_lat;
      };
      if (r + 1 < params_.rows) couple(i + params_.cols);
      if (r > 0) couple(i - params_.cols);
      if (c + 1 < params_.cols) couple(i + 1);
      if (c > 0) couple(i - 1);
    }
  }
  steady_lu_ = std::make_unique<math::LuFactorization>(g_);
  transient_lu_.reset();
  transient_dt_ = -1.0;
}

void ThermalGrid::set_power(std::size_t tile, Watts p) {
  DH_REQUIRE(tile < tile_count(), "tile index out of range");
  DH_REQUIRE(p.value() >= 0.0, "power must be non-negative");
  power_[tile] = p.value();
}

void ThermalGrid::set_power_map(std::span<const double> watts) {
  DH_REQUIRE(watts.size() == tile_count(), "power map size mismatch");
  for (std::size_t i = 0; i < watts.size(); ++i) {
    DH_REQUIRE(watts[i] >= 0.0, "power must be non-negative");
    power_[i] = watts[i];
  }
}

void ThermalGrid::solve_steady() { temp_rise_ = steady_lu_->solve(power_); }

void ThermalGrid::step(Seconds dt) {
  DH_REQUIRE(dt.value() > 0.0, "time step must be positive");
  const std::size_t n = tile_count();
  if (transient_dt_ != dt.value() || transient_lu_ == nullptr) {
    math::Matrix a = g_;
    const double c_dt = params_.tile_heat_capacity_j_per_k / dt.value();
    for (std::size_t i = 0; i < n; ++i) a(i, i) += c_dt;
    transient_lu_ = std::make_unique<math::LuFactorization>(a);
    transient_dt_ = dt.value();
  }
  std::vector<double> rhs(n);
  const double c_dt = params_.tile_heat_capacity_j_per_k / dt.value();
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = power_[i] + c_dt * temp_rise_[i];
  }
  temp_rise_ = transient_lu_->solve(rhs);
}

Celsius ThermalGrid::temperature(std::size_t tile) const {
  DH_REQUIRE(tile < tile_count(), "tile index out of range");
  return Celsius{params_.ambient.value() + temp_rise_[tile]};
}

Celsius ThermalGrid::max_temperature() const {
  const double m = *std::max_element(temp_rise_.begin(), temp_rise_.end());
  return Celsius{params_.ambient.value() + m};
}

Celsius ThermalGrid::mean_temperature() const {
  double acc = 0.0;
  for (const double t : temp_rise_) acc += t;
  return Celsius{params_.ambient.value() +
                 acc / static_cast<double>(tile_count())};
}

}  // namespace dh::thermal
