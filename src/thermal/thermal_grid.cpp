#include "thermal/thermal_grid.hpp"

#include <algorithm>
#include <utility>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"

namespace dh::thermal {

ThermalGrid::ThermalGrid(ThermalGridParams params) : params_(params) {
  DH_REQUIRE(params_.rows >= 1 && params_.cols >= 1, "grid must be non-empty");
  DH_REQUIRE(params_.vertical_g_w_per_k > 0.0,
             "package conductance must be positive");
  power_.assign(tile_count(), 0.0);
  temp_rise_.assign(tile_count(), 0.0);
  build_conductance();
}

std::size_t ThermalGrid::index(std::size_t row, std::size_t col) const {
  DH_REQUIRE(row < params_.rows && col < params_.cols,
             "tile coordinates out of range");
  return row * params_.cols + col;
}

void ThermalGrid::build_conductance() {
  const std::size_t n = tile_count();
  // 5-point stencil: vertical escape on the diagonal, lateral coupling
  // k * (w * t) / w = k * t to each mesh neighbour.
  math::sparse::CsrBuilder builder(n, n, 5);
  const double g_lat =
      params_.k_silicon_w_per_mk * params_.die_thickness.value();
  for (std::size_t r = 0; r < params_.rows; ++r) {
    for (std::size_t c = 0; c < params_.cols; ++c) {
      const std::size_t i = r * params_.cols + c;
      builder.add_diagonal(i, params_.vertical_g_w_per_k);
      if (r + 1 < params_.rows) builder.add_edge(i, i + params_.cols, g_lat);
      if (c + 1 < params_.cols) builder.add_edge(i, i + 1, g_lat);
    }
  }
  g_ = builder.build();
  steady_ = std::make_unique<math::sparse::SpdSolver>(g_, params_.solver);
  ++stats_.factorizations;
  static obs::Counter& factorizations =
      obs::registry().counter("thermal.solve.factorizations");
  factorizations.add();
  transient_.clear();
}

void ThermalGrid::set_power(std::size_t tile, Watts p) {
  DH_REQUIRE(tile < tile_count(), "tile index out of range");
  DH_REQUIRE(p.value() >= 0.0, "power must be non-negative");
  power_[tile] = p.value();
}

void ThermalGrid::set_power_map(std::span<const double> watts) {
  DH_REQUIRE(watts.size() == tile_count(), "power map size mismatch");
  for (std::size_t i = 0; i < watts.size(); ++i) {
    DH_REQUIRE(watts[i] >= 0.0, "power must be non-negative");
    power_[i] = watts[i];
  }
}

void ThermalGrid::solve_steady() {
  ++stats_.steady_solves;
  temp_rise_ = steady_->solve(power_);
}

const math::sparse::SpdSolver& ThermalGrid::transient_solver(double dt) {
  for (std::size_t i = 0; i < transient_.size(); ++i) {
    if (transient_[i].first == dt) {
      ++stats_.transient_cache_hits;
      if (i > 0) {  // move to front: MRU order
        auto hit = std::move(transient_[i]);
        transient_.erase(transient_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        transient_.insert(transient_.begin(), std::move(hit));
      }
      return *transient_.front().second;
    }
  }
  // First sight of this dt: factor G + C/dt on the same sparsity pattern
  // (every row has a diagonal entry — vertical_g_w_per_k > 0).
  math::sparse::CsrMatrix a = g_;
  const double c_dt = params_.tile_heat_capacity_j_per_k / dt;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  auto& values = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] == r) {
        values[k] += c_dt;
        break;
      }
    }
  }
  transient_.emplace(
      transient_.begin(), dt,
      std::make_unique<math::sparse::SpdSolver>(std::move(a),
                                                params_.solver));
  if (transient_.size() > kMaxTransientFactors) transient_.pop_back();
  ++stats_.factorizations;
  static obs::Counter& factorizations =
      obs::registry().counter("thermal.solve.factorizations");
  factorizations.add();
  return *transient_.front().second;
}

void ThermalGrid::step(Seconds dt) {
  DH_REQUIRE(dt.value() > 0.0, "time step must be positive");
  const std::size_t n = tile_count();
  ++stats_.transient_steps;
  const math::sparse::SpdSolver& solver = transient_solver(dt.value());
  std::vector<double> rhs(n);
  const double c_dt = params_.tile_heat_capacity_j_per_k / dt.value();
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = power_[i] + c_dt * temp_rise_[i];
  }
  temp_rise_ = solver.solve(rhs);
}

math::sparse::SpdMethod ThermalGrid::solver_method() const {
  return steady_->method();
}

Celsius ThermalGrid::temperature(std::size_t tile) const {
  DH_REQUIRE(tile < tile_count(), "tile index out of range");
  return Celsius{params_.ambient.value() + temp_rise_[tile]};
}

Celsius ThermalGrid::max_temperature() const {
  const double m = *std::max_element(temp_rise_.begin(), temp_rise_.end());
  return Celsius{params_.ambient.value() + m};
}

void ThermalGrid::save_state(ckpt::Serializer& s) const {
  s.begin_section("THRM");
  s.write_f64_vec(power_);
  s.write_f64_vec(temp_rise_);
  s.write_bool(steady_->cg_rescue_built());
  // Transient cache keys, oldest first, so a load that re-inserts each at
  // the MRU front reproduces the exact cache order.
  s.write_u64(transient_.size());
  for (std::size_t i = transient_.size(); i > 0; --i) {
    s.write_f64(transient_[i - 1].first);
    s.write_bool(transient_[i - 1].second->cg_rescue_built());
  }
  s.write_u64(stats_.steady_solves);
  s.write_u64(stats_.transient_steps);
  s.write_u64(stats_.factorizations);
  s.write_u64(stats_.transient_cache_hits);
}

void ThermalGrid::load_state(ckpt::Deserializer& d) {
  d.expect_section("THRM");
  std::vector<double> power = d.read_f64_vec();
  std::vector<double> temp_rise = d.read_f64_vec();
  DH_REQUIRE(power.size() == tile_count() && temp_rise.size() == tile_count(),
             "thermal snapshot tile count does not match this grid");
  power_ = std::move(power);
  temp_rise_ = std::move(temp_rise);
  if (d.read_bool()) steady_->build_cg_rescue();
  transient_.clear();
  const std::uint64_t cached = d.read_u64();
  DH_REQUIRE(cached <= kMaxTransientFactors,
             "thermal snapshot transient cache exceeds the MRU capacity");
  for (std::uint64_t i = 0; i < cached; ++i) {
    const double dt = d.read_f64();
    const bool rescue = d.read_bool();
    const math::sparse::SpdSolver& solver = transient_solver(dt);
    if (rescue) solver.build_cg_rescue();
  }
  // The rebuild above bumped the counters; the snapshot values (matching
  // the uninterrupted run) win.
  stats_.steady_solves = static_cast<std::size_t>(d.read_u64());
  stats_.transient_steps = static_cast<std::size_t>(d.read_u64());
  stats_.factorizations = static_cast<std::size_t>(d.read_u64());
  stats_.transient_cache_hits = static_cast<std::size_t>(d.read_u64());
}

Celsius ThermalGrid::mean_temperature() const {
  double acc = 0.0;
  for (const double t : temp_rise_) acc += t;
  return Celsius{params_.ambient.value() +
                 acc / static_cast<double>(tile_count())};
}

}  // namespace dh::thermal
