// HotSpot-style 2-D thermal RC grid of the die.
//
// Each floorplan tile couples laterally to its neighbours through silicon
// and vertically to the heat sink/ambient through the package. Used by the
// system-level simulator for two things the paper calls out: (1) wearout
// acceleration with local temperature, and (2) *heat-assisted recovery* —
// an idle core parked next to hot neighbours recovers faster because its
// temperature rides up on theirs (Fig. 12a).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/math/sparse/spd_solver.hpp"
#include "common/units.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::thermal {

struct ThermalGridParams {
  std::size_t rows = 4;
  std::size_t cols = 4;
  Meters tile_width{1e-3};          // square tiles
  Meters die_thickness{0.5e-3};
  double k_silicon_w_per_mk = 120.0;
  /// Vertical conductance to ambient per tile (package + heatsink), W/K.
  double vertical_g_w_per_k = 0.15;
  /// Heat capacity per tile, J/K.
  double tile_heat_capacity_j_per_k = 8e-4;
  Celsius ambient{45.0};
  /// Engine tuning (direct-vs-CG threshold, CG tolerances).
  math::sparse::SpdSolverOptions solver;
};

/// Counters for the cached thermal solvers (mirrors PdnSolveStats).
struct ThermalSolveStats {
  std::size_t steady_solves = 0;
  std::size_t transient_steps = 0;
  /// Factorizations built: one per build_conductance for the steady
  /// solver plus one per distinct dt admitted to the transient cache.
  std::size_t factorizations = 0;
  /// Transient steps served by a dt-keyed cached factorization.
  std::size_t transient_cache_hits = 0;
};

class ThermalGrid {
 public:
  explicit ThermalGrid(ThermalGridParams params);

  [[nodiscard]] std::size_t tile_count() const {
    return params_.rows * params_.cols;
  }
  [[nodiscard]] std::size_t index(std::size_t row, std::size_t col) const;

  void set_power(std::size_t tile, Watts p);
  void set_power_map(std::span<const double> watts);

  /// Steady-state temperatures for the current power map.
  void solve_steady();

  /// Transient step (backward Euler) with the current power map. The
  /// (G + C/dt) factorization is cached *per dt value* (small MRU set),
  /// so workloads alternating between a handful of step sizes — fig12's
  /// scheduling quanta vs recovery quanta — refactorize only on first
  /// sight of each dt instead of on every change.
  void step(Seconds dt);

  [[nodiscard]] Celsius temperature(std::size_t tile) const;
  [[nodiscard]] Celsius max_temperature() const;
  [[nodiscard]] Celsius mean_temperature() const;
  [[nodiscard]] const ThermalGridParams& params() const { return params_; }

  /// Counters for the cached solvers (how often they refactorized).
  [[nodiscard]] const ThermalSolveStats& solve_stats() const {
    return stats_;
  }
  /// Engine the steady solver runs on (kDenseLu = breakdown fallback).
  [[nodiscard]] math::sparse::SpdMethod solver_method() const;

  /// Checkpoint support. Saves the power map, temperature field, solve
  /// counters, and the transient cache's dt keys (+ rescue flags);
  /// load_state deterministically rebuilds the cached factorizations in
  /// the same MRU order so a restored grid takes the same solve paths as
  /// an uninterrupted one, then restores the counters.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  /// Most distinct dt factorizations kept; LRU beyond that.
  static constexpr std::size_t kMaxTransientFactors = 8;

  void build_conductance();
  [[nodiscard]] const math::sparse::SpdSolver& transient_solver(double dt);

  ThermalGridParams params_;
  math::sparse::CsrMatrix g_;  // conductance Laplacian + vertical
  std::unique_ptr<math::sparse::SpdSolver> steady_;
  /// MRU-ordered (dt, factorization of G + C/dt) cache.
  std::vector<std::pair<double, std::unique_ptr<math::sparse::SpdSolver>>>
      transient_;
  std::vector<double> power_;
  std::vector<double> temp_rise_;  // above ambient
  ThermalSolveStats stats_;
};

}  // namespace dh::thermal
