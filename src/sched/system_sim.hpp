// Lifetime simulator of a many-core system with BTI+EM wearout, thermal
// coupling, a PDN, sensors, and a pluggable recovery policy — the
// quantitative version of the paper's Fig. 12.
//
// Each scheduling quantum:
//   1. workloads produce per-core demand,
//   2. the policy (given sensor observations) assigns actions and decides
//      whether the assist circuitry runs the grid in EM recovery mode,
//   3. demand of non-running cores migrates to running ones,
//   4. the power map feeds the thermal grid (steady-state per quantum —
//      thermal time constants are far below the quantum),
//   5. cores age/recover at their tile temperatures (compact BTI),
//   6. the PDN ages at its per-segment current densities (compact EM),
//   7. metrics are recorded.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time_series.hpp"
#include "common/units.hpp"
#include "em/material.hpp"
#include "pdn/aging_pdn.hpp"
#include "sched/core_model.hpp"
#include "sched/policy.hpp"
#include "sched/workload.hpp"
#include "thermal/thermal_grid.hpp"

namespace dh::sched {

struct SystemParams {
  std::size_t rows = 4;
  std::size_t cols = 4;
  CoreParams core{};
  WorkloadParams workload{};
  thermal::ThermalGridParams thermal{};  // rows/cols overridden to match
  pdn::PdnParams pdn{};                  // rows/cols overridden to match
  em::EmMaterialParams em_material{};
  Seconds quantum{hours(6.0)};
  Volts sensor_noise{0.0005};
  std::uint64_t seed = 42;
};

struct SystemSummary {
  /// Worst fractional fmax degradation ever observed across cores — the
  /// timing guardband a designer must provision.
  double guardband_fraction = 0.0;
  /// Degradation at end of life (after any final recovery).
  double final_degradation = 0.0;
  Seconds time_to_failure{-1.0};  // first PDN failure; negative = survived
  double mean_throughput = 0.0;   // delivered / demanded core-utilization
  double availability = 0.0;      // fraction of demand served
  double energy_joules = 0.0;
  double mean_temperature_c = 0.0;
  /// Quanta spent with active recovery in flight (see
  /// SystemSimulator::recovery_quanta).
  std::size_t recovery_quanta = 0;
  pdn::AgingPdnStats pdn_stats{};
};

class SystemSimulator {
 public:
  SystemSimulator(SystemParams params,
                  std::unique_ptr<RecoveryPolicy> policy);

  /// Advance one scheduling quantum.
  void step();

  /// Run until `lifetime` has elapsed. When the DH_CKPT_DIR environment
  /// variable names a directory, the run checkpoints itself there every
  /// DH_CKPT_EVERY quanta (default 64) under
  /// `<dir>/sim_seed<seed>.dhck`, and — if a valid checkpoint for this
  /// configuration already exists and no steps have run yet — resumes
  /// from it bit-identically, so a killed run loses at most one
  /// checkpoint interval.
  void run(Seconds lifetime);

  /// Checkpoint support: serialize the complete mutable state (cores,
  /// workloads, thermal grid, PDN wire states, RNG stream, accumulators,
  /// traces, policy state, and solver-cache state) such that
  /// load_state + run(T') is bit-identical to an uninterrupted run(T+T').
  void save_state(ckpt::Serializer& s) const;
  /// Restore from save_state output. Throws dh::Error when the snapshot
  /// was produced by a simulator with different parameters (grid size,
  /// quantum, seed, policy).
  void load_state(ckpt::Deserializer& d);

  /// Atomic whole-file checkpoint (snapshot container, kind
  /// "system_sim") — see ckpt::write_snapshot for the format guarantees.
  void save_checkpoint(const std::string& path) const;
  /// Restore from a checkpoint file; validates magic, version, kind, and
  /// CRC before any state is touched. Increments the `sim.resume`
  /// counter.
  void load_checkpoint(const std::string& path);

  [[nodiscard]] Seconds now() const { return Seconds{now_s_}; }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  [[nodiscard]] const Core& core(std::size_t i) const;
  [[nodiscard]] const RecoveryPolicy& policy() const { return *policy_; }

  /// Quanta in which active recovery was in flight (any core in BTI
  /// active recovery, or the grid in EM recovery mode) — makes schedules
  /// like Fig. 4's 1h:1h duty cycle directly auditable. Mirrored into the
  /// registry counter `sim.recovery_quanta` and stamped on every
  /// `sim/quantum` trace event, so tools/trace_report reproduces it
  /// exactly from a recorded trace.
  [[nodiscard]] std::size_t recovery_quanta() const {
    return recovery_quanta_;
  }

  /// Max fractional degradation across cores vs time.
  [[nodiscard]] const TimeSeries& degradation_trace() const {
    return degradation_trace_;
  }
  /// Worst PDN IR drop vs time.
  [[nodiscard]] const TimeSeries& ir_drop_trace() const {
    return ir_drop_trace_;
  }
  /// Hottest tile temperature vs time.
  [[nodiscard]] const TimeSeries& temperature_trace() const {
    return temperature_trace_;
  }

  [[nodiscard]] SystemSummary summary() const;

 private:
  SystemParams params_;
  std::unique_ptr<RecoveryPolicy> policy_;
  std::vector<Core> cores_;
  std::vector<Workload> workloads_;
  thermal::ThermalGrid thermal_;
  pdn::AgingPdn pdn_;
  Rng rng_;
  double now_s_ = 0.0;
  double demanded_acc_ = 0.0;
  double delivered_acc_ = 0.0;
  double energy_j_ = 0.0;
  double temp_acc_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t recovery_quanta_ = 0;
  bool was_recovering_ = false;  // edge detector for recovery_enter events
  double guardband_ = 0.0;
  double first_failure_s_ = -1.0;
  /// Last accepted per-core sensor reading — the substitute when a read
  /// comes back non-finite or absurd (fault sites sensor.nan /
  /// sensor.outlier, or a genuinely broken sensor).
  std::vector<double> last_good_sensor_;
  TimeSeries degradation_trace_{"max_degradation", "frac"};
  TimeSeries ir_drop_trace_{"worst_ir_drop", "V"};
  TimeSeries temperature_trace_{"max_temp", "C"};
};

}  // namespace dh::sched
