// Population-scale lifetime sweeps: run many independent SystemSimulator
// instances (process/seed spread) over the thread pool and aggregate the
// population statistics designers actually budget against — early TTF
// percentiles, guardband spread, availability. This is the system-level
// analogue of the EM wire-population benchmark: the paper's recovery
// claims are statistical, so they only mean something over populations.
//
// Determinism: member i derives its seed as Rng::stream_seed(base.seed, i)
// — a pure function of (base seed, index) — and each member owns every
// piece of mutable state it touches, so sweep results are bit-identical
// regardless of thread count.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sched/system_sim.hpp"

namespace dh::sched {

/// Builds the recovery policy for population member `index`. Called once
/// per member, possibly concurrently — must not share mutable state.
using PolicyFactory =
    std::function<std::unique_ptr<RecoveryPolicy>(std::size_t index)>;

struct PopulationAggregates {
  std::size_t members = 0;
  std::size_t failed = 0;          // members whose PDN failed in-lifetime
  double failed_fraction = 0.0;
  /// TTF percentiles over the *failing* members (seconds); negative when
  /// fewer than 1/p members failed (percentile undefined).
  double ttf_p1_s = -1.0;
  double ttf_p50_s = -1.0;
  double mean_guardband = 0.0;
  double worst_guardband = 0.0;
  double mean_availability = 0.0;
  double min_availability = 0.0;
};

/// Run `count` independent lifetime simulations of `base` (seed varied
/// per member), each for `lifetime`, over the global thread pool.
/// Returns per-member summaries ordered by member index.
[[nodiscard]] std::vector<SystemSummary> run_population(
    const SystemParams& base, std::size_t count, Seconds lifetime,
    const PolicyFactory& make_policy);

/// Resumable variant: each member's summary is persisted to
/// `<resume_dir>/member_<i>.dhck` (atomic snapshot, kind
/// "population_member") the moment it completes, and members whose
/// snapshot already exists — and matches this sweep's index, seed, and
/// lifetime — are loaded instead of re-simulated. A killed sweep re-run
/// with the same arguments therefore only pays for the members it had
/// not finished. A manifest (`<resume_dir>/manifest.dhck`) pins (count,
/// lifetime, base seed); rerunning with different arguments against the
/// same directory throws dh::Error rather than silently mixing sweeps.
/// Results are bit-identical to the non-resumable overload at any thread
/// count. Completed members count into the `population.resumed` counter;
/// freshly simulated ones into `population.computed`.
[[nodiscard]] std::vector<SystemSummary> run_population(
    const SystemParams& base, std::size_t count, Seconds lifetime,
    const PolicyFactory& make_policy, const std::string& resume_dir);

/// Completion bitmap of a sweep directory: bit i is set when member i has
/// a valid (readable, CRC-clean) summary snapshot in `dir`. Corrupt or
/// truncated member files simply read as "not done yet".
[[nodiscard]] std::vector<bool> population_completion(const std::string& dir,
                                                      std::size_t count);

/// Population statistics over per-member summaries.
[[nodiscard]] PopulationAggregates aggregate_population(
    std::span<const SystemSummary> members);

}  // namespace dh::sched
