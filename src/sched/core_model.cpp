#include "sched/core_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::sched {

const char* to_string(CoreAction a) {
  switch (a) {
    case CoreAction::kRun:
      return "run";
    case CoreAction::kIdle:
      return "idle";
    case CoreAction::kBtiActiveRecovery:
      return "bti-recovery";
  }
  return "?";
}

Core::Core(CoreParams params)
    : params_(params), bti_(params.bti), ro_(params.ro) {}

void Core::step(CoreAction action, double utilization, Celsius temperature,
                Seconds dt) {
  DH_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
             "utilization must be in [0,1]");
  switch (action) {
    case CoreAction::kRun: {
      // Devices see stress for the utilized fraction of the quantum and
      // passive recovery for the rest (signal-probability averaging).
      const Seconds stressed{dt.value() * utilization};
      const Seconds relaxed{dt.value() * (1.0 - utilization)};
      if (stressed.value() > 0.0) {
        bti_.apply({params_.vdd, temperature}, stressed);
      }
      if (relaxed.value() > 0.0) {
        bti_.apply({Volts{0.0}, temperature}, relaxed);
      }
      break;
    }
    case CoreAction::kIdle:
      bti_.apply({Volts{0.0}, temperature}, dt);
      break;
    case CoreAction::kBtiActiveRecovery:
      bti_.apply({params_.active_recovery_bias, temperature}, dt);
      break;
  }
}

Hertz Core::fmax() const {
  return ro_.frequency(bti_.delta_vth());
}

double Core::degradation() const {
  return ro_.degradation(bti_.delta_vth());
}

Watts Core::power(CoreAction action, double utilization,
                  Celsius temperature) const {
  // Exponential leakage growth, capped: past ~2 e-folds real designs
  // throttle (and the exponential alone would make the thermal solve
  // diverge in pathological configurations).
  const double leak_scale = std::min(
      8.0, std::exp((temperature.value() - params_.leakage_t_ref.value()) /
                    params_.leakage_t_efold_k));
  // BTI raises Vth, which suppresses subthreshold leakage slightly.
  const double vth_scale =
      std::exp(-bti_.delta_vth().value() / 0.050);
  const double leak =
      params_.leakage_ref.value() * leak_scale * vth_scale;
  switch (action) {
    case CoreAction::kRun:
      return Watts{params_.dynamic_power_peak.value() * utilization + leak};
    case CoreAction::kIdle:
      return Watts{0.05 * leak};  // power-gated: residual rail leakage
    case CoreAction::kBtiActiveRecovery:
      return Watts{0.08 * leak};  // cross-coupled rails, tiny assist current
  }
  return Watts{leak};
}

Amps Core::supply_current(CoreAction action, double utilization,
                          Celsius temperature) const {
  return Amps{power(action, utilization, temperature).value() /
              params_.vdd.value()};
}

void Core::save_state(ckpt::Serializer& s) const {
  s.begin_section("CORE");
  bti_.save_state(s);
}

void Core::load_state(ckpt::Deserializer& d) {
  d.expect_section("CORE");
  bti_.load_state(d);
}

}  // namespace dh::sched
