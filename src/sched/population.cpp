#include "sched/population.hpp"

#include <algorithm>

#include "common/ckpt/serialize.hpp"
#include "common/ckpt/snapshot.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dh::sched {

namespace {

constexpr const char* kMemberKind = "population_member";
constexpr const char* kManifestKind = "population_manifest";

std::string member_path(const std::string& dir, std::size_t index) {
  return dir + "/member_" + std::to_string(index) + ".dhck";
}

void save_summary(ckpt::Serializer& s, const SystemSummary& m) {
  s.begin_section("SSUM");
  s.write_f64(m.guardband_fraction);
  s.write_f64(m.final_degradation);
  s.write_f64(m.time_to_failure.value());
  s.write_f64(m.mean_throughput);
  s.write_f64(m.availability);
  s.write_f64(m.energy_joules);
  s.write_f64(m.mean_temperature_c);
  s.write_u64(m.recovery_quanta);
  s.write_f64(m.pdn_stats.worst_drop_v);
  s.write_f64(m.pdn_stats.max_void_len_m);
  s.write_u64(m.pdn_stats.nucleated_segments);
  s.write_u64(m.pdn_stats.broken_segments);
  s.write_u64(m.pdn_stats.immortal_segments);
  s.write_u64(m.pdn_stats.solver_factorizations);
  s.write_u64(m.pdn_stats.solver_cg_iterations);
}

SystemSummary load_summary(ckpt::Deserializer& d) {
  d.expect_section("SSUM");
  SystemSummary m;
  m.guardband_fraction = d.read_f64();
  m.final_degradation = d.read_f64();
  m.time_to_failure = Seconds{d.read_f64()};
  m.mean_throughput = d.read_f64();
  m.availability = d.read_f64();
  m.energy_joules = d.read_f64();
  m.mean_temperature_c = d.read_f64();
  m.recovery_quanta = static_cast<std::size_t>(d.read_u64());
  m.pdn_stats.worst_drop_v = d.read_f64();
  m.pdn_stats.max_void_len_m = d.read_f64();
  m.pdn_stats.nucleated_segments = static_cast<std::size_t>(d.read_u64());
  m.pdn_stats.broken_segments = static_cast<std::size_t>(d.read_u64());
  m.pdn_stats.immortal_segments = static_cast<std::size_t>(d.read_u64());
  m.pdn_stats.solver_factorizations =
      static_cast<std::size_t>(d.read_u64());
  m.pdn_stats.solver_cg_iterations =
      static_cast<std::size_t>(d.read_u64());
  return m;
}

/// Validate the sweep manifest against this call's arguments, writing it
/// on first use. The manifest is what stops `--resume` runs from quietly
/// mixing two different sweeps in one directory.
void check_or_write_manifest(const std::string& dir, const SystemParams& base,
                             std::size_t count, Seconds lifetime) {
  const std::string path = dir + "/manifest.dhck";
  if (ckpt::snapshot_valid(path, kManifestKind)) {
    ckpt::Deserializer d{ckpt::read_snapshot(path, kManifestKind)};
    d.expect_section("PMAN");
    const std::uint64_t m_count = d.read_u64();
    const double m_lifetime = d.read_f64();
    const std::uint64_t m_seed = d.read_u64();
    if (m_count != count || m_lifetime != lifetime.value() ||
        m_seed != base.seed) {
      throw Error("population resume directory '" + dir +
                  "' belongs to a different sweep (manifest: " +
                  std::to_string(m_count) + " members, seed " +
                  std::to_string(m_seed) + ") — use a fresh directory");
    }
    return;
  }
  ckpt::Serializer s;
  s.begin_section("PMAN");
  s.write_u64(count);
  s.write_f64(lifetime.value());
  s.write_u64(base.seed);
  ckpt::write_snapshot(path, kManifestKind, s.buffer());
}

/// Load member `index`'s persisted summary if it exists and matches this
/// sweep; nullopt-style via the `ok` flag (corrupt files read as absent).
bool try_load_member(const std::string& dir, std::size_t index,
                     std::uint64_t member_seed, Seconds lifetime,
                     SystemSummary& out) {
  const std::string path = member_path(dir, index);
  if (!ckpt::snapshot_valid(path, kMemberKind)) return false;
  try {
    ckpt::Deserializer d{ckpt::read_snapshot(path, kMemberKind)};
    d.expect_section("PMEM");
    if (d.read_u64() != index) return false;
    if (d.read_u64() != member_seed) return false;
    if (d.read_f64() != lifetime.value()) return false;
    out = load_summary(d);
    return d.exhausted();
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

std::vector<SystemSummary> run_population(const SystemParams& base,
                                          std::size_t count,
                                          Seconds lifetime,
                                          const PolicyFactory& make_policy) {
  DH_REQUIRE(count >= 1, "population needs at least one member");
  DH_REQUIRE(make_policy != nullptr, "a policy factory is required");
  return parallel_map(count, [&](std::size_t i) {
    SystemParams p = base;
    p.seed = Rng::stream_seed(base.seed, i);
    SystemSimulator sim{p, make_policy(i)};
    sim.run(lifetime);
    return sim.summary();
  });
}

std::vector<SystemSummary> run_population(const SystemParams& base,
                                          std::size_t count,
                                          Seconds lifetime,
                                          const PolicyFactory& make_policy,
                                          const std::string& resume_dir) {
  DH_REQUIRE(count >= 1, "population needs at least one member");
  DH_REQUIRE(make_policy != nullptr, "a policy factory is required");
  DH_REQUIRE(!resume_dir.empty(), "resume directory must be non-empty");
  check_or_write_manifest(resume_dir, base, count, lifetime);
  static obs::Counter& resumed =
      obs::registry().counter("population.resumed");
  static obs::Counter& computed =
      obs::registry().counter("population.computed");
  return parallel_map(count, [&](std::size_t i) {
    const std::uint64_t member_seed = Rng::stream_seed(base.seed, i);
    SystemSummary summary;
    if (try_load_member(resume_dir, i, member_seed, lifetime, summary)) {
      resumed.add();
      return summary;
    }
    SystemParams p = base;
    p.seed = member_seed;
    SystemSimulator sim{p, make_policy(i)};
    sim.run(lifetime);
    summary = sim.summary();
    // Persist the moment the member finishes: each file is written
    // atomically under its own name, so concurrent members never contend
    // and a crash can only lose in-flight members.
    ckpt::Serializer s;
    s.begin_section("PMEM");
    s.write_u64(i);
    s.write_u64(member_seed);
    s.write_f64(lifetime.value());
    save_summary(s, summary);
    ckpt::write_snapshot(member_path(resume_dir, i), kMemberKind,
                         s.buffer());
    computed.add();
    return summary;
  });
}

std::vector<bool> population_completion(const std::string& dir,
                                        std::size_t count) {
  std::vector<bool> done(count, false);
  for (std::size_t i = 0; i < count; ++i) {
    done[i] = ckpt::snapshot_valid(member_path(dir, i), kMemberKind);
  }
  return done;
}

PopulationAggregates aggregate_population(
    std::span<const SystemSummary> members) {
  PopulationAggregates agg;
  agg.members = members.size();
  if (members.empty()) return agg;
  std::vector<double> ttf;
  agg.min_availability = members.front().availability;
  for (const auto& m : members) {
    if (m.time_to_failure.value() >= 0.0) {
      ++agg.failed;
      ttf.push_back(m.time_to_failure.value());
    }
    agg.mean_guardband += m.guardband_fraction;
    agg.worst_guardband =
        std::max(agg.worst_guardband, m.guardband_fraction);
    agg.mean_availability += m.availability;
    agg.min_availability = std::min(agg.min_availability, m.availability);
  }
  const double n = static_cast<double>(members.size());
  agg.failed_fraction = static_cast<double>(agg.failed) / n;
  agg.mean_guardband /= n;
  agg.mean_availability /= n;
  if (!ttf.empty()) {
    agg.ttf_p50_s = stats::median(ttf);
    if (static_cast<double>(ttf.size()) * 0.01 >= 1.0) {
      agg.ttf_p1_s = stats::percentile(ttf, 0.01);
    }
  }
  return agg;
}

}  // namespace dh::sched
