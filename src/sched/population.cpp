#include "sched/population.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dh::sched {

std::vector<SystemSummary> run_population(const SystemParams& base,
                                          std::size_t count,
                                          Seconds lifetime,
                                          const PolicyFactory& make_policy) {
  DH_REQUIRE(count >= 1, "population needs at least one member");
  DH_REQUIRE(make_policy != nullptr, "a policy factory is required");
  return parallel_map(count, [&](std::size_t i) {
    SystemParams p = base;
    p.seed = Rng::stream_seed(base.seed, i);
    SystemSimulator sim{p, make_policy(i)};
    sim.run(lifetime);
    return sim.summary();
  });
}

PopulationAggregates aggregate_population(
    std::span<const SystemSummary> members) {
  PopulationAggregates agg;
  agg.members = members.size();
  if (members.empty()) return agg;
  std::vector<double> ttf;
  agg.min_availability = members.front().availability;
  for (const auto& m : members) {
    if (m.time_to_failure.value() >= 0.0) {
      ++agg.failed;
      ttf.push_back(m.time_to_failure.value());
    }
    agg.mean_guardband += m.guardband_fraction;
    agg.worst_guardband =
        std::max(agg.worst_guardband, m.guardband_fraction);
    agg.mean_availability += m.availability;
    agg.min_availability = std::min(agg.min_availability, m.availability);
  }
  const double n = static_cast<double>(members.size());
  agg.failed_fraction = static_cast<double>(agg.failed) / n;
  agg.mean_guardband /= n;
  agg.mean_availability /= n;
  if (!ttf.empty()) {
    agg.ttf_p50_s = stats::median(ttf);
    if (static_cast<double>(ttf.size()) * 0.01 >= 1.0) {
      agg.ttf_p1_s = stats::percentile(ttf, 0.01);
    }
  }
  return agg;
}

}  // namespace dh::sched
