// A processor core for the lifetime simulator: compact BTI wearout state,
// alpha-power fmax model, and a power model feeding the thermal grid and
// PDN.
#pragma once

#include "common/units.hpp"
#include "device/compact_bti.hpp"
#include "device/ring_oscillator.hpp"

namespace dh::sched {

/// Per-step action assigned to a core by the recovery policy.
enum class CoreAction {
  kRun,               // execute workload (BTI stress scaled by utilization)
  kIdle,              // power-gated: passive recovery only
  kBtiActiveRecovery, // assist circuitry BTI mode: negative bias applied
};

[[nodiscard]] const char* to_string(CoreAction a);

struct CoreParams {
  Volts vdd{0.90};
  Volts active_recovery_bias{-0.30};  // from the assist circuitry
  device::RingOscillatorParams ro{
      .stages = 75,
      .vdd = Volts{0.90},
      .vth0 = Volts{0.32},
      .alpha = 1.3,
      .fresh_frequency = Hertz{2.0e9},
  };
  Watts dynamic_power_peak{1.2};  // at utilization 1
  Watts leakage_ref{0.20};
  Celsius leakage_t_ref{45.0};
  double leakage_t_efold_k = 30.0;  // leakage e-folds per 30 K
  device::CompactBtiParams bti{};
};

class Core {
 public:
  explicit Core(CoreParams params);

  /// Advance one scheduling quantum. `utilization` applies to kRun.
  void step(CoreAction action, double utilization, Celsius temperature,
            Seconds dt);

  [[nodiscard]] Volts delta_vth() const { return bti_.delta_vth(); }
  [[nodiscard]] device::BtiBreakdown bti_breakdown() const {
    return bti_.breakdown();
  }

  /// Maximum clock frequency the aged core sustains.
  [[nodiscard]] Hertz fmax() const;
  /// Fractional frequency degradation vs fresh (the guardband driver).
  [[nodiscard]] double degradation() const;

  /// Power drawn under the given action/utilization/temperature.
  [[nodiscard]] Watts power(CoreAction action, double utilization,
                            Celsius temperature) const;
  /// Supply current corresponding to `power`.
  [[nodiscard]] Amps supply_current(CoreAction action, double utilization,
                                    Celsius temperature) const;

  [[nodiscard]] const CoreParams& params() const { return params_; }

  /// Checkpoint support: the BTI state is the core's only mutable state
  /// (the ring oscillator is a pure function of params).
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  CoreParams params_;
  device::CompactBti bti_;
  device::RingOscillator ro_;
};

}  // namespace dh::sched
