#include "sched/system_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <system_error>

#include "common/ckpt/serialize.hpp"
#include "common/ckpt/snapshot.hpp"
#include "common/error.hpp"
#include "common/fault/fault.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/profile.hpp"
#include "common/obs/trace.hpp"

namespace dh::sched {

namespace {

// Scheduler telemetry, aggregated across simulator instances. The gauges
// are written at the same single point that appends the TimeSeries
// members, so the registry and the traces can never disagree.
struct SimMetrics {
  obs::Counter& quanta = obs::registry().counter("sim.quanta");
  obs::Counter& recovery_quanta =
      obs::registry().counter("sim.recovery_quanta");
  obs::Counter& em_recovery_quanta =
      obs::registry().counter("sim.em_recovery_quanta");
  obs::Gauge& worst_degradation =
      obs::registry().gauge("sim.worst_degradation", "frac");
  obs::Gauge& worst_ir_drop =
      obs::registry().gauge("sim.worst_ir_drop", "V");
  obs::Gauge& max_temperature =
      obs::registry().gauge("sim.max_temperature", "C");
};

SimMetrics& sim_metrics() {
  static SimMetrics* m = new SimMetrics();
  return *m;
}

thermal::ThermalGridParams match_thermal(thermal::ThermalGridParams t,
                                         std::size_t rows,
                                         std::size_t cols) {
  t.rows = rows;
  t.cols = cols;
  return t;
}

pdn::PdnParams match_pdn(pdn::PdnParams p, std::size_t rows,
                         std::size_t cols) {
  p.rows = rows;
  p.cols = cols;
  p.pad_nodes.clear();  // default corner pads for the matched size
  return p;
}

/// A sensor reading beyond this magnitude is physically impossible (Vth
/// shifts top out at tens of mV) and is rejected in favour of the last
/// good value. Far above noise + worst-case shift, so fault-free runs
/// never trip it and stay bit-identical to pre-degradation builds.
constexpr double kSensorSaneLimitV = 0.5;

}  // namespace

SystemSimulator::SystemSimulator(SystemParams params,
                                 std::unique_ptr<RecoveryPolicy> policy)
    : params_(params),
      policy_(std::move(policy)),
      thermal_(match_thermal(params.thermal, params.rows, params.cols)),
      pdn_(match_pdn(params.pdn, params.rows, params.cols),
           params.em_material),
      rng_(params.seed) {
  DH_REQUIRE(policy_ != nullptr, "a recovery policy is required");
  DH_REQUIRE(params_.rows >= 2 && params_.cols >= 2,
             "system needs at least a 2x2 core grid");
  const std::size_t n = params_.rows * params_.cols;
  cores_.reserve(n);
  workloads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores_.emplace_back(params_.core);
    WorkloadParams w = params_.workload;
    // De-phase cores so the array is not in lockstep.
    w.phase = Seconds{w.period.value() * static_cast<double>(i) /
                      static_cast<double>(n)};
    workloads_.emplace_back(w);
  }
  last_good_sensor_.assign(n, 0.0);
}

const Core& SystemSimulator::core(std::size_t i) const {
  DH_REQUIRE(i < cores_.size(), "core index out of range");
  return cores_[i];
}

void SystemSimulator::step() {
  DH_PROF_SCOPE("sim.step");
  const std::size_t n = cores_.size();
  const Seconds dt = params_.quantum;

  // 1. Demand.
  std::vector<double> demand(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i] = workloads_[i].sample(Seconds{now_s_}, rng_);
  }

  // 2. Observations + policy.
  std::vector<CoreObservation> obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double noise = rng_.normal(0.0, params_.sensor_noise.value());
    double sensed = cores_[i].delta_vth().value() + noise;
    if (fault::armed()) {
      if (fault::should_inject("sensor.nan")) {
        sensed = std::numeric_limits<double>::quiet_NaN();
      } else if (fault::should_inject("sensor.outlier")) {
        sensed = 10.0;  // V: orders of magnitude beyond any real shift
      }
    }
    if (!std::isfinite(sensed) || std::abs(sensed) > kSensorSaneLimitV) {
      // Graceful degradation: hold the last good reading for this core
      // rather than feeding garbage into the policy's hysteresis.
      static obs::Counter& rejected =
          obs::registry().counter("sensor.rejected");
      rejected.add();
      sensed = last_good_sensor_[i];
    } else {
      sensed = std::max(0.0, sensed);
      last_good_sensor_[i] = sensed;
    }
    obs[i].sensed_dvth = Volts{sensed};
    obs[i].temperature = thermal_.temperature(i);
    obs[i].demanded_utilization = demand[i];
  }
  PolicyDecision decision = policy_->decide(obs, Seconds{now_s_}, dt, rng_);
  DH_REQUIRE(decision.actions.size() == n,
             "policy returned wrong action count");

  // 3. Workload migration: demand of non-running cores spreads across the
  // running ones (capped at full utilization).
  std::vector<double> util(n, 0.0);
  double displaced = 0.0;
  std::size_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (decision.actions[i] == CoreAction::kRun) {
      util[i] = demand[i];
      ++running;
    } else {
      displaced += demand[i];
    }
  }
  if (running > 0 && displaced > 0.0) {
    // Fill headroom evenly (single pass; remaining demand is dropped and
    // shows up as lost availability).
    const double share = displaced / static_cast<double>(running);
    for (std::size_t i = 0; i < n; ++i) {
      if (decision.actions[i] == CoreAction::kRun) {
        const double add = std::min(share, 1.0 - util[i]);
        util[i] += add;
        displaced -= add;
      }
    }
  }

  // 4. Thermal.
  std::vector<double> power(n);
  for (std::size_t i = 0; i < n; ++i) {
    power[i] = cores_[i]
                   .power(decision.actions[i], util[i],
                          thermal_.temperature(i))
                   .value();
  }
  thermal_.set_power_map(power);
  thermal_.solve_steady();

  // 5. Core aging at tile temperature. The compact-BTI evaluation count
  // is batched into one add so the per-core loop carries no telemetry.
  static obs::Counter& bti_evals =
      obs::registry().counter("bti.compact.evals");
  bti_evals.add(n);
  double delivered = 0.0;
  double demanded = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Celsius t = thermal_.temperature(i);
    cores_[i].step(decision.actions[i], util[i], t, dt);
    demanded += demand[i];
    if (decision.actions[i] == CoreAction::kRun) {
      // Throughput delivered scales with the aged clock.
      delivered += util[i] * (1.0 - cores_[i].degradation());
    }
    energy_j_ += power[i] * dt.value();
  }
  demanded_acc_ += demanded;
  delivered_acc_ += std::min(delivered, demanded);

  // 6. PDN aging.
  std::vector<double> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads[i] = cores_[i]
                   .supply_current(decision.actions[i], util[i],
                                   thermal_.temperature(i))
                   .value();
  }
  pdn_.step(loads, thermal_.max_temperature(), dt,
            decision.em_recovery_mode);

  // 7. Metrics. Simulated time is derived from the integer step count so
  // multi-year runs accumulate no floating-point drift (repeated
  // `now_s_ += dt` loses ~1 ulp per step and makes run(lifetime) execute
  // one step too many or too few).
  ++steps_;
  now_s_ = static_cast<double>(steps_) * dt.value();
  if (first_failure_s_ < 0.0 && pdn_.failed()) {
    first_failure_s_ = now_s_;
  }
  double worst_deg = 0.0;
  for (const auto& c : cores_) {
    worst_deg = std::max(worst_deg, c.degradation());
  }
  guardband_ = std::max(guardband_, worst_deg);
  temp_acc_ += thermal_.mean_temperature().value();
  const double ir_drop_v = pdn_.stats().worst_drop_v;
  const double max_temp_c = thermal_.max_temperature().value();
  degradation_trace_.append(Seconds{now_s_}, worst_deg);
  ir_drop_trace_.append(Seconds{now_s_}, ir_drop_v);
  temperature_trace_.append(Seconds{now_s_}, max_temp_c);

  // Telemetry: the per-quantum policy action and health picture. The
  // recovery_quanta definition (any core in BTI active recovery, or the
  // grid in EM recovery mode) is shared verbatim by the registry counter,
  // the trace fields, and trace_report's reconstruction.
  std::size_t recovery_cores = 0;
  std::size_t running_cores = 0;
  for (const CoreAction a : decision.actions) {
    if (a == CoreAction::kBtiActiveRecovery) ++recovery_cores;
    if (a == CoreAction::kRun) ++running_cores;
  }
  const bool recovering =
      recovery_cores > 0 || decision.em_recovery_mode;
  if (recovering) ++recovery_quanta_;
  SimMetrics& m = sim_metrics();
  m.quanta.add();
  if (recovering) m.recovery_quanta.add();
  if (decision.em_recovery_mode) m.em_recovery_quanta.add();
  m.worst_degradation.set(worst_deg);
  m.worst_ir_drop.set(ir_drop_v);
  m.max_temperature.set(max_temp_c);
  if (obs::trace_enabled()) {
    if (recovering && !was_recovering_) {
      obs::trace_event_at(
          "sim", "recovery_enter", now_s_,
          {{"recovery_cores", static_cast<double>(recovery_cores)},
           {"em_recovery", decision.em_recovery_mode ? 1.0 : 0.0}});
    }
    obs::trace_event_at(
        "sim", "quantum", now_s_,
        {{"worst_deg", worst_deg},
         {"ir_drop_v", ir_drop_v},
         {"max_temp_c", max_temp_c},
         {"running_cores", static_cast<double>(running_cores)},
         {"recovery_cores", static_cast<double>(recovery_cores)},
         {"em_recovery", decision.em_recovery_mode ? 1.0 : 0.0},
         {"demand", demanded}});
  }
  was_recovering_ = recovering;
}

void SystemSimulator::run(Seconds lifetime) {
  DH_REQUIRE(lifetime.value() > 0.0, "lifetime must be positive");
  // Run exactly ceil(lifetime / quantum) steps total (absolute target, so
  // repeated run() calls compose). The 1e-9 slack keeps an exact multiple
  // from rounding up on floating-point noise in the division.
  const auto target = static_cast<std::size_t>(
      std::ceil(lifetime.value() / params_.quantum.value() - 1e-9));
  // Opt-in periodic checkpointing. Read per run() call (not cached) so a
  // harness can set the variables between runs.
  std::string ckpt_path;
  std::size_t every = 0;
  const char* dir = std::getenv("DH_CKPT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    every = 64;
    if (const char* e = std::getenv("DH_CKPT_EVERY");
        e != nullptr && e[0] != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(e, &end, 10);
      if (end == e || *end != '\0' || v == 0) {
        throw Error(std::string("DH_CKPT_EVERY='") + e +
                    "' must be a positive integer (quanta per checkpoint)");
      }
      every = static_cast<std::size_t>(v);
    }
    // Seed-qualified name so concurrent population members never collide.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best-effort; write errors
                                                   // surface with the path
    ckpt_path = std::string(dir) + "/sim_seed" +
                std::to_string(params_.seed) + ".dhck";
    if (steps_ == 0 && ckpt::snapshot_valid(ckpt_path, "system_sim")) {
      load_checkpoint(ckpt_path);
    }
  }
  while (steps_ < target) {
    step();
    if (every != 0 && steps_ % every == 0) {
      save_checkpoint(ckpt_path);
    }
  }
}

void SystemSimulator::save_state(ckpt::Serializer& s) const {
  s.begin_section("SSIM");
  // Configuration digest: enough to refuse a snapshot produced by a
  // different simulator before any state is disturbed.
  s.write_u64(params_.rows);
  s.write_u64(params_.cols);
  s.write_f64(params_.quantum.value());
  s.write_u64(params_.seed);
  s.write_string(policy_->name());
  // Scalar accumulators.
  s.write_f64(demanded_acc_);
  s.write_f64(delivered_acc_);
  s.write_f64(energy_j_);
  s.write_f64(temp_acc_);
  s.write_f64(guardband_);
  s.write_f64(first_failure_s_);
  s.write_u64(steps_);
  s.write_u64(recovery_quanta_);
  s.write_bool(was_recovering_);
  s.write_f64_vec(last_good_sensor_);
  ckpt::save_engine(s, rng_.engine());
  for (const Core& c : cores_) c.save_state(s);
  for (const Workload& w : workloads_) w.save_state(s);
  policy_->save_state(s);
  thermal_.save_state(s);
  pdn_.save_state(s);
  degradation_trace_.save_state(s);
  ir_drop_trace_.save_state(s);
  temperature_trace_.save_state(s);
}

void SystemSimulator::load_state(ckpt::Deserializer& d) {
  d.expect_section("SSIM");
  const auto mismatch = [](const std::string& what) {
    throw Error("checkpoint was created by a different simulator "
                "configuration: " +
                what + " differs — refusing to restore");
  };
  if (d.read_u64() != params_.rows) mismatch("core-grid rows");
  if (d.read_u64() != params_.cols) mismatch("core-grid cols");
  if (d.read_f64() != params_.quantum.value()) mismatch("quantum");
  if (d.read_u64() != params_.seed) mismatch("seed");
  if (d.read_string() != policy_->name()) mismatch("policy");
  demanded_acc_ = d.read_f64();
  delivered_acc_ = d.read_f64();
  energy_j_ = d.read_f64();
  temp_acc_ = d.read_f64();
  guardband_ = d.read_f64();
  first_failure_s_ = d.read_f64();
  steps_ = static_cast<std::size_t>(d.read_u64());
  recovery_quanta_ = static_cast<std::size_t>(d.read_u64());
  was_recovering_ = d.read_bool();
  now_s_ = static_cast<double>(steps_) * params_.quantum.value();
  last_good_sensor_ = d.read_f64_vec();
  DH_REQUIRE(last_good_sensor_.size() == cores_.size(),
             "checkpoint sensor-state length does not match core count");
  ckpt::load_engine(d, rng_.engine());
  for (Core& c : cores_) c.load_state(d);
  for (Workload& w : workloads_) w.load_state(d);
  policy_->load_state(d);
  thermal_.load_state(d);
  pdn_.load_state(d);
  degradation_trace_.load_state(d);
  ir_drop_trace_.load_state(d);
  temperature_trace_.load_state(d);
}

void SystemSimulator::save_checkpoint(const std::string& path) const {
  ckpt::Serializer s;
  save_state(s);
  ckpt::write_snapshot(path, "system_sim", s.buffer());
}

void SystemSimulator::load_checkpoint(const std::string& path) {
  ckpt::Deserializer d{ckpt::read_snapshot(path, "system_sim")};
  load_state(d);
  if (!d.exhausted()) {
    throw Error("checkpoint '" + path + "' has " +
                std::to_string(d.remaining()) +
                " trailing byte(s) after the simulator state — snapshot "
                "and build disagree on the layout");
  }
  static obs::Counter& resumes = obs::registry().counter("sim.resume");
  resumes.add();
  if (obs::trace_enabled()) {
    obs::trace_event_at("sim", "resume", now_s_,
                        {{"steps", static_cast<double>(steps_)}});
  }
}

SystemSummary SystemSimulator::summary() const {
  SystemSummary s;
  s.guardband_fraction = guardband_;
  s.final_degradation = degradation_trace_.empty()
                            ? 0.0
                            : degradation_trace_.back_value();
  s.time_to_failure = Seconds{first_failure_s_};
  s.mean_throughput =
      steps_ == 0 ? 0.0
                  : delivered_acc_ / static_cast<double>(steps_);
  s.availability =
      demanded_acc_ > 0.0 ? delivered_acc_ / demanded_acc_ : 1.0;
  s.energy_joules = energy_j_;
  s.mean_temperature_c =
      steps_ == 0 ? 0.0 : temp_acc_ / static_cast<double>(steps_);
  s.recovery_quanta = recovery_quanta_;
  s.pdn_stats = pdn_.stats();
  return s;
}

}  // namespace dh::sched
