// Workload generators: per-core utilization traces for the lifetime
// simulator. The paper's system-level story spans always-on server-class
// load, periodic duty-cycled IoT operation, and bursty interactive work —
// each gives recovery scheduling different amounts of intrinsic OFF time
// to exploit.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::sched {

enum class WorkloadKind {
  kConstant,       // steady utilization
  kPeriodic,       // on/off square wave (e.g. duty-cycled sensor node)
  kBursty,         // two-state Markov bursts
  kDiurnal,        // day/night sinusoidal profile
};

struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kConstant;
  double utilization = 0.7;   // mean / on-state utilization
  Seconds period{hours(24.0)};
  double duty = 0.5;          // periodic: fraction of period on
  double burst_switch_prob = 0.2;  // bursty: per-step state flip probability
  Seconds phase{0.0};         // offset so cores are not in lockstep
};

class Workload {
 public:
  explicit Workload(WorkloadParams params);

  /// Utilization demanded in the step starting at `now`.
  [[nodiscard]] double sample(Seconds now, Rng& rng);

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

  /// Checkpoint support: the Markov burst flag is the only mutable state.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  WorkloadParams params_;
  bool burst_on_ = true;
};

}  // namespace dh::sched
