// Recovery scheduling policies (Fig. 12b).
//
// A policy sees per-core sensor observations each scheduling quantum and
// assigns every core an action, plus a grid-level decision on whether the
// assist circuitry should spend this quantum in EM Active Recovery mode
// (which keeps the system operational — only BTI recovery requires the
// core to be idle, exactly as the paper's Section III-E summarizes).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sched/core_model.hpp"

namespace dh::ckpt {
class Serializer;
class Deserializer;
}  // namespace dh::ckpt

namespace dh::sched {

/// What the policy can see (sensor readings, not ground truth).
struct CoreObservation {
  Volts sensed_dvth{0.0};     // from the frequency-based BTI sensor
  Celsius temperature{45.0};
  double demanded_utilization = 0.0;
};

struct PolicyDecision {
  std::vector<CoreAction> actions;
  bool em_recovery_mode = false;  // assist circuitry grid mode
};

class RecoveryPolicy {
 public:
  virtual ~RecoveryPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual PolicyDecision decide(
      std::span<const CoreObservation> cores, Seconds now, Seconds dt,
      Rng& rng) = 0;

  /// Checkpoint support: serialize/restore internal decision state (e.g.
  /// hysteresis latches). Stateless policies keep the no-op defaults —
  /// symmetric, so round trips stay aligned either way.
  virtual void save_state(ckpt::Serializer&) const {}
  virtual void load_state(ckpt::Deserializer&) {}
};

/// Baseline: never recovers; every core always runs its demand.
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_no_recovery_policy();

/// Conventional power gating: cores idle when demand is zero (passive
/// recovery only — the pre-paper state of the art).
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_passive_idle_policy();

/// The paper's scheduled "push-pull" recovery: within every period, the
/// trailing `recovery_fraction` is spent in BTI active recovery, and EM
/// active recovery alternates on a duty cycle during operation.
struct PeriodicPolicyParams {
  Seconds period{hours(48.0)};
  double bti_recovery_fraction = 0.25;
  double em_recovery_duty = 0.2;  // fraction of operating time reversed
};
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_periodic_active_policy(
    PeriodicPolicyParams params = {});

/// Sensor-driven: triggers BTI active recovery when the sensed Vth shift
/// crosses `threshold`, holds it until `release`, and engages EM recovery
/// mode on a fixed duty.
struct AdaptivePolicyParams {
  Volts threshold{0.015};
  Volts release{0.004};
  double em_recovery_duty = 0.2;
};
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_adaptive_sensor_policy(
    AdaptivePolicyParams params = {});

/// Dark-silicon rotation: `spares` cores are parked in BTI active
/// recovery at any time, rotating every `rotation_period`; the paper's
/// Fig. 12a heat-assisted healing falls out of the parked core sitting
/// next to hot active neighbours.
struct RotationPolicyParams {
  std::size_t spares = 2;
  Seconds rotation_period{hours(24.0)};
  double em_recovery_duty = 0.2;
};
[[nodiscard]] std::unique_ptr<RecoveryPolicy> make_dark_silicon_policy(
    RotationPolicyParams params = {});

}  // namespace dh::sched
