#include "sched/workload.hpp"

#include <cmath>
#include <numbers>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh::sched {

Workload::Workload(WorkloadParams params) : params_(params) {
  DH_REQUIRE(params_.utilization >= 0.0 && params_.utilization <= 1.0,
             "utilization must be in [0,1]");
  DH_REQUIRE(params_.duty > 0.0 && params_.duty <= 1.0,
             "duty must be in (0,1]");
  DH_REQUIRE(params_.period.value() > 0.0, "period must be positive");
}

double Workload::sample(Seconds now, Rng& rng) {
  const double t = now.value() + params_.phase.value();
  switch (params_.kind) {
    case WorkloadKind::kConstant:
      return params_.utilization;
    case WorkloadKind::kPeriodic: {
      const double frac =
          std::fmod(t, params_.period.value()) / params_.period.value();
      return frac < params_.duty ? params_.utilization : 0.0;
    }
    case WorkloadKind::kBursty: {
      if (rng.bernoulli(params_.burst_switch_prob)) burst_on_ = !burst_on_;
      return burst_on_ ? params_.utilization : 0.05 * params_.utilization;
    }
    case WorkloadKind::kDiurnal: {
      const double phase_angle =
          2.0 * std::numbers::pi * t / params_.period.value();
      const double s = 0.5 * (1.0 + std::sin(phase_angle));
      return params_.utilization * (0.3 + 0.7 * s);
    }
  }
  return params_.utilization;
}

void Workload::save_state(ckpt::Serializer& s) const {
  s.begin_section("WKLD");
  s.write_bool(burst_on_);
}

void Workload::load_state(ckpt::Deserializer& d) {
  d.expect_section("WKLD");
  burst_on_ = d.read_bool();
}

}  // namespace dh::sched
