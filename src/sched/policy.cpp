#include "sched/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/ckpt/serialize.hpp"

namespace dh::sched {

namespace {

class NoRecoveryPolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "no-recovery"; }
  [[nodiscard]] PolicyDecision decide(std::span<const CoreObservation> cores,
                                      Seconds, Seconds, Rng&) override {
    PolicyDecision d;
    d.actions.assign(cores.size(), CoreAction::kRun);
    return d;
  }
};

class PassiveIdlePolicy final : public RecoveryPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "passive-idle"; }
  [[nodiscard]] PolicyDecision decide(std::span<const CoreObservation> cores,
                                      Seconds, Seconds, Rng&) override {
    PolicyDecision d;
    d.actions.reserve(cores.size());
    for (const auto& c : cores) {
      d.actions.push_back(c.demanded_utilization > 0.01 ? CoreAction::kRun
                                                        : CoreAction::kIdle);
    }
    return d;
  }
};

class PeriodicActivePolicy final : public RecoveryPolicy {
 public:
  explicit PeriodicActivePolicy(PeriodicPolicyParams p) : p_(p) {}
  [[nodiscard]] std::string name() const override {
    return "periodic-active";
  }
  [[nodiscard]] PolicyDecision decide(std::span<const CoreObservation> cores,
                                      Seconds now, Seconds, Rng&) override {
    PolicyDecision d;
    const double frac =
        std::fmod(now.value(), p_.period.value()) / p_.period.value();
    const bool recovery_window = frac >= 1.0 - p_.bti_recovery_fraction;
    for (const auto& c : cores) {
      if (recovery_window) {
        d.actions.push_back(CoreAction::kBtiActiveRecovery);
      } else {
        d.actions.push_back(c.demanded_utilization > 0.01
                                ? CoreAction::kRun
                                : CoreAction::kBtiActiveRecovery);
      }
    }
    // EM recovery alternates during the operating window (the system stays
    // up in EM mode, so this costs only the mode-switch overhead).
    const double op_frac = frac / std::max(1e-9, 1.0 - p_.bti_recovery_fraction);
    d.em_recovery_mode =
        !recovery_window &&
        std::fmod(op_frac * 10.0, 1.0) < p_.em_recovery_duty;
    return d;
  }

 private:
  PeriodicPolicyParams p_;
};

class AdaptiveSensorPolicy final : public RecoveryPolicy {
 public:
  explicit AdaptiveSensorPolicy(AdaptivePolicyParams p) : p_(p) {}
  [[nodiscard]] std::string name() const override {
    return "adaptive-sensor";
  }
  [[nodiscard]] PolicyDecision decide(std::span<const CoreObservation> cores,
                                      Seconds now, Seconds dt,
                                      Rng&) override {
    if (in_recovery_.size() != cores.size()) {
      in_recovery_.assign(cores.size(), false);
    }
    PolicyDecision d;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      const double dvth = cores[i].sensed_dvth.value();
      if (!in_recovery_[i] && dvth >= p_.threshold.value()) {
        in_recovery_[i] = true;
      } else if (in_recovery_[i] && dvth <= p_.release.value()) {
        in_recovery_[i] = false;
      }
      d.actions.push_back(in_recovery_[i] ? CoreAction::kBtiActiveRecovery
                          : cores[i].demanded_utilization > 0.01
                              ? CoreAction::kRun
                              : CoreAction::kIdle);
    }
    // Duty-cycled EM recovery, phase-locked to wall time.
    const double cycle = std::fmod(now.value() / dt.value(), 10.0);
    d.em_recovery_mode = cycle < 10.0 * p_.em_recovery_duty;
    return d;
  }

  void save_state(ckpt::Serializer& s) const override {
    s.begin_section("APOL");
    s.write_bool_vec(in_recovery_);
  }
  void load_state(ckpt::Deserializer& d) override {
    d.expect_section("APOL");
    in_recovery_ = d.read_bool_vec();
  }

 private:
  AdaptivePolicyParams p_;
  std::vector<bool> in_recovery_;
};

class DarkSiliconPolicy final : public RecoveryPolicy {
 public:
  explicit DarkSiliconPolicy(RotationPolicyParams p) : p_(p) {}
  [[nodiscard]] std::string name() const override {
    return "dark-silicon-rotation";
  }
  [[nodiscard]] PolicyDecision decide(std::span<const CoreObservation> cores,
                                      Seconds now, Seconds dt,
                                      Rng&) override {
    PolicyDecision d;
    const std::size_t n = cores.size();
    const std::size_t spares = std::min(p_.spares, n > 1 ? n - 1 : 0);
    const auto rotation = static_cast<std::size_t>(
        now.value() / p_.rotation_period.value());
    d.actions.assign(n, CoreAction::kRun);
    for (std::size_t k = 0; k < spares; ++k) {
      // Spread the parked cores across the array, walking each period.
      const std::size_t parked = (rotation + k * (n / std::max<std::size_t>(
                                                          spares, 1))) %
                                 n;
      d.actions[parked] = CoreAction::kBtiActiveRecovery;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (d.actions[i] == CoreAction::kRun &&
          cores[i].demanded_utilization <= 0.01) {
        d.actions[i] = CoreAction::kIdle;
      }
    }
    const double cycle = std::fmod(now.value() / dt.value(), 10.0);
    d.em_recovery_mode = cycle < 10.0 * p_.em_recovery_duty;
    return d;
  }

 private:
  RotationPolicyParams p_;
};

}  // namespace

std::unique_ptr<RecoveryPolicy> make_no_recovery_policy() {
  return std::make_unique<NoRecoveryPolicy>();
}
std::unique_ptr<RecoveryPolicy> make_passive_idle_policy() {
  return std::make_unique<PassiveIdlePolicy>();
}
std::unique_ptr<RecoveryPolicy> make_periodic_active_policy(
    PeriodicPolicyParams params) {
  return std::make_unique<PeriodicActivePolicy>(params);
}
std::unique_ptr<RecoveryPolicy> make_adaptive_sensor_policy(
    AdaptivePolicyParams params) {
  return std::make_unique<AdaptiveSensorPolicy>(params);
}
std::unique_ptr<RecoveryPolicy> make_dark_silicon_policy(
    RotationPolicyParams params) {
  return std::make_unique<DarkSiliconPolicy>(params);
}

}  // namespace dh::sched
