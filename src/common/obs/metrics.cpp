#include "common/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "common/error.hpp"

namespace dh::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    if (const char* env = std::getenv("DH_OBS")) {
      if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
          std::strcmp(env, "OFF") == 0) {
        return false;
      }
    }
    return true;
  }()};
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

namespace {
// Constant-initialised so the hot-path TLS read needs no init guard.
constinit thread_local std::size_t t_shard = SIZE_MAX;
}  // namespace

std::size_t thread_shard() noexcept {
  std::size_t idx = t_shard;
  if (idx == SIZE_MAX) {
    static std::atomic<std::size_t> next{0};
    idx = next.fetch_add(1, std::memory_order_relaxed) % kShards;
    t_shard = idx;
  }
  return idx;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // underflow/zero/NaN bin
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5, 1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;  // overflow bin
  const auto sub = static_cast<std::size_t>((mant - 0.5) * 2.0 *
                                            static_cast<double>(kSubBuckets));
  return 1 +
         static_cast<std::size_t>(exp - 1 - kMinExp) * kSubBuckets +
         std::min<std::size_t>(sub, kSubBuckets - 1);
}

double Histogram::bucket_lower(std::size_t idx) noexcept {
  if (idx == 0) return 0.0;
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t rel = idx - 1;
  const int exp = kMinExp + static_cast<int>(rel / kSubBuckets);
  const auto sub = static_cast<double>(rel % kSubBuckets);
  return std::ldexp(0.5 + 0.5 * sub / kSubBuckets, exp + 1);
}

double Histogram::bucket_upper(std::size_t idx) noexcept {
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  return bucket_lower(idx + 1);
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  bins_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS min/max against +/-inf sentinels: min and max are commutative and
  // idempotent, so the result is order-independent under any interleaving.
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among n ordered samples (nearest-rank with
  // within-bucket linear interpolation).
  const double target = q * static_cast<double>(n - 1) + 1.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bins_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      // Clamp into the observed range so tiny counts don't report beyond
      // the true extremes.
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min_.load(std::memory_order_relaxed),
                        max_.load(std::memory_order_relaxed));
    }
    cum += c;
  }
  return max_.load(std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  s.count = count();
  if (s.count == 0) return s;
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  double weighted = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bins_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double mid = 0.5 * (bucket_lower(i) + bucket_upper(i));
    weighted += mid * static_cast<double>(c);
  }
  s.mean = weighted / static_cast<double>(s.count);
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  return s;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = bins_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct Registry::Entry {
  std::string name;
  std::string unit;
  MetricKind kind;
  // Exactly one is engaged, per `kind`.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Entry& Registry::get_or_create(std::string_view name,
                                         std::string_view unit,
                                         MetricKind kind) {
  DH_REQUIRE(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name) {
      DH_REQUIRE(e->kind == kind,
                 "metric '" + e->name +
                     "' already registered as a different kind");
      if (e->unit.empty() && !unit.empty()) e->unit = std::string(unit);
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->unit = std::string(unit);
  e->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view unit) {
  return *get_or_create(name, unit, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view unit) {
  return *get_or_create(name, unit, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::string_view unit) {
  return *get_or_create(name, unit, MetricKind::kHistogram).histogram;
}

std::vector<MetricInfo> Registry::list() const {
  std::vector<MetricInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      out.push_back({e->name, e->unit, e->kind});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricInfo& a, const MetricInfo& b) {
              return a.name < b.name;
            });
  return out;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == MetricKind::kCounter) {
      return e->counter.get();
    }
  }
  return nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == MetricKind::kGauge) {
      return e->gauge.get();
    }
  }
  return nullptr;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == MetricKind::kHistogram) {
      return e->histogram.get();
    }
  }
  return nullptr;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else {
      os << c;
    }
  }
}

}  // namespace

void Registry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(2 * indent), ' ');
  // Snapshot entry pointers under the lock; metric objects are immortal
  // and individually thread-safe, so reading them after release is fine.
  struct Row {
    std::string name;
    std::string unit;
    MetricKind kind;
    const Counter* c;
    const Gauge* g;
    const Histogram* h;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(entries_.size());
    for (const auto& e : entries_) {
      rows.push_back({e->name, e->unit, e->kind, e->counter.get(),
                      e->gauge.get(), e->histogram.get()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });

  const auto emit_section = [&](MetricKind kind, const char* title,
                                bool trailing_comma) {
    os << pad << '"' << title << "\": {";
    bool first = true;
    for (const Row& r : rows) {
      if (r.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      os << '\n' << pad2 << '"';
      json_escape(os, r.name);
      os << "\": ";
      switch (kind) {
        case MetricKind::kCounter:
          os << r.c->value();
          break;
        case MetricKind::kGauge:
          os << r.g->value();
          break;
        case MetricKind::kHistogram: {
          const Histogram::Snapshot s = r.h->snapshot();
          os << "{\"count\": " << s.count << ", \"min\": " << s.min
             << ", \"max\": " << s.max << ", \"mean\": " << s.mean
             << ", \"p50\": " << s.p50 << ", \"p95\": " << s.p95;
          if (!r.unit.empty()) {
            os << ", \"unit\": \"";
            json_escape(os, r.unit);
            os << '"';
          }
          os << '}';
          break;
        }
      }
    }
    os << (first ? "" : "\n") << (first ? "" : pad.c_str()) << '}'
       << (trailing_comma ? "," : "") << '\n';
  };

  os << "{\n";
  emit_section(MetricKind::kCounter, "counters", true);
  emit_section(MetricKind::kGauge, "gauges", true);
  emit_section(MetricKind::kHistogram, "histograms", false);
  os << "}\n";
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter:
        e->counter->reset();
        break;
      case MetricKind::kGauge:
        e->gauge->reset();
        break;
      case MetricKind::kHistogram:
        e->histogram->reset();
        break;
    }
  }
}

Registry& registry() {
  // Deliberately leaked: instrumentation may fire from worker threads or
  // static-destruction paths, so the registry must outlive everything.
  static Registry* r = new Registry();
  return *r;
}

}  // namespace dh::obs
