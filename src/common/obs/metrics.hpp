// Process-wide metrics registry: counters, gauges, and histograms that the
// healing stack updates from hot paths (PDN solves, thread-pool jobs,
// scheduler quanta, compact-model evaluations, sensor readings).
//
// Design constraints, in order:
//   1. Observation only — recording a metric must never change simulation
//      results. The deterministic `parallel_for` paths stay bit-identical
//      whether observability is on or off.
//   2. Thread-safe and TSan-clean without locks on the record path:
//      counters are sharded per thread (padded atomics, exact under
//      concurrency), histograms use fixed log-spaced buckets with atomic
//      integer counts, so merges/sums are order-independent — the same
//      snapshot comes out at any DH_THREADS value.
//   3. Near-zero cost: a recording call is one relaxed atomic op behind a
//      single relaxed flag load; `obs::set_enabled(false)` turns every
//      record into that flag load alone (measured by BENCH_obs.json).
//
// Call sites cache the metric reference in a function-local static so the
// registry's name lookup (mutex-guarded) happens once per process:
//
//   static obs::Counter& c = obs::registry().counter("pdn.solve.calls");
//   c.add();
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dh::obs {

/// Global observability gate (default on; initialised from DH_OBS, where
/// "0"/"off" disables). When off, every record call reduces to one relaxed
/// load — the knob BENCH_obs.json uses to price the instrumentation.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
/// Stable small index for the calling thread, used to pick a counter
/// shard. Threads are assigned round-robin on first use.
[[nodiscard]] std::size_t thread_shard() noexcept;
inline constexpr std::size_t kShards = 16;
}  // namespace detail

/// Monotonic event count. Sharded per thread: concurrent add() calls from
/// the pool are exact (no lost updates) and never contend on one line.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::thread_shard()].v.fetch_add(n,
                                                std::memory_order_relaxed);
  }

  /// Sum over shards. Exact once concurrent writers have finished.
  [[nodiscard]] std::uint64_t value() const noexcept;

  /// Test/bench helper; not safe against concurrent add().
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Last-written instantaneous value (e.g. worst IR drop this quantum).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution of positive values on fixed log-spaced buckets
/// (kSubBuckets per octave, covering 2^-40 .. 2^40 with underflow and
/// overflow bins). All state is atomic integers plus CAS-maintained
/// min/max, so snapshots are order-independent: observing the same
/// multiset of values yields bit-identical summaries at any thread count.
/// Percentiles interpolate within the matched bucket (relative error
/// bounded by the bucket width, ~9%). Mean is derived from bucket
/// midpoints — deterministic, same error bound.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -40;  // smallest bucketed value: 2^-41
  static constexpr int kMaxExp = 40;   // largest bucketed value: 2^40
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void observe(double v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;  // from bucket midpoints (deterministic)
    double p50 = 0.0;
    double p95 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Quantile q in [0, 1] from the bucket counts.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// Raw bucket counts (for order-independence tests and reports).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;  // test/bench helper; not concurrency-safe

 private:
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;
  [[nodiscard]] static double bucket_lower(std::size_t idx) noexcept;
  [[nodiscard]] static double bucket_upper(std::size_t idx) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> bins_{};
  std::atomic<std::uint64_t> count_{0};
  // +/-inf sentinels; meaningful only while count_ > 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// What kind of metric a registry entry is (for listings/dumps).
enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  std::string unit;
  MetricKind kind = MetricKind::kCounter;
};

/// Name -> metric map. Metric objects are allocated once and never move,
/// so references handed out stay valid for the process lifetime; lookups
/// take a mutex but hot paths cache the returned reference.
class Registry {
 public:
  /// Look up or create. `unit` is recorded on first registration
  /// (informational; "" keeps any prior value). Registering the same name
  /// as a different metric kind throws dh::Error.
  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view unit = "");
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             std::string_view unit = "");
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::string_view unit = "");

  /// Sorted by name.
  [[nodiscard]] std::vector<MetricInfo> list() const;

  /// Find without creating; nullptr when absent or of another kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, min, max, mean, p50, p95}}}.
  void write_json(std::ostream& os, int indent = 2) const;

  /// Zero every metric (entries stay registered). Test/bench helper.
  void reset_all();

 private:
  struct Entry;
  [[nodiscard]] Entry& get_or_create(std::string_view name,
                                     std::string_view unit, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // unsorted; small
};

/// The process-wide registry all library instrumentation records into.
/// Never destroyed (immortal), so worker threads and static-destruction
/// paths can always record safely.
[[nodiscard]] Registry& registry();

}  // namespace dh::obs
