// Scoped wall-time profiling: DH_PROF_SCOPE("label") aggregates the
// elapsed wall time of the enclosing block into the registry histogram
// "prof.<label>" (milliseconds). The histogram lookup happens once per
// call site (function-local static); each execution costs two steady-clock
// reads plus one histogram observe — and only the enabled() flag load when
// observability is switched off.
#pragma once

#include <chrono>

#include "common/obs/metrics.hpp"

namespace dh::obs {

class ProfScope {
 public:
  explicit ProfScope(Histogram& hist) noexcept
      : hist_(enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (hist_ != nullptr) {
      hist_->observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0_)
                         .count());
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dh::obs

#define DH_PROF_CONCAT_INNER(a, b) a##b
#define DH_PROF_CONCAT(a, b) DH_PROF_CONCAT_INNER(a, b)

/// Aggregate the wall time of the enclosing scope into the registry
/// histogram "prof.<label>" (label must be a string literal).
#define DH_PROF_SCOPE(label)                                              \
  static ::dh::obs::Histogram& DH_PROF_CONCAT(dh_prof_hist_, __LINE__) =  \
      ::dh::obs::registry().histogram("prof." label, "ms");               \
  ::dh::obs::ProfScope DH_PROF_CONCAT(dh_prof_scope_, __LINE__) {         \
    DH_PROF_CONCAT(dh_prof_hist_, __LINE__)                               \
  }
