#include "common/obs/bench_io.hpp"

#include <cstdlib>
#include <filesystem>

#include "common/error.hpp"

namespace dh::obs {

std::string json_output_path(const std::string& filename) {
  DH_REQUIRE(!filename.empty(), "bench output filename must not be empty");
  const char* dir = std::getenv("DH_BENCH_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  const std::filesystem::path base{dir};
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    throw Error("DH_BENCH_DIR='" + std::string(dir) +
                "' cannot be created: " + ec.message());
  }
  return (base / filename).string();
}

}  // namespace dh::obs
