#include "common/obs/bench_io.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fault/fault.hpp"

namespace dh::obs {

std::string json_output_path(const std::string& filename) {
  DH_REQUIRE(!filename.empty(), "bench output filename must not be empty");
  const char* dir = std::getenv("DH_BENCH_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  const std::filesystem::path base{dir};
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    throw Error("DH_BENCH_DIR='" + std::string(dir) +
                "' cannot be created: " + ec.message());
  }
  return (base / filename).string();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  if (fault::armed() && fault::should_inject("io.bench_write")) {
    throw Error("injected I/O failure (EIO) writing '" + path + "'");
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot open '" + tmp + "' for writing");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw Error("write to '" + tmp +
                  "' failed (disk full or I/O error)");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    throw Error("atomic rename of '" + tmp + "' over '" + path +
                "' failed: " + ec.message());
  }
}

}  // namespace dh::obs
