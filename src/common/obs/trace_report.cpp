#include "common/obs/trace_report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <optional>
#include <ostream>

#include "common/stats.hpp"

namespace dh::obs {

namespace {

// Minimal parser for one JSONL trace line: a flat object of string or
// number values plus one optional nested object "f" of number values.
// Returns nullopt on any syntax surprise (the caller counts it malformed).
struct ParsedLine {
  std::string cat;
  std::string name;
  double wall_ms = 0.0;
  bool has_wall = false;
  double sim_s = 0.0;
  bool has_sim = false;
  std::vector<std::pair<std::string, double>> fields;
};

class LineParser {
 public:
  explicit LineParser(const std::string& s) : s_(s) {}

  std::optional<ParsedLine> parse() {
    skip_ws();
    if (!consume('{')) return std::nullopt;
    ParsedLine out;
    bool first = true;
    for (;;) {
      skip_ws();
      if (consume('}')) break;
      if (!first && !consume(',')) return std::nullopt;
      skip_ws();
      if (first && consume('}')) break;
      first = false;
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      if (key == "f") {
        if (!parse_field_object(out.fields)) return std::nullopt;
      } else if (peek() == '"') {
        std::string v;
        if (!parse_string(v)) return std::nullopt;
        if (key == "cat") out.cat = std::move(v);
        else if (key == "name") out.name = std::move(v);
      } else {
        double v = 0.0;
        if (!parse_number(v)) return std::nullopt;
        if (key == "t_wall_ms") {
          out.wall_ms = v;
          out.has_wall = true;
        } else if (key == "t_sim_s") {
          out.sim_s = v;
          out.has_sim = true;
        }
      }
    }
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;
    if (out.cat.empty() || out.name.empty() || !out.has_wall) {
      return std::nullopt;
    }
    return out;
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        out += s_[pos_++];
      } else {
        out += c;
      }
    }
    return false;
  }
  bool parse_number(double& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }
  bool parse_field_object(
      std::vector<std::pair<std::string, double>>& out) {
    if (!consume('{')) return false;
    bool first = true;
    for (;;) {
      skip_ws();
      if (consume('}')) return true;
      if (!first && !consume(',')) return false;
      skip_ws();
      if (first && consume('}')) return true;
      first = false;
      std::string key;
      double v = 0.0;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_number(v)) return false;
      out.emplace_back(std::move(key), v);
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TraceFieldSummary summarize(std::vector<double>& values) {
  TraceFieldSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = stats::percentile(values, 0.50);
  s.p95 = stats::percentile(values, 0.95);
  return s;
}

}  // namespace

TraceReport analyze_trace(std::istream& in) {
  TraceReport report;
  std::map<std::string, std::map<std::string, std::vector<double>>>
      field_values;  // group key -> field -> values
  double first_wall = 0.0;
  double prev_wall = 0.0;
  std::string prev_cat;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = LineParser(line).parse();
    if (!parsed) {
      ++report.malformed_lines;
      continue;
    }
    if (report.total_events == 0) first_wall = parsed->wall_ms;
    ++report.total_events;
    ++report.category_counts[parsed->cat];
    const std::string key = parsed->cat + "/" + parsed->name;
    TraceEventGroup& group = report.groups[key];
    if (group.count == 0) {
      group.category = parsed->cat;
      group.name = parsed->name;
    }
    ++group.count;
    auto& values = field_values[key];
    if (parsed->has_sim) values["t_sim_s"].push_back(parsed->sim_s);
    double recovery_cores = 0.0;
    double em_recovery = 0.0;
    for (const auto& [k, v] : parsed->fields) {
      values[k].push_back(v);
      if (k == "recovery_cores") recovery_cores = v;
      if (k == "em_recovery") em_recovery = v;
    }
    if (parsed->cat == "sim" && parsed->name == "quantum") {
      ++report.sim_quanta;
      if (recovery_cores > 0.0 || em_recovery != 0.0) {
        ++report.sim_recovery_quanta;
      }
    }
    // Phase accounting: charge the gap since the previous event to the
    // previous event's category.
    if (!prev_cat.empty()) {
      report.category_wall_ms[prev_cat] +=
          std::max(0.0, parsed->wall_ms - prev_wall);
    }
    prev_cat = parsed->cat;
    prev_wall = parsed->wall_ms;
  }
  if (report.total_events > 0) {
    report.wall_span_ms = prev_wall - first_wall;
  }
  for (auto& [key, fields] : field_values) {
    for (auto& [fkey, vals] : fields) {
      report.groups[key].fields[fkey] = summarize(vals);
    }
  }
  return report;
}

void print_trace_report(std::ostream& os, const TraceReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace: %zu events, %.3f ms wall span, %zu malformed "
                "line(s)\n",
                report.total_events, report.wall_span_ms,
                report.malformed_lines);
  os << buf;

  os << "\nevents per category:\n";
  for (const auto& [cat, count] : report.category_counts) {
    const auto it = report.category_wall_ms.find(cat);
    const double ms = it == report.category_wall_ms.end() ? 0.0 : it->second;
    const double pct = report.wall_span_ms > 0.0
                           ? 100.0 * ms / report.wall_span_ms
                           : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %8zu events  %10.3f ms attributed (%5.1f%%)\n",
                  cat.c_str(), count, ms, pct);
    os << buf;
  }

  os << "\nevent groups (field p50/p95/max):\n";
  for (const auto& [key, group] : report.groups) {
    std::snprintf(buf, sizeof(buf), "  %-28s x%zu\n", key.c_str(),
                  group.count);
    os << buf;
    for (const auto& [fkey, s] : group.fields) {
      std::snprintf(buf, sizeof(buf),
                    "    %-22s p50 %-12.6g p95 %-12.6g max %-12.6g\n",
                    fkey.c_str(), s.p50, s.p95, s.max);
      os << buf;
    }
  }

  if (report.sim_quanta > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nscheduler: %zu quanta recorded, recovery_quanta = "
                  "%llu (quanta with BTI active recovery or EM recovery "
                  "mode)\n",
                  report.sim_quanta,
                  static_cast<unsigned long long>(
                      report.sim_recovery_quanta));
    os << buf;
  }
}

}  // namespace dh::obs
