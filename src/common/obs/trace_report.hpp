// Analysis of a recorded JSONL trace (the JsonlTraceSink schema): event
// counts per category/name, per-field distribution summaries (p50/p95/max),
// a per-phase wall-time breakdown, and derived scheduler facts such as the
// recovery-quanta count — the library behind tools/trace_report, factored
// out so tests can check a recorded sim trace reproduces the live
// registry counters exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dh::obs {

struct TraceFieldSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

struct TraceEventGroup {
  std::string category;
  std::string name;
  std::size_t count = 0;
  /// Field key -> distribution over all events in the group (exact
  /// order statistics, not bucketed — a recorded trace is finite).
  std::map<std::string, TraceFieldSummary> fields;
};

struct TraceReport {
  std::size_t total_events = 0;
  std::size_t malformed_lines = 0;
  double wall_span_ms = 0.0;  // first event -> last event
  /// category -> event count.
  std::map<std::string, std::size_t> category_counts;
  /// "category/name" -> group.
  std::map<std::string, TraceEventGroup> groups;
  /// category -> wall-time attributed to it: the gap from each event to
  /// the next is charged to the earlier event's category (phase model:
  /// an event marks the start of that category's work).
  std::map<std::string, double> category_wall_ms;
  /// Derived from "sim/quantum" events: total quanta and how many had
  /// active recovery in flight (recovery_cores > 0 or em_recovery != 0) —
  /// must match the live `sim.recovery_quanta` registry counter.
  std::size_t sim_quanta = 0;
  std::uint64_t sim_recovery_quanta = 0;
};

/// Parse a JSONL trace stream. Lines that are not valid objects of the
/// sink schema are counted in `malformed_lines` and skipped.
[[nodiscard]] TraceReport analyze_trace(std::istream& in);

/// Human-readable report (the tools/trace_report output).
void print_trace_report(std::ostream& os, const TraceReport& report);

}  // namespace dh::obs
