// Structured event tracing: timestamped, categorized events with numeric
// fields, written through a pluggable TraceSink. The stock sink is JSONL —
// one self-contained object per line, so a trace survives crashes up to
// the last flushed line and tools/trace_report can stream-parse it.
//
// Off by default and zero-overhead when off: call sites guard with
// `if (obs::trace_enabled())`, a single relaxed atomic load, so no event
// object, field list, or timestamp is ever materialised. Enable by either
//   DH_TRACE=/path/to/trace.jsonl   (env; opened lazily on first event —
//                                    an unwritable path throws dh::Error
//                                    at the first emission, not silently)
// or programmatically via set_trace_sink() (tests, tools).
//
// Event schema (JSONL sink), one object per line:
//   {"cat":"sim","name":"quantum","t_wall_ms":12.345,"t_sim_s":21600,
//    "f":{"worst_deg":0.0123,"recovery_cores":4}}
// `t_wall_ms` is wall time since the sink was created; `t_sim_s` is the
// simulation clock and is omitted when the event has none (NaN).
#pragma once

#include <initializer_list>
#include <memory>
#include <string>

namespace dh::obs {

/// One numeric field of a trace event.
struct TraceField {
  const char* key;
  double value;
};

/// A single event, fully described (used by sinks and tests).
struct TraceEvent {
  const char* category = "";
  const char* name = "";
  double wall_ms = 0.0;  // since sink creation
  double sim_time_s = 0.0;
  bool has_sim_time = false;
  const TraceField* fields = nullptr;
  std::size_t field_count = 0;
};

/// Sink interface. Implementations must be safe to call from multiple
/// threads (the dispatcher serialises writes, but flush()/destruction can
/// race with nothing — the dispatcher owns the sink).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// JSONL file sink. Throws dh::Error when the path cannot be opened for
/// writing. Flushes on destruction so process exit never loses the tail
/// of a trace.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;
  void write(const TraceEvent& event) override;
  void flush() override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::unique_ptr<Impl> impl_;
};

/// True when a sink is installed or DH_TRACE names a file that has not
/// been opened yet. One relaxed load — the whole cost of disabled tracing.
[[nodiscard]] bool trace_enabled() noexcept;

/// Emit an event. Call only under `if (trace_enabled())`; when tracing is
/// disabled this is a no-op. Lazily opens the DH_TRACE sink on first use
/// and throws dh::Error if that path is unwritable.
void trace_event(const char* category, const char* name,
                 std::initializer_list<TraceField> fields);

/// Same, stamping the simulation clock (seconds) into the event.
void trace_event_at(const char* category, const char* name,
                    double sim_time_s,
                    std::initializer_list<TraceField> fields);

/// Install (or clear, with nullptr) the process trace sink. Replacing a
/// sink flushes and destroys the old one. Clearing re-arms DH_TRACE only
/// if `rearm_env` is true (tests usually want a clean off state).
void set_trace_sink(std::unique_ptr<TraceSink> sink, bool rearm_env = false);

/// Flush the installed sink, if any.
void flush_trace();

/// Pause / resume emission without touching the installed sink. While
/// paused trace_enabled() reads false, so guarded call sites pay only the
/// flag load — used by overhead benchmarks to A/B a single sink.
void set_trace_paused(bool paused);

}  // namespace dh::obs
