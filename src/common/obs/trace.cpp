#include "common/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/error.hpp"
#include "common/fault/fault.hpp"
#include "common/obs/metrics.hpp"

namespace dh::obs {

namespace {

/// Count one dropped trace record. Never throws: the drop counter is the
/// channel of last resort, used from destructors and flush paths where an
/// exception would terminate the process.
void count_trace_drop() noexcept {
  try {
    registry().counter("trace.drop").add();
  } catch (...) {
    // Losing the drop count is acceptable; losing the process is not.
  }
}

}  // namespace

struct JsonlTraceSink::Impl {
  std::ofstream out;
};

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : path_(path), impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out) {
    throw Error("trace sink: cannot open '" + path +
                "' for writing (check DH_TRACE / directory permissions)");
  }
}

JsonlTraceSink::~JsonlTraceSink() {
  // Flush-on-destruction: the trace tail must survive normal process exit
  // even if nobody called flush_trace(). A failed final flush must NOT
  // propagate from a destructor — it is recorded as a dropped record
  // (`trace.drop`) instead.
  try {
    if (impl_ && impl_->out.is_open()) {
      impl_->out.flush();
      if (!impl_->out) count_trace_drop();
    }
  } catch (...) {
    count_trace_drop();
  }
}

namespace {

void append_number(std::string& line, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  line += buf;
}

}  // namespace

void JsonlTraceSink::write(const TraceEvent& event) {
  // _untraced: this runs under the trace dispatcher lock; emitting the
  // usual fault/inject trace event from here would re-enter and deadlock.
  if (fault::armed() && fault::should_inject_untraced("io.trace_write")) {
    count_trace_drop();
    throw Error("trace sink: injected I/O failure (EIO) writing '" +
                path_ + "'");
  }
  std::string line;
  line.reserve(96 + 24 * event.field_count);
  line += "{\"cat\":\"";
  line += event.category;
  line += "\",\"name\":\"";
  line += event.name;
  line += "\",\"t_wall_ms\":";
  append_number(line, event.wall_ms);
  if (event.has_sim_time) {
    line += ",\"t_sim_s\":";
    append_number(line, event.sim_time_s);
  }
  if (event.field_count > 0) {
    line += ",\"f\":{";
    for (std::size_t i = 0; i < event.field_count; ++i) {
      if (i > 0) line += ',';
      line += '"';
      line += event.fields[i].key;
      line += "\":";
      append_number(line, event.fields[i].value);
    }
    line += '}';
  }
  line += "}\n";
  impl_->out << line;
  if (!impl_->out) {
    count_trace_drop();
    throw Error("trace sink: write to '" + path_ +
                "' failed (disk full or file closed)");
  }
}

void JsonlTraceSink::flush() {
  if (impl_->out.is_open()) {
    impl_->out.flush();
    if (!impl_->out) count_trace_drop();
  }
}

namespace {

// Dispatcher state. `g_armed` is the single hot-path flag: true while a
// sink is installed OR DH_TRACE is set but not yet opened. Everything
// else sits behind the mutex, touched only while tracing is on.
std::atomic<bool> g_armed{false};
std::mutex g_mu;
std::unique_ptr<TraceSink> g_sink;          // guarded by g_mu
bool g_env_pending = false;                 // DH_TRACE seen, not opened
bool g_paused = false;                      // guarded by g_mu
std::string g_env_path;                     // guarded by g_mu
std::chrono::steady_clock::time_point g_epoch;  // guarded by g_mu

// Recompute the hot-path flag from the full state (call under g_mu).
void rearm_locked() {
  g_armed.store(!g_paused && (g_sink != nullptr || g_env_pending),
                std::memory_order_relaxed);
}

// Arm from the environment exactly once per process.
const bool g_env_init = [] {
  if (const char* env = std::getenv("DH_TRACE")) {
    if (env[0] != '\0') {
      std::lock_guard<std::mutex> lock(g_mu);
      g_env_path = env;
      g_env_pending = true;
      rearm_locked();
    }
  }
  return true;
}();

void emit(const char* category, const char* name, double sim_time_s,
          bool has_sim_time, std::initializer_list<TraceField> fields) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_env_pending) {
    // Lazy open so an unwritable DH_TRACE surfaces as a catchable
    // dh::Error at the first emission instead of aborting static init.
    g_env_pending = false;
    try {
      g_sink = std::make_unique<JsonlTraceSink>(g_env_path);
    } catch (...) {
      g_armed.store(false, std::memory_order_relaxed);
      throw;
    }
    g_epoch = std::chrono::steady_clock::now();
  }
  if (!g_sink) return;  // disarmed concurrently
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - g_epoch)
                  .count();
  e.sim_time_s = sim_time_s;
  e.has_sim_time = has_sim_time;
  e.fields = fields.begin();
  e.field_count = fields.size();
  g_sink->write(e);
}

}  // namespace

bool trace_enabled() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

void trace_event(const char* category, const char* name,
                 std::initializer_list<TraceField> fields) {
  if (!trace_enabled()) return;
  emit(category, name, 0.0, false, fields);
}

void trace_event_at(const char* category, const char* name,
                    double sim_time_s,
                    std::initializer_list<TraceField> fields) {
  if (!trace_enabled()) return;
  emit(category, name, sim_time_s, true, fields);
}

void set_trace_sink(std::unique_ptr<TraceSink> sink, bool rearm_env) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_sink) g_sink->flush();
  g_sink = std::move(sink);
  g_epoch = std::chrono::steady_clock::now();
  if (g_sink) {
    g_env_pending = false;
  } else {
    g_env_pending = rearm_env && !g_env_path.empty();
  }
  rearm_locked();
}

void set_trace_paused(bool paused) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_paused = paused;
  rearm_locked();
}

void flush_trace() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_sink) g_sink->flush();
}

}  // namespace dh::obs
