// Output routing for benchmark artifacts (BENCH_*.json). Benches used to
// write relative to whatever the working directory happened to be; every
// writer now goes through json_output_path(), which honors DH_BENCH_DIR
// so results land in one predictable place.
#pragma once

#include <string>

namespace dh::obs {

/// Where a bench artifact named `filename` (e.g. "BENCH_obs.json") should
/// be written: "$DH_BENCH_DIR/<filename>" when DH_BENCH_DIR is set (the
/// directory is created if missing; dh::Error if that fails), else
/// `filename` in the current working directory.
[[nodiscard]] std::string json_output_path(const std::string& filename);

}  // namespace dh::obs
