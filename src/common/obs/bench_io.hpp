// Output routing for benchmark artifacts (BENCH_*.json). Benches used to
// write relative to whatever the working directory happened to be; every
// writer now goes through json_output_path(), which honors DH_BENCH_DIR
// so results land in one predictable place.
#pragma once

#include <string>

namespace dh::obs {

/// Where a bench artifact named `filename` (e.g. "BENCH_obs.json") should
/// be written: "$DH_BENCH_DIR/<filename>" when DH_BENCH_DIR is set (the
/// directory is created if missing; dh::Error if that fails), else
/// `filename` in the current working directory.
[[nodiscard]] std::string json_output_path(const std::string& filename);

/// Write `content` to `path` atomically: bytes go to "<path>.tmp", which
/// is renamed over `path` only after a successful flush — a crash or
/// ENOSPC mid-write can truncate only the temp file, never a previously
/// published artifact. Throws dh::Error naming the path on any failure.
/// Fault site: `io.bench_write` (simulated EIO before any byte lands).
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace dh::obs
