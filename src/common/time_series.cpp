#include "common/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"

namespace dh {

void TimeSeries::append(Seconds t, double value) {
  DH_REQUIRE(times_.empty() || t.value() >= times_.back(),
             "time series samples must be appended in time order");
  times_.push_back(t.value());
  values_.push_back(value);
}

Seconds TimeSeries::time_at(std::size_t i) const {
  DH_REQUIRE(i < times_.size(), "time series index out of range");
  return Seconds{times_[i]};
}

double TimeSeries::value_at(std::size_t i) const {
  DH_REQUIRE(i < values_.size(), "time series index out of range");
  return values_[i];
}

Seconds TimeSeries::front_time() const {
  DH_REQUIRE(!times_.empty(), "time series is empty");
  return Seconds{times_.front()};
}

Seconds TimeSeries::back_time() const {
  DH_REQUIRE(!times_.empty(), "time series is empty");
  return Seconds{times_.back()};
}

double TimeSeries::front_value() const {
  DH_REQUIRE(!values_.empty(), "time series is empty");
  return values_.front();
}

double TimeSeries::back_value() const {
  DH_REQUIRE(!values_.empty(), "time series is empty");
  return values_.back();
}

double TimeSeries::sample(Seconds t) const {
  DH_REQUIRE(!times_.empty(), "cannot sample an empty time series");
  const double x = t.value();
  if (x <= times_.front()) return values_.front();
  if (x >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double t0 = times_[lo];
  const double t1 = times_[hi];
  if (t1 == t0) return values_[hi];
  const double w = (x - t0) / (t1 - t0);
  return values_[lo] * (1.0 - w) + values_[hi] * w;
}

double TimeSeries::min_value() const {
  DH_REQUIRE(!values_.empty(), "time series is empty");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max_value() const {
  DH_REQUIRE(!values_.empty(), "time series is empty");
  return *std::max_element(values_.begin(), values_.end());
}

Seconds TimeSeries::first_upcross(double threshold) const {
  for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
    if (values_[i] < threshold && values_[i + 1] >= threshold) {
      const double dv = values_[i + 1] - values_[i];
      const double w = dv == 0.0 ? 0.0 : (threshold - values_[i]) / dv;
      return Seconds{times_[i] + w * (times_[i + 1] - times_[i])};
    }
  }
  if (!values_.empty() && values_.front() >= threshold) {
    return Seconds{times_.front()};
  }
  return Seconds{-1.0};
}

TimeSeries TimeSeries::resampled(std::size_t n) const {
  DH_REQUIRE(n >= 2, "resampling needs at least two points");
  DH_REQUIRE(!times_.empty(), "cannot resample an empty series");
  TimeSeries out{name_, unit_};
  const double t0 = times_.front();
  const double t1 = times_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.append(Seconds{t}, sample(Seconds{t}));
  }
  return out;
}

TimeSeries TimeSeries::scaled(double factor) const {
  TimeSeries out{name_, unit_};
  for (std::size_t i = 0; i < times_.size(); ++i) {
    out.append(Seconds{times_[i]}, values_[i] * factor);
  }
  return out;
}

void write_csv(std::ostream& os, const std::vector<TimeSeries>& series) {
  std::size_t max_rows = 0;
  for (const auto& s : series) max_rows = std::max(max_rows, s.size());
  bool first = true;
  for (const auto& s : series) {
    if (!first) os << ',';
    os << "t_" << s.name() << "(s)," << s.name();
    if (!s.unit().empty()) os << '(' << s.unit() << ')';
    first = false;
  }
  os << '\n';
  for (std::size_t r = 0; r < max_rows; ++r) {
    first = true;
    for (const auto& s : series) {
      if (!first) os << ',';
      if (r < s.size()) {
        os << s.time_at(r).value() << ',' << s.value_at(r);
      } else {
        os << ',';
      }
      first = false;
    }
    os << '\n';
  }
}

void print_series_table(std::ostream& os,
                        const std::vector<TimeSeries>& series,
                        std::size_t rows) {
  if (series.empty() || rows < 2) return;
  double t0 = series.front().front_time().value();
  double t1 = series.front().back_time().value();
  for (const auto& s : series) {
    t0 = std::min(t0, s.front_time().value());
    t1 = std::max(t1, s.back_time().value());
  }
  os << std::setw(12) << "t (min)";
  for (const auto& s : series) {
    os << std::setw(22) << s.name();
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(r) / static_cast<double>(rows - 1);
    os << std::setw(12) << std::fixed << std::setprecision(1) << (t / 60.0);
    for (const auto& s : series) {
      if (t < s.front_time().value() || t > s.back_time().value()) {
        os << std::setw(22) << "-";
      } else {
        os << std::setw(22) << std::setprecision(4) << s.sample(Seconds{t});
      }
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

void TimeSeries::save_state(ckpt::Serializer& s) const {
  s.begin_section("TSER");
  s.write_string(name_);
  s.write_string(unit_);
  s.write_f64_vec(times_);
  s.write_f64_vec(values_);
}

void TimeSeries::load_state(ckpt::Deserializer& d) {
  d.expect_section("TSER");
  name_ = d.read_string();
  unit_ = d.read_string();
  times_ = d.read_f64_vec();
  values_ = d.read_f64_vec();
  DH_REQUIRE(times_.size() == values_.size(),
             "time series snapshot has mismatched time/value lengths");
}

}  // namespace dh
