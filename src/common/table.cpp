#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace dh {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DH_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DH_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
     << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace dh
