// Arrhenius temperature-activation helpers.
//
// Both BTI trap emission/capture and EM atomic diffusion are thermally
// activated processes; everything temperature-related in this library goes
// through these two functions so acceleration factors are consistent.
#pragma once

#include "common/units.hpp"

namespace dh {

/// exp(-Ea / kT): the Boltzmann factor for a process with activation
/// energy `ea` at absolute temperature `t`.
[[nodiscard]] double boltzmann_factor(ElectronVolts ea, Kelvin t);

/// Arrhenius acceleration factor of temperature `t` relative to reference
/// temperature `t_ref` for activation energy `ea`:
///   AF = exp(Ea/k * (1/T_ref - 1/T)).
/// AF > 1 when t > t_ref (the process speeds up).
[[nodiscard]] double arrhenius_acceleration(ElectronVolts ea, Kelvin t,
                                            Kelvin t_ref);

/// Thermal voltage-equivalent kT in eV at temperature `t`.
[[nodiscard]] double thermal_energy_ev(Kelvin t);

}  // namespace dh
