// Error handling primitives for the deep-healing library.
//
// All contract violations throw dh::Error (derived from std::runtime_error)
// so callers can distinguish library failures from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>

namespace dh {

/// Exception type thrown on any contract violation or numerical failure
/// inside the deep-healing library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an iterative solver fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void raise_requirement(const char* expr, const char* file,
                                    int line, const std::string& msg);
}  // namespace detail

}  // namespace dh

/// Precondition check: throws dh::Error with location info when `expr` is
/// false. Always active (these guard physical-model contracts, not hot
/// inner loops).
#define DH_REQUIRE(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::dh::detail::raise_requirement(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)
