// Versioned snapshot container for checkpoint files (*.dhck).
//
// File layout (all integers little-endian):
//   bytes 0-3   magic "DHCK"
//   bytes 4-7   u32 schema version (kSchemaVersion)
//
//   u64 kind length + kind bytes   what the payload holds ("system_sim",
//                                  "population_member", ...)
//   u64 payload length
//   u32 CRC-32 of the payload
//   payload bytes
//
// write_snapshot is atomic: the file is written to "<path>.tmp" and
// renamed into place, so a reader never sees a half-written snapshot and
// a crash mid-write leaves any previous snapshot intact. read_snapshot
// rejects missing/foreign/truncated/corrupted/version-skewed files with a
// descriptive dh::Error naming the failure, the path, and (for version
// skew) both versions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dh::ckpt {

inline constexpr std::uint32_t kSchemaVersion = 1;
inline constexpr char kMagic[4] = {'D', 'H', 'C', 'K'};

struct SnapshotHeader {
  std::uint32_t version = 0;
  std::string kind;
  std::uint64_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// Write `payload` to `path` atomically (temp file + rename). Throws
/// dh::Error when the directory/file cannot be written. Increments the
/// `ckpt.write` counter and emits a `ckpt/write` trace event.
void write_snapshot(const std::string& path, const std::string& kind,
                    const std::vector<std::uint8_t>& payload);

/// Read and fully validate a snapshot. `expected_kind` (when non-empty)
/// must match the stored kind. Throws dh::Error on any validation
/// failure; never returns a partially-checked payload.
[[nodiscard]] std::vector<std::uint8_t> read_snapshot(
    const std::string& path, const std::string& expected_kind = "");

/// Header only (no payload CRC check beyond length) — what ckpt_inspect
/// uses to describe a file. `crc_ok`, when non-null, receives the result
/// of the full payload CRC check.
[[nodiscard]] SnapshotHeader read_snapshot_header(const std::string& path,
                                                  bool* crc_ok = nullptr);

/// True if `path` exists and read_snapshot(path, expected_kind) would
/// succeed. Never throws — the resume path uses this to treat a corrupt
/// per-member checkpoint as simply "not done yet".
[[nodiscard]] bool snapshot_valid(const std::string& path,
                                  const std::string& expected_kind) noexcept;

}  // namespace dh::ckpt
