#include "common/ckpt/serialize.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace dh::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

void Serializer::write_u8(std::uint8_t v) { buf_.push_back(v); }

void Serializer::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Serializer::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Serializer::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void Serializer::write_bool(bool v) { write_u8(v ? 1 : 0); }

void Serializer::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void Serializer::write_string(std::string_view s) {
  write_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Serializer::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  for (const double x : v) write_f64(x);
}

void Serializer::write_u64_vec(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  for (const std::uint64_t x : v) write_u64(x);
}

void Serializer::write_bool_vec(const std::vector<bool>& v) {
  write_u64(v.size());
  for (const bool b : v) write_u8(b ? 1 : 0);
}

void Serializer::begin_section(const char (&tag)[5]) {
  buf_.insert(buf_.end(), tag, tag + 4);
}

void Deserializer::need(std::size_t n, const char* what) {
  if (buf_.size() - pos_ < n) {
    throw Error("snapshot truncated: need " + std::to_string(n) +
                " byte(s) for " + what + " at offset " +
                std::to_string(pos_) + " but only " +
                std::to_string(buf_.size() - pos_) + " remain");
  }
}

std::uint8_t Deserializer::read_u8() {
  need(1, "u8");
  return buf_[pos_++];
}

std::uint32_t Deserializer::read_u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Deserializer::read_u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t Deserializer::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

bool Deserializer::read_bool() {
  const std::uint8_t v = read_u8();
  if (v > 1) {
    throw Error("snapshot corrupt: bool field holds " + std::to_string(v) +
                " at offset " + std::to_string(pos_ - 1));
  }
  return v != 0;
}

double Deserializer::read_f64() {
  return std::bit_cast<double>(read_u64());
}

std::string Deserializer::read_string() {
  const std::uint64_t n = read_u64();
  need(n, "string payload");
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> Deserializer::read_f64_vec() {
  const std::uint64_t n = read_u64();
  need(n * 8, "f64 vector payload");
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_f64());
  return v;
}

std::vector<std::uint64_t> Deserializer::read_u64_vec() {
  const std::uint64_t n = read_u64();
  need(n * 8, "u64 vector payload");
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_u64());
  return v;
}

std::vector<bool> Deserializer::read_bool_vec() {
  const std::uint64_t n = read_u64();
  need(n, "bool vector payload");
  std::vector<bool> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_u8() != 0);
  return v;
}

void Deserializer::expect_section(const char (&tag)[5]) {
  need(4, "section tag");
  const char* at = reinterpret_cast<const char*>(buf_.data() + pos_);
  if (std::memcmp(at, tag, 4) != 0) {
    throw Error(std::string("snapshot section mismatch at offset ") +
                std::to_string(pos_) + ": expected '" + tag + "', found '" +
                std::string(at, 4) + "' — snapshot layout does not match "
                "this build");
  }
  pos_ += 4;
}

void save_engine(Serializer& s, const std::mt19937_64& engine) {
  std::ostringstream os;
  os << engine;
  s.write_string(os.str());
}

void load_engine(Deserializer& d, std::mt19937_64& engine) {
  std::istringstream is(d.read_string());
  is >> engine;
  if (!is) {
    throw Error("snapshot corrupt: RNG engine state failed to parse");
  }
}

}  // namespace dh::ckpt
