// Binary serialization for checkpoint/restore snapshots.
//
// A Serializer appends fixed-width little-endian fields to a growing byte
// buffer; a Deserializer reads them back with bounds checking, throwing a
// descriptive dh::Error the moment a read would run past the payload (the
// signature of a truncated or mis-versioned snapshot). Doubles travel as
// their IEEE-754 bit patterns, so a save → restore round trip is
// bit-identical — the property the whole checkpoint layer is built on.
//
// Framing convention: every component's save_state() opens with a 4-byte
// section tag (see begin_section/expect_section). A tag mismatch on load
// turns a subtle field-misalignment bug into an immediate, named error.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

namespace dh::ckpt {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, seeded per the
/// standard reflected algorithm. Used by the snapshot container to detect
/// corruption.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(const std::vector<std::uint8_t>& data);

class Serializer {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_bool(bool v);
  void write_f64(double v);
  void write_string(std::string_view s);
  void write_f64_vec(const std::vector<double>& v);
  void write_u64_vec(const std::vector<std::uint64_t>& v);
  void write_bool_vec(const std::vector<bool>& v);

  /// Open a component section with a 4-character tag (e.g. "CBTI").
  void begin_section(const char (&tag)[5]);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Deserializer {
 public:
  explicit Deserializer(std::vector<std::uint8_t> data)
      : buf_(std::move(data)) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] bool read_bool();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<double> read_f64_vec();
  [[nodiscard]] std::vector<std::uint64_t> read_u64_vec();
  [[nodiscard]] std::vector<bool> read_bool_vec();

  /// Consume and verify a section tag; dh::Error names both tags on
  /// mismatch.
  void expect_section(const char (&tag)[5]);

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n, const char* what);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Serialize an mt19937_64 engine (the state behind dh::Rng) exactly: the
/// standard guarantees operator<</>> round-trips the full 19937-bit state,
/// so the restored stream continues bit-identically.
void save_engine(Serializer& s, const std::mt19937_64& engine);
void load_engine(Deserializer& d, std::mt19937_64& engine);

}  // namespace dh::ckpt
