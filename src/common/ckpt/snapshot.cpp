#include "common/ckpt/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/ckpt/serialize.hpp"
#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"

namespace dh::ckpt {

namespace {

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("snapshot '" + path + "' cannot be opened for reading");
  }
  std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw Error("snapshot '" + path + "' failed mid-read (I/O error)");
  }
  return data;
}

SnapshotHeader parse_header(const std::string& path,
                            const std::vector<std::uint8_t>& data,
                            std::size_t* payload_offset) {
  if (data.size() < 8 || std::memcmp(data.data(), kMagic, 4) != 0) {
    throw Error("snapshot '" + path +
                "' is not a deep-healing checkpoint (bad magic)");
  }
  SnapshotHeader h;
  Deserializer d{{data.begin() + 4, data.end()}};
  h.version = d.read_u32();
  if (h.version != kSchemaVersion) {
    throw Error("snapshot '" + path + "' has schema version " +
                std::to_string(h.version) + " but this build reads version " +
                std::to_string(kSchemaVersion) +
                " — re-create the checkpoint with a matching build");
  }
  h.kind = d.read_string();
  h.payload_size = d.read_u64();
  h.payload_crc = d.read_u32();
  *payload_offset = data.size() - d.remaining();
  if (d.remaining() < h.payload_size) {
    throw Error("snapshot '" + path + "' truncated: header promises " +
                std::to_string(h.payload_size) + " payload byte(s), file has " +
                std::to_string(d.remaining()));
  }
  return h;
}

}  // namespace

void write_snapshot(const std::string& path, const std::string& kind,
                    const std::vector<std::uint8_t>& payload) {
  Serializer header;
  header.begin_section("DHCK");
  header.write_u32(kSchemaVersion);
  header.write_string(kind);
  header.write_u64(payload.size());
  header.write_u32(crc32(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("checkpoint '" + path + "' cannot be written: failed to "
                  "open temp file '" + tmp + "'");
    }
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw Error("checkpoint '" + path +
                  "' write failed (disk full or I/O error on temp file)");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    throw Error("checkpoint '" + path +
                "' rename from temp failed: " + ec.message());
  }
  static obs::Counter& writes = obs::registry().counter("ckpt.write");
  writes.add();
  if (obs::trace_enabled()) {
    obs::trace_event("ckpt", "write",
                     {{"bytes", static_cast<double>(payload.size())}});
  }
}

std::vector<std::uint8_t> read_snapshot(const std::string& path,
                                        const std::string& expected_kind) {
  const std::vector<std::uint8_t> data = read_all(path);
  std::size_t offset = 0;
  const SnapshotHeader h = parse_header(path, data, &offset);
  if (!expected_kind.empty() && h.kind != expected_kind) {
    throw Error("snapshot '" + path + "' holds a '" + h.kind +
                "' payload, expected '" + expected_kind + "'");
  }
  std::vector<std::uint8_t> payload{
      data.begin() + static_cast<std::ptrdiff_t>(offset),
      data.begin() + static_cast<std::ptrdiff_t>(offset + h.payload_size)};
  const std::uint32_t actual = crc32(payload);
  if (actual != h.payload_crc) {
    char want[16];
    char got[16];
    std::snprintf(want, sizeof(want), "%08x", h.payload_crc);
    std::snprintf(got, sizeof(got), "%08x", actual);
    throw Error("snapshot '" + path + "' corrupt: payload CRC " + got +
                " does not match stored CRC " + want);
  }
  return payload;
}

SnapshotHeader read_snapshot_header(const std::string& path, bool* crc_ok) {
  const std::vector<std::uint8_t> data = read_all(path);
  std::size_t offset = 0;
  const SnapshotHeader h = parse_header(path, data, &offset);
  if (crc_ok != nullptr) {
    *crc_ok =
        crc32(data.data() + offset, h.payload_size) == h.payload_crc;
  }
  return h;
}

bool snapshot_valid(const std::string& path,
                    const std::string& expected_kind) noexcept {
  try {
    (void)read_snapshot(path, expected_kind);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace dh::ckpt
