#include "common/parallel.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/profile.hpp"

namespace dh {

namespace {

// Pool telemetry. Metric objects are immortal registry entries; the
// references are resolved once. Recording is observation-only: it cannot
// perturb index assignment or results.
struct PoolMetrics {
  obs::Counter& jobs = obs::registry().counter("pool.jobs");
  obs::Counter& tasks = obs::registry().counter("pool.tasks");
  obs::Counter& tasks_caller = obs::registry().counter("pool.tasks.caller");
  obs::Counter& tasks_worker = obs::registry().counter("pool.tasks.worker");
  obs::Histogram& job_ms = obs::registry().histogram("pool.job_ms", "ms");
  obs::Histogram& drain_wait_ms =
      obs::registry().histogram("pool.drain_wait_ms", "ms");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  DH_REQUIRE(threads <= 256, "thread count out of range");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("DH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v > 256 ? 256 : v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t ThreadPool::run_indices(Job& job) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    ++executed;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      // Cancel remaining work: drain the claim counter. (Completion is
      // tracked by in-flight workers, not executed indices, so this
      // cannot strand the caller.)
      job.next.store(job.n, std::memory_order_relaxed);
    }
  }
  return executed;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || job_ != nullptr; });
      if (stop_) return;
      job = job_;
      ++active_workers_;
    }
    const std::size_t executed = run_indices(*job);
    if (executed > 0) pool_metrics().tasks_worker.add(executed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  PoolMetrics& m = pool_metrics();
  if (workers_.empty() || n == 1) {
    DH_PROF_SCOPE("pool.inline_job");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    m.tasks.add(n);
    m.tasks_caller.add(n);
    return;
  }
  m.jobs.add();
  m.tasks.add(n);
  const auto job_t0 = std::chrono::steady_clock::now();
  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DH_REQUIRE(job_ == nullptr,
               "ThreadPool does not support nested/concurrent parallel_for "
               "on the same pool");
    job_ = &job;
  }
  work_cv_.notify_all();
  const std::size_t executed = run_indices(job);  // the caller participates
  m.tasks_caller.add(executed);
  const auto drain_t0 = std::chrono::steady_clock::now();
  {
    // The caller's run_indices only returns once the claim counter is
    // drained, so no *new* work remains; wait until every worker that
    // entered the job has left it, so none still holds a reference to
    // the stack-allocated job (or is mid-task).
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // stop waking workers for this job
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  }
  const auto job_t1 = std::chrono::steady_clock::now();
  if (obs::enabled()) {
    m.drain_wait_ms.observe(
        std::chrono::duration<double, std::milli>(job_t1 - drain_t0)
            .count());
    m.job_ms.observe(
        std::chrono::duration<double, std::milli>(job_t1 - job_t0).count());
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_pool_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

std::size_t global_thread_count() { return global_pool().thread_count(); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(n, fn);
}

}  // namespace dh
