#include "common/parallel.hpp"

#include <cstdlib>
#include <memory>

#include "common/error.hpp"

namespace dh {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  DH_REQUIRE(threads <= 256, "thread count out of range");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("DH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v > 256 ? 256 : v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void ThreadPool::run_indices(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      // Cancel remaining work: drain the claim counter. (Completion is
      // tracked by in-flight workers, not executed indices, so this
      // cannot strand the caller.)
      job.next.store(job.n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || job_ != nullptr; });
      if (stop_) return;
      job = job_;
      ++active_workers_;
    }
    run_indices(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DH_REQUIRE(job_ == nullptr,
               "ThreadPool does not support nested/concurrent parallel_for "
               "on the same pool");
    job_ = &job;
  }
  work_cv_.notify_all();
  run_indices(job);  // the caller participates
  {
    // The caller's run_indices only returns once the claim counter is
    // drained, so no *new* work remains; wait until every worker that
    // entered the job has left it, so none still holds a reference to
    // the stack-allocated job (or is mid-task).
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // stop waking workers for this job
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_pool_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

std::size_t global_thread_count() { return global_pool().thread_count(); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(n, fn);
}

}  // namespace dh
