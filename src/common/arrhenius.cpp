#include "common/arrhenius.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace dh {

double boltzmann_factor(ElectronVolts ea, Kelvin t) {
  DH_REQUIRE(t.value() > 0.0, "absolute temperature must be positive");
  return std::exp(-ea.value() / (constants::kBoltzmannEv * t.value()));
}

double arrhenius_acceleration(ElectronVolts ea, Kelvin t, Kelvin t_ref) {
  DH_REQUIRE(t.value() > 0.0 && t_ref.value() > 0.0,
             "absolute temperatures must be positive");
  const double inv_diff = 1.0 / t_ref.value() - 1.0 / t.value();
  return std::exp(ea.value() / constants::kBoltzmannEv * inv_diff);
}

double thermal_energy_ev(Kelvin t) {
  DH_REQUIRE(t.value() > 0.0, "absolute temperature must be positive");
  return constants::kBoltzmannEv * t.value();
}

}  // namespace dh
