// Aligned terminal tables for the bench harnesses (each bench prints the
// same rows the paper's table/figure reports).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dh {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have the same number of cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats a ratio as a percentage string like "72.4%".
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dh
