#include "common/fault/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"

namespace dh::fault {

namespace {

constexpr std::uint64_t kDefaultSeed = 0xDEADF417ull;

struct Site {
  SiteSpec spec;
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> injected{0};
  obs::Counter* counter = nullptr;  // fault.injected.<site>
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Site>> sites;  // small; linear scan is fine
  std::uint64_t seed = kDefaultSeed;
  bool env_loaded = false;
};

std::atomic<bool> g_armed{false};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// FNV-1a over the site name, mixed with the seed — the per-site stream
/// base for the deterministic decision hash.
std::uint64_t site_hash(std::uint64_t seed, const std::string& site) {
  std::uint64_t h = 0xCBF29CE484222325ull ^ seed;
  for (const char c : site) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return detail::mix64(h);
}

Site* find_locked(Registry& r, const char* site) {
  for (const auto& s : r.sites) {
    if (s->spec.site == site) return s.get();
  }
  return nullptr;
}

void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  if (const char* seed_env = std::getenv("DH_FAULT_SEED")) {
    if (seed_env[0] != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(seed_env, &end, 0);
      if (end == seed_env || *end != '\0') {
        throw Error(std::string("DH_FAULT_SEED='") + seed_env +
                    "' is not an integer");
      }
      r.seed = v;
    }
  }
  if (const char* spec = std::getenv("DH_FAULTS")) {
    if (spec[0] != '\0') {
      for (SiteSpec& s : parse_fault_spec(spec)) {
        auto site = std::make_unique<Site>();
        site->spec = std::move(s);
        r.sites.push_back(std::move(site));
      }
    }
  }
  r.env_loaded = true;
  g_armed.store(!r.sites.empty(), std::memory_order_relaxed);
}

/// One-time environment pickup, off the hot path. A malformed DH_FAULTS
/// throws from here on every probe until fixed — loud, catchable, and
/// never during static initialization.
std::atomic<bool> g_env_checked{false};

void ensure_env() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  g_env_checked.store(true, std::memory_order_release);
}

}  // namespace

std::vector<SiteSpec> parse_fault_spec(const std::string& spec) {
  std::vector<SiteSpec> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const std::size_t c1 = clause.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : clause.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        clause.find(':', c2 + 1) != std::string::npos) {
      throw Error("fault spec clause '" + clause +
                  "' malformed: expected site:prob:count");
    }
    SiteSpec s;
    s.site = clause.substr(0, c1);
    if (s.site.empty()) {
      throw Error("fault spec clause '" + clause + "' has an empty site name");
    }
    try {
      std::size_t used = 0;
      const std::string prob_str = clause.substr(c1 + 1, c2 - c1 - 1);
      s.probability = std::stod(prob_str, &used);
      if (used != prob_str.size()) throw std::invalid_argument(prob_str);
      const std::string count_str = clause.substr(c2 + 1);
      s.max_count = std::stoull(count_str, &used);
      if (used != count_str.size()) throw std::invalid_argument(count_str);
    } catch (const std::exception&) {
      throw Error("fault spec clause '" + clause +
                  "' malformed: prob must be a real, count an integer");
    }
    if (s.probability < 0.0 || s.probability > 1.0) {
      throw Error("fault spec clause '" + clause +
                  "': probability must be in [0,1]");
    }
    if (s.max_count == 0) {
      throw Error("fault spec clause '" + clause +
                  "': count must be positive (omit the site to disable it)");
    }
    out.push_back(std::move(s));
  }
  return out;
}

void configure(const std::string& spec) {
  std::vector<SiteSpec> parsed = parse_fault_spec(spec);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;  // explicit configuration overrides the environment
  g_env_checked.store(true, std::memory_order_release);
  r.sites.clear();
  for (SiteSpec& s : parsed) {
    auto site = std::make_unique<Site>();
    site->spec = std::move(s);
    r.sites.push_back(std::move(site));
  }
  g_armed.store(!r.sites.empty(), std::memory_order_relaxed);
}

void set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;
  g_env_checked.store(true, std::memory_order_release);
  r.seed = seed;
  for (const auto& s : r.sites) {
    s->attempts.store(0, std::memory_order_relaxed);
    s->injected.store(0, std::memory_order_relaxed);
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;
  g_env_checked.store(true, std::memory_order_release);
  r.sites.clear();
  r.seed = kDefaultSeed;
  g_armed.store(false, std::memory_order_relaxed);
}

bool armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

namespace {

bool should_inject_impl(const char* site, bool emit_trace) {
  ensure_env();
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  Registry& r = registry();
  std::uint64_t seed = 0;
  Site* s = nullptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    s = find_locked(r, site);
    seed = r.seed;
  }
  if (s == nullptr) return false;
  const std::uint64_t n = s->attempts.fetch_add(1, std::memory_order_relaxed);
  // Decision hash: uniform in [0,1) as a pure function of (seed, site, n).
  const std::uint64_t h =
      detail::mix64(site_hash(seed, s->spec.site) +
                    (n + 1) * detail::kGolden);
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // 53-bit mantissa
  if (u >= s->spec.probability) return false;
  // Enforce the cap exactly under concurrency: claim a slot, back out if
  // the cap was already reached.
  const std::uint64_t claimed =
      s->injected.fetch_add(1, std::memory_order_relaxed);
  if (claimed >= s->spec.max_count) {
    s->injected.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  static obs::Counter& total = obs::registry().counter("fault.injected");
  total.add();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (s->counter == nullptr) {
      s->counter = &obs::registry().counter("fault.injected." + s->spec.site);
    }
  }
  s->counter->add();
  if (emit_trace && obs::trace_enabled()) {
    obs::trace_event("fault", "inject",
                     {{"attempt", static_cast<double>(n)},
                      {"count", static_cast<double>(claimed + 1)}});
  }
  return true;
}

}  // namespace

bool should_inject(const char* site) {
  return should_inject_impl(site, /*emit_trace=*/true);
}

bool should_inject_untraced(const char* site) {
  return should_inject_impl(site, /*emit_trace=*/false);
}

std::uint64_t injection_count(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  const Site* s = find_locked(r, site);
  return s == nullptr ? 0 : s->injected.load(std::memory_order_relaxed);
}

std::vector<SiteSpec> configured_sites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  std::vector<SiteSpec> out;
  out.reserve(r.sites.size());
  for (const auto& s : r.sites) out.push_back(s->spec);
  return out;
}

}  // namespace dh::fault
