// Deterministic, seed-driven fault injection.
//
// Production code asks `fault::should_inject("site.name")` at the places
// where the real world can fail — a solver that stagnates, a trace file
// hitting EIO, a sensor returning garbage. With no faults configured the
// call is a single relaxed atomic load (the same discipline as
// obs::enabled()), so shipping the probes costs nothing.
//
// Faults are configured by spec string, either programmatically
// (fault::configure) or from the DH_FAULTS environment variable:
//
//   DH_FAULTS="site:prob:count[,site:prob:count...]"
//   DH_FAULT_SEED=12345        (optional; default 0xDEADF417)
//
//   solver.cg_stagnate:0.5:2   - inject at site "solver.cg_stagnate"
//                                with probability 0.5 per attempt, at
//                                most 2 times
//   sensor.nan:1:1             - fire on the first attempt, once
//
// `prob` is in [0,1]; `count` is a positive cap on total injections at
// that site (use a large value for "unlimited"). A malformed spec throws
// dh::Error naming the offending clause.
//
// Determinism: the decision for attempt n at a site is a pure function of
// (seed, site name, n) — a splitmix64 hash compared against prob — so a
// single-threaded run injects at exactly the same attempts every time.
// (Under a thread pool the per-site attempt order follows scheduling; the
// per-site *rate* and cap still hold.)
//
// Every injection increments the `fault.injected` registry counter, the
// per-site counter `fault.injected.<site>`, and emits a `fault/inject`
// trace event when tracing is on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dh::fault {

/// One parsed clause of a fault spec.
struct SiteSpec {
  std::string site;
  double probability = 0.0;
  std::uint64_t max_count = 0;
};

/// Parse a spec string (the DH_FAULTS grammar). Throws dh::Error on a
/// malformed clause. An empty string yields an empty vector.
[[nodiscard]] std::vector<SiteSpec> parse_fault_spec(const std::string& spec);

/// Replace the active configuration with `spec` (parsed per the grammar
/// above). Resets all attempt/injection counters.
void configure(const std::string& spec);

/// Override the decision seed (also resets counters). DH_FAULT_SEED is
/// honored on first use when this is never called.
void set_seed(std::uint64_t seed);

/// Clear every configured site and counter (tests).
void reset();

/// True when any site is armed — one relaxed load. Production probes call
/// should_inject directly; it performs this check first.
[[nodiscard]] bool armed() noexcept;

/// Decide whether the current attempt at `site` injects a fault. Counts
/// the attempt either way. Unconfigured sites never inject. The first
/// call overall loads DH_FAULTS / DH_FAULT_SEED; a malformed environment
/// spec throws dh::Error from here (catchable), not from static init.
[[nodiscard]] bool should_inject(const char* site);

/// should_inject without the `fault/inject` trace event. For probes that
/// sit *inside* the trace pipeline itself (e.g. the JSONL sink's write
/// path, which runs under the trace dispatcher lock): emitting a trace
/// event from there would re-enter the dispatcher and deadlock. Counters
/// still tick.
[[nodiscard]] bool should_inject_untraced(const char* site);

/// Total injections so far at `site` (0 when unconfigured).
[[nodiscard]] std::uint64_t injection_count(const char* site);

/// All sites currently configured (tests, diagnostics).
[[nodiscard]] std::vector<SiteSpec> configured_sites();

}  // namespace dh::fault
