#include "common/error.hpp"

#include <sstream>

namespace dh::detail {

void raise_requirement(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace dh::detail
