#include "common/math/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace dh::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double v) { std::ranges::fill(data_, v); }

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  DH_REQUIRE(x.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

LuFactorization::LuFactorization(const Matrix& a) : lu_(a), perm_(a.rows()) {
  DH_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (!(best > 1e-300) || !std::isfinite(best)) {
      // A vanishing pivot means the matrix is structurally singular (for
      // conductance matrices: a floating node with no path to any pad).
      // Report where elimination broke down instead of dividing by zero.
      throw Error{"LU factorization: pivot magnitude " +
                  std::to_string(best) + " at elimination column " +
                  std::to_string(k) + " of " + std::to_string(n) +
                  " — matrix is singular to working precision"};
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  DH_REQUIRE(b.size() == n, "rhs dimension mismatch");
  std::vector<double> x(n);
  // Apply permutation, forward substitution (unit lower).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution (upper).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

std::vector<double> solve_dense(const Matrix& a, std::span<const double> b) {
  return LuFactorization{a}.solve(b);
}

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  std::vector<double> x(diag.size());
  TridiagonalWorkspace ws;
  solve_tridiagonal(lower, diag, upper, rhs, x, ws);
  return x;
}

void solve_tridiagonal(std::span<const double> lower,
                       std::span<const double> diag,
                       std::span<const double> upper,
                       std::span<const double> rhs, std::span<double> x,
                       TridiagonalWorkspace& ws) {
  const std::size_t n = diag.size();
  DH_REQUIRE(n >= 1, "tridiagonal system must be non-empty");
  DH_REQUIRE(lower.size() == n - 1 && upper.size() == n - 1 &&
                 rhs.size() == n && x.size() == n,
             "tridiagonal band sizes inconsistent");
  ws.c_prime.resize(n);
  ws.d_prime.resize(n);
  double* const c_prime = ws.c_prime.data();
  double* const d_prime = ws.d_prime.data();
  DH_REQUIRE(std::abs(diag[0]) > 1e-300, "tridiagonal pivot underflow");
  c_prime[0] = n > 1 ? upper[0] / diag[0] : 0.0;
  d_prime[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - lower[i - 1] * c_prime[i - 1];
    DH_REQUIRE(std::abs(denom) > 1e-300, "tridiagonal pivot underflow");
    if (i < n - 1) c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / denom;
  }
  x[n - 1] = d_prime[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) {
    x[ii] = d_prime[ii] - c_prime[ii] * x[ii + 1];
  }
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> v) {
  double acc = 0.0;
  for (const double x : v) acc = std::max(acc, std::abs(x));
  return acc;
}

}  // namespace dh::math
