// Scalar root finding and 1-D minimization, used for calibration
// (fitting trap densities to Table I) and for schedule optimization
// (finding the stress:recovery balance point).
#pragma once

#include <functional>

namespace dh::math {

/// Finds x in [lo, hi] with f(x) = 0 by Brent's method. Requires
/// f(lo) and f(hi) to have opposite signs. Throws dh::ConvergenceError on
/// failure.
[[nodiscard]] double brent_root(const std::function<double(double)>& f,
                                double lo, double hi, double tol = 1e-10,
                                int max_iter = 200);

/// Simple bisection (robust fallback; same contract as brent_root).
[[nodiscard]] double bisect_root(const std::function<double(double)>& f,
                                 double lo, double hi, double tol = 1e-10,
                                 int max_iter = 200);

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
[[nodiscard]] double golden_minimize(const std::function<double(double)>& f,
                                     double lo, double hi, double tol = 1e-8,
                                     int max_iter = 200);

}  // namespace dh::math
