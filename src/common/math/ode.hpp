// Small fixed-step ODE integrators for compact wearout models.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dh::math {

/// dy/dt = f(t, y) for a state vector y.
using OdeRhs =
    std::function<void(double t, std::span<const double> y, std::span<double> dydt)>;

/// Classic 4th-order Runge–Kutta step: advances y in place from t by dt.
void rk4_step(const OdeRhs& f, double t, double dt, std::vector<double>& y);

/// Integrates from t0 to t1 with `steps` RK4 steps; y is updated in place.
void rk4_integrate(const OdeRhs& f, double t0, double t1, int steps,
                   std::vector<double>& y);

/// Scalar convenience: integrates dy/dt = f(t, y) and returns y(t1).
[[nodiscard]] double rk4_scalar(
    const std::function<double(double, double)>& f, double t0, double t1,
    int steps, double y0);

}  // namespace dh::math
