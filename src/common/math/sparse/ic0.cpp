#include "common/math/sparse/ic0.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace dh::math::sparse {

IncompleteCholesky::IncompleteCholesky(const CsrMatrix& a) : n_(a.rows()) {
  DH_REQUIRE(a.rows() == a.cols(), "IC(0) requires a square matrix");
  // Manteuffel shift ladder: IC(0) can break down on SPD matrices whose
  // dropped fill would have kept the pivots positive; shifting the
  // diagonal restores existence at a small preconditioner-quality cost.
  double alpha = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (factorize(a, alpha)) {
      shift_ = alpha;
      return;
    }
    alpha = alpha == 0.0 ? 1e-3 : alpha * 10.0;
  }
  throw Error{
      "IC(0) factorization broke down (non-positive pivot) even with "
      "diagonal shift " +
      std::to_string(alpha) +
      " — matrix is not positive definite or is singular to working "
      "precision"};
}

bool IncompleteCholesky::factorize(const CsrMatrix& a, double alpha) {
  const auto& a_ptr = a.row_ptr();
  const auto& a_col = a.col_idx();
  const auto& a_val = a.values();

  // Lower-triangle pattern of A (columns ascending, diagonal last).
  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    bool has_diag = false;
    for (std::size_t k = a_ptr[i]; k < a_ptr[i + 1]; ++k) {
      const std::size_t j = a_col[k];
      if (j > i) break;  // columns are sorted
      col_idx_.push_back(j);
      double v = a_val[k];
      if (j == i) {
        has_diag = true;
        v += alpha * std::abs(v);
      }
      values_.push_back(v);
    }
    if (!has_diag) return false;  // structurally rank-deficient row
    row_ptr_[i + 1] = col_idx_.size();
  }

  // Row-oriented up-looking factorization restricted to the pattern.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t i_begin = row_ptr_[i];
    const std::size_t i_diag = row_ptr_[i + 1] - 1;  // diagonal is last
    for (std::size_t ki = i_begin; ki <= i_diag; ++ki) {
      const std::size_t j = col_idx_[ki];
      // Sparse dot of rows i and j over columns < j.
      double acc = 0.0;
      std::size_t pi = i_begin;
      std::size_t pj = row_ptr_[j];
      const std::size_t j_diag = row_ptr_[j + 1] - 1;
      while (pi < ki && pj < j_diag) {
        if (col_idx_[pi] == col_idx_[pj]) {
          acc += values_[pi++] * values_[pj++];
        } else if (col_idx_[pi] < col_idx_[pj]) {
          ++pi;
        } else {
          ++pj;
        }
      }
      if (j < i) {
        values_[ki] = (values_[ki] - acc) / values_[j_diag];
      } else {
        const double s = values_[ki] - acc;
        if (!(s > 0.0) || !std::isfinite(s)) return false;
        values_[ki] = std::sqrt(s);
      }
    }
  }
  return true;
}

void IncompleteCholesky::apply(std::span<const double> r,
                               std::vector<double>& z) const {
  DH_REQUIRE(r.size() == n_, "IC(0) apply dimension mismatch");
  z.resize(n_);
  // Forward sweep: L y = r (diagonal entry is last in each row).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = r[i];
    const std::size_t diag = row_ptr_[i + 1] - 1;
    for (std::size_t k = row_ptr_[i]; k < diag; ++k) {
      acc -= values_[k] * z[col_idx_[k]];
    }
    z[i] = acc / values_[diag];
  }
  // Backward sweep: L^T z = y, scattered row-wise so only row access is
  // needed. Entry L(i,j) (j < i) feeds equation j, finalized later.
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t diag = row_ptr_[i + 1] - 1;
    const double zi = z[i] / values_[diag];
    z[i] = zi;
    for (std::size_t k = row_ptr_[i]; k < diag; ++k) {
      z[col_idx_[k]] -= values_[k] * zi;
    }
  }
}

}  // namespace dh::math::sparse
