// Sparse-direct factorizations for small SPD systems: an LDL^T
// tridiagonal factor (1-D chains: single-row grids, Korhonen-style
// stencils) and a banded Cholesky (rows x cols meshes have bandwidth
// min(rows, cols), so small grids factor in O(n b^2) and solve in
// O(n b) — tiny grids stay as fast as, or faster than, the dense LU they
// replace). Both are Preconditioners, so a stale direct factor can drive
// the drift-refinement PCG exactly like a stale IC(0) factor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/math/sparse/cg.hpp"
#include "common/math/sparse/csr.hpp"

namespace dh::math::sparse {

/// LDL^T factorization of an SPD tridiagonal matrix (bandwidth <= 1).
class TridiagonalCholesky final : public Preconditioner {
 public:
  /// Throws dh::Error when the matrix is wider than tridiagonal or a
  /// pivot is non-positive (not SPD / singular).
  explicit TridiagonalCholesky(const CsrMatrix& a);

  void solve(std::span<const double> b, std::vector<double>& x) const;
  void apply(std::span<const double> r,
             std::vector<double>& z) const override {
    solve(r, z);
  }

 private:
  std::vector<double> d_;  // positive pivots
  std::vector<double> l_;  // n-1 unit-lower multipliers
};

/// Cholesky factorization of an SPD band matrix, storing only the lower
/// band: L(i, i-k) for k in [0, band].
class BandedCholesky final : public Preconditioner {
 public:
  /// Throws dh::Error on a non-positive pivot (not SPD / singular, e.g. a
  /// conductance Laplacian with no pad path to VDD).
  explicit BandedCholesky(const CsrMatrix& a);

  void solve(std::span<const double> b, std::vector<double>& x) const;
  void apply(std::span<const double> r,
             std::vector<double>& z) const override {
    solve(r, z);
  }

  [[nodiscard]] std::size_t band() const { return band_; }

 private:
  [[nodiscard]] double& l(std::size_t i, std::size_t j) {
    return l_[i * (band_ + 1) + (i - j)];
  }
  [[nodiscard]] double l(std::size_t i, std::size_t j) const {
    return l_[i * (band_ + 1) + (i - j)];
  }

  std::size_t n_ = 0;
  std::size_t band_ = 0;
  std::vector<double> l_;  // (band_+1) x n_, row-major by matrix row
};

}  // namespace dh::math::sparse
