// Preconditioned conjugate gradients for the SPD systems in the healing
// stack (conductance Laplacians, thermal RC grids). The operator is a
// callback, not a matrix: the PDN drift-refinement path applies the *true*
// (aged) conductances matrix-free while preconditioning with a stale
// factorization, mirroring the dense cache's stale-LU iterative
// refinement.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace dh::math::sparse {

/// y = A x. `y` is sized by the callee (CsrMatrix::multiply matches).
using LinearOp =
    std::function<void(std::span<const double>, std::vector<double>&)>;

/// z = M^-1 r for an SPD approximation M of the system matrix.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r,
                     std::vector<double>& z) const = 0;
};

/// M = I (plain CG).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r,
             std::vector<double>& z) const override {
    z.assign(r.begin(), r.end());
  }
};

struct CgOptions {
  /// Converged when ||r||_2 <= rel_tolerance * ||b||_2 (plus a tiny
  /// absolute floor so b = 0 returns x = 0 immediately). 1e-13 sits just
  /// above the double-precision rounding floor of IC(0)-CG on the large
  /// (64x64+) grids — tight enough for 1e-10 sparse-vs-dense agreement,
  /// loose enough to be reachable instead of stagnating below target.
  double rel_tolerance = 1e-13;
  /// 0 = automatic: 10 n + 200. CG in exact arithmetic needs <= n.
  std::size_t max_iterations = 0;
  /// Abort early when the residual has not improved by at least 1% over
  /// this many iterations (rounding floor reached); the best iterate so
  /// far is returned. 0 disables. Systems that plateau here and stay
  /// above the caller's acceptance bound escalate to a direct rescue in
  /// SpdSolver rather than burning a longer window.
  std::size_t stagnation_window = 50;
};

struct CgResult {
  std::size_t iterations = 0;
  double residual_norm = 0.0;  // ||b - A x||_2 of the returned iterate
  bool converged = false;
};

/// Solves A x = b with preconditioner M, starting from the contents of
/// `x` (resize/zero it for a cold start). Returns the best iterate found.
/// Throws dh::Error when A or M is detected indefinite (p'Ap <= 0 or
/// r'M^-1r < 0 — the SPD contract is broken, e.g. an asymmetric or
/// negative-conductance assembly).
CgResult pcg_solve(const LinearOp& apply_a, std::span<const double> b,
                   const Preconditioner& m, std::vector<double>& x,
                   const CgOptions& opts = {});

}  // namespace dh::math::sparse
