// Incomplete Cholesky with zero fill-in, IC(0): L keeps exactly the lower
// triangle of A's sparsity pattern, so for 5-point-stencil grids the
// factor costs O(nnz) memory and its triangular solves O(nnz) time. Used
// as the PCG preconditioner for large PDN/thermal systems; the factor of
// a slightly *stale* matrix still preconditions the drifted operator,
// which is what makes the PDN drift-tolerance cache work sparsely.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/math/sparse/cg.hpp"
#include "common/math/sparse/csr.hpp"

namespace dh::math::sparse {

class IncompleteCholesky final : public Preconditioner {
 public:
  /// Factorizes the lower triangle of symmetric `a`. When a pivot comes
  /// out non-positive (IC(0) can break down even on SPD matrices), the
  /// factorization is retried with a progressively larger Manteuffel
  /// diagonal shift A + alpha diag(A); throws dh::Error once the shift
  /// cap is reached (matrix is indefinite or singular to working
  /// precision).
  explicit IncompleteCholesky(const CsrMatrix& a);

  /// z = (L L^T)^-1 r: one forward and one backward triangular sweep.
  void apply(std::span<const double> r,
             std::vector<double>& z) const override;

  /// Diagonal shift that was needed (0 for a clean factorization).
  [[nodiscard]] double shift() const { return shift_; }

 private:
  /// Attempts the factorization with the given shift; false on breakdown.
  [[nodiscard]] bool factorize(const CsrMatrix& a, double alpha);

  std::size_t n_ = 0;
  // L in CSR layout; each row's columns are ascending with the diagonal
  // last, so forward/backward sweeps are single passes.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  double shift_ = 0.0;
};

}  // namespace dh::math::sparse
