#include "common/math/sparse/spd_solver.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/fault/fault.hpp"
#include "common/math/sparse/direct.hpp"
#include "common/math/sparse/ic0.hpp"
#include "common/obs/metrics.hpp"

namespace dh::math::sparse {

namespace {

/// Lets a dense LU (the breakdown fallback) drive the same drift-
/// refinement PCG path as the sparse factors.
class DenseLuPreconditioner final : public Preconditioner {
 public:
  explicit DenseLuPreconditioner(const LuFactorization& lu) : lu_(lu) {}
  void apply(std::span<const double> r,
             std::vector<double>& z) const override {
    z = lu_.solve(r);
  }

 private:
  const LuFactorization& lu_;
};

}  // namespace

SpdSolver::~SpdSolver() = default;

const char* to_string(SpdMethod m) {
  switch (m) {
    case SpdMethod::kTridiagonal:
      return "tridiagonal";
    case SpdMethod::kBandedCholesky:
      return "banded_cholesky";
    case SpdMethod::kIc0Cg:
      return "ic0_cg";
    case SpdMethod::kDenseLu:
      return "dense_lu";
  }
  return "unknown";
}

SpdMethod SpdSolver::planned_method(std::size_t n, std::size_t bandwidth,
                                    const SpdSolverOptions& opts) {
  if (bandwidth <= 1) return SpdMethod::kTridiagonal;
  if (n <= opts.direct_max_dim) return SpdMethod::kBandedCholesky;
  return SpdMethod::kIc0Cg;
}

SpdSolver::SpdSolver(CsrMatrix a, SpdSolverOptions opts)
    : a_(std::move(a)), opts_(opts), method_(SpdMethod::kTridiagonal) {
  DH_REQUIRE(a_.rows() == a_.cols(), "SPD solver requires a square matrix");
  if (!a_.is_symmetric()) {
    throw Error{"SPD solver requires a symmetric matrix; assembly produced "
                "an asymmetric one (" +
                std::to_string(a_.rows()) + "x" + std::to_string(a_.cols()) +
                ", " + std::to_string(a_.nnz()) + " nonzeros)"};
  }
  method_ = planned_method(a_.rows(), a_.bandwidth(), opts_);
  try {
    if (fault::armed() && fault::should_inject("solver.factor_breakdown")) {
      throw Error{"injected fault at solver.factor_breakdown: simulated "
                  "sparse factorization breakdown"};
    }
    switch (method_) {
      case SpdMethod::kTridiagonal:
        factor_ = std::make_unique<TridiagonalCholesky>(a_);
        return;
      case SpdMethod::kBandedCholesky:
        factor_ = std::make_unique<BandedCholesky>(a_);
        return;
      default:
        factor_ = std::make_unique<IncompleteCholesky>(a_);
        return;
    }
  } catch (const Error&) {
    // Sparse factorization broke down: the matrix is symmetric but not
    // numerically positive definite. Dense LU still handles invertible
    // indefinite systems; a singular one throws its descriptive
    // zero-pivot error from here.
    method_ = SpdMethod::kDenseLu;
    dense_lu_ = std::make_unique<LuFactorization>(a_.to_dense());
    factor_ = std::make_unique<DenseLuPreconditioner>(*dense_lu_);
  }
}

void SpdSolver::record(const SpdSolveInfo& info) const {
  static obs::Histogram& iters =
      obs::registry().histogram("solver.cg_iters", "iters");
  static obs::Gauge& residual =
      obs::registry().gauge("solver.residual", "rel");
  if (info.method == SpdMethod::kIc0Cg || info.cg_iterations > 0) {
    iters.observe(static_cast<double>(info.cg_iterations));
  }
  residual.set(info.relative_residual);
}

std::vector<double> SpdSolver::solve(std::span<const double> b,
                                     SpdSolveInfo* info) const {
  DH_REQUIRE(b.size() == a_.rows(), "SPD solve dimension mismatch");
  SpdSolveInfo local;
  local.method = method_;
  const double b_norm = norm2(b);
  const auto relative = [b_norm](double r) {
    return b_norm > 0.0 ? r / b_norm : 0.0;
  };
  std::vector<double> x;
  bool solved = false;
  if (method_ == SpdMethod::kIc0Cg && !cg_rescue_ && fault::armed() &&
      fault::should_inject("solver.cg_stagnate")) {
    // Injected stagnation: skip the CG attempt entirely and escalate to
    // the rescue factorization, exactly as a real stall would.
    try {
      cg_rescue_ = std::make_unique<BandedCholesky>(a_);
    } catch (const Error&) {
      throw ConvergenceError{
          "injected fault at solver.cg_stagnate and the direct rescue "
          "factorization broke down — system is singular or severely "
          "ill-conditioned"};
    }
  }
  if (method_ == SpdMethod::kIc0Cg && !cg_rescue_) {
    const CgResult res = pcg_solve(
        [this](std::span<const double> v, std::vector<double>& y) {
          a_.multiply(v, y);
        },
        b, *factor_, x, opts_.cg);
    local.cg_iterations = res.iterations;
    local.residual_norm = res.residual_norm;
    // rel_tolerance is aspirational (CG's rounding floor rises with n);
    // accept_rel_residual is the contract.
    if (res.converged ||
        relative(res.residual_norm) <= opts_.accept_rel_residual) {
      solved = true;
    } else {
      // IC(0) can stop preconditioning well once aging spreads the
      // conductances across many decades (broken segments vs healthy
      // mesh). A banded Cholesky still factors the same matrix exactly
      // and stays cheap for mesh bandwidths, so swap to it instead of
      // failing; only a breakdown there (genuinely singular/indefinite
      // system) turns into an error.
      try {
        cg_rescue_ = std::make_unique<BandedCholesky>(a_);
      } catch (const Error&) {
        throw ConvergenceError{
            "IC(0)-preconditioned CG failed to reach tolerance after " +
            std::to_string(res.iterations) +
            " iterations (relative residual " +
            std::to_string(relative(res.residual_norm)) +
            ") and the direct rescue factorization broke down — system "
            "is singular or severely ill-conditioned"};
      }
    }
  }
  if (!solved) {
    const Preconditioner* direct = factor_.get();
    if (cg_rescue_) {
      cg_rescue_->solve(b, x);
      direct = cg_rescue_.get();
    } else if (dense_lu_) {
      x = dense_lu_->solve(b);
    } else {
      factor_->apply(b, x);
    }
    // Price the true residual (one O(nnz) product, cheap next to the
    // back-substitution it follows).
    std::vector<double> ax(x.size());
    a_.multiply(x, ax);
    for (std::size_t i = 0; i < ax.size(); ++i) ax[i] = b[i] - ax[i];
    local.residual_norm = norm2(ax);
    if (relative(local.residual_norm) > opts_.accept_rel_residual) {
      // Ill-conditioned but solvable systems leave a rounding-sized gap
      // a direct factor cannot close in one sweep; iterative refinement
      // (CG on A preconditioned by the factor, warm-started from x)
      // drives it to the double-precision floor. What no engine can fix
      // is a genuinely singular matrix whose pivots were rounding noise:
      // its residual stays orders of magnitude above the floor.
      CgOptions refine = opts_.cg;
      refine.rel_tolerance =
          std::max(refine.rel_tolerance, opts_.accept_rel_residual);
      const CgResult res = pcg_solve(
          [this](std::span<const double> v, std::vector<double>& y) {
            a_.multiply(v, y);
          },
          b, *direct, x, refine);
      local.cg_iterations += res.iterations;
      local.residual_norm = res.residual_norm;
      if (!res.converged &&
          relative(res.residual_norm) > opts_.reject_rel_residual) {
        throw Error{std::string{to_string(method_)} +
                    " solve stalled at relative residual " +
                    std::to_string(relative(res.residual_norm)) +
                    " even with refinement — matrix is singular (zero "
                    "pivot within rounding) or numerically unsolvable"};
      }
    }
  }
  local.relative_residual = relative(local.residual_norm);
  record(local);
  if (info != nullptr) *info = local;
  return x;
}

void SpdSolver::build_cg_rescue() const {
  if (cg_rescue_ || method_ != SpdMethod::kIc0Cg) return;
  cg_rescue_ = std::make_unique<BandedCholesky>(a_);
}

bool SpdSolver::solve_drifted(const LinearOp& true_op,
                              std::span<const double> b,
                              std::vector<double>& x,
                              SpdSolveInfo* info) const {
  DH_REQUIRE(b.size() == a_.rows(), "SPD solve dimension mismatch");
  SpdSolveInfo local;
  local.method = method_;
  x.clear();
  if (fault::armed() && fault::should_inject("solver.cg_stagnate")) {
    // Injected stagnation of the stale-factor refinement: report failure
    // so the caller takes its refactorize fallback.
    record(local);
    if (info != nullptr) *info = local;
    return false;
  }
  const Preconditioner& pre =
      cg_rescue_ ? static_cast<const Preconditioner&>(*cg_rescue_)
                 : *factor_;
  const CgResult res = pcg_solve(true_op, b, pre, x, opts_.cg);
  local.cg_iterations = res.iterations;
  local.residual_norm = res.residual_norm;
  const double b_norm = norm2(b);
  local.relative_residual =
      b_norm > 0.0 ? local.residual_norm / b_norm : 0.0;
  record(local);
  if (info != nullptr) *info = local;
  // Same acceptance bound as solve(): a stale-factor refinement that
  // stagnates at its rounding floor but within the contract is a hit,
  // not a reason to refactorize every step.
  return res.converged ||
         local.relative_residual <= opts_.accept_rel_residual;
}

}  // namespace dh::math::sparse
