#include "common/math/sparse/csr.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace dh::math::sparse {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  DH_REQUIRE(row_ptr_.size() == rows_ + 1, "CSR row_ptr must have rows+1 entries");
  DH_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == col_idx_.size(),
             "CSR row_ptr must span [0, nnz]");
  DH_REQUIRE(col_idx_.size() == values_.size(),
             "CSR col_idx/values size mismatch");
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  DH_REQUIRE(r < rows_ && c < cols_, "CSR index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::vector<double>& y) const {
  DH_REQUIRE(x.size() == cols_, "CSR matrix-vector dimension mismatch");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y;
  multiply(x, y);
  return y;
}

std::size_t CsrMatrix::bandwidth() const {
  std::size_t band = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      band = std::max(band, r > c ? r - c : c - r);
    }
  }
  return band;
}

bool CsrMatrix::is_symmetric() const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (c == r) continue;
      if (at(c, r) != values_[k]) return false;
    }
  }
  return true;
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m(r, col_idx_[k]) += values_[k];
    }
  }
  return m;
}

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols,
                       std::size_t reserve_per_row)
    : rows_(rows), cols_(cols), row_entries_(rows) {
  DH_REQUIRE(rows >= 1 && cols >= 1, "CSR dimensions must be positive");
  for (auto& row : row_entries_) row.reserve(reserve_per_row);
}

void CsrBuilder::add(std::size_t r, std::size_t c, double v) {
  DH_REQUIRE(r < rows_ && c < cols_, "CSR builder index out of range");
  row_entries_[r].push_back({c, v});
}

void CsrBuilder::add_edge(std::size_t a, std::size_t b, double g) {
  DH_REQUIRE(a != b, "edge endpoints must differ");
  add(a, a, g);
  add(b, b, g);
  add(a, b, -g);
  add(b, a, -g);
}

CsrMatrix CsrBuilder::build() {
  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  std::size_t nnz_bound = 0;
  for (const auto& row : row_entries_) nnz_bound += row.size();
  col_idx.reserve(nnz_bound);
  values.reserve(nnz_bound);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto& row = row_entries_[r];
    std::sort(row.begin(), row.end(),
              [](const Entry& x, const Entry& y) { return x.col < y.col; });
    std::size_t i = 0;
    while (i < row.size()) {
      const std::size_t c = row[i].col;
      double acc = 0.0;
      while (i < row.size() && row[i].col == c) acc += row[i++].v;
      col_idx.push_back(c);
      values.push_back(acc);
    }
    row_ptr[r + 1] = col_idx.size();
    row.clear();
  }
  return CsrMatrix{rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values)};
}

}  // namespace dh::math::sparse
