// Compressed-sparse-row matrix for the 5-point-stencil systems the
// healing stack solves repeatedly: PDN conductance meshes and thermal RC
// Laplacians carry ~5 nonzeros per row, so dense storage (O(n^2)) and LU
// (O(n^3)) stop scaling long before the grid sizes the system-level
// experiments want. CSR keeps assembly, matrix-vector products, and the
// factorizations in src/common/math/sparse/ at O(nnz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/math/linalg.hpp"

namespace dh::math::sparse {

/// Immutable CSR matrix of doubles. Column indices are sorted and unique
/// within each row (CsrBuilder guarantees this).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  /// Mutable values with the fixed sparsity pattern (e.g. bumping the
  /// diagonal for a backward-Euler shift without re-assembly).
  [[nodiscard]] std::vector<double>& values() { return values_; }

  /// Entry (r, c); 0 when outside the pattern. Binary search within the
  /// row — for tests and assembly-time queries, not inner loops.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// y = A x (y is resized; no allocation when already n long).
  void multiply(std::span<const double> x, std::vector<double>& y) const;
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Max |r - c| over stored entries (0 for diagonal/empty).
  [[nodiscard]] std::size_t bandwidth() const;

  /// Exact structural and value symmetry (A(r,c) == A(c,r) bit-for-bit;
  /// the assembly paths add both halves from the same expression).
  [[nodiscard]] bool is_symmetric() const;

  /// Dense copy, for the last-resort dense fallback and for tests.
  [[nodiscard]] Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // rows_ + 1 entries
  std::vector<std::size_t> col_idx_;  // nnz entries, sorted per row
  std::vector<double> values_;        // nnz entries
};

/// Accumulating builder: add() duplicates sum, build() sorts each row and
/// merges. Stencil-aware helpers cover the two assembly patterns in the
/// repo (graph Laplacians from two-terminal conductances, plus diagonal
/// grounding terms), so a grid assembles in one pass over its segments.
class CsrBuilder {
 public:
  CsrBuilder(std::size_t rows, std::size_t cols,
             std::size_t reserve_per_row = 6);

  /// Accumulate v into (r, c).
  void add(std::size_t r, std::size_t c, double v);

  /// Two-terminal conductance between nodes a and b: adds g to both
  /// diagonals and -g to both off-diagonals (keeps the matrix symmetric
  /// by construction).
  void add_edge(std::size_t a, std::size_t b, double g);

  /// Diagonal grounding term (pad conductance, vertical conductance,
  /// backward-Euler C/dt shift).
  void add_diagonal(std::size_t i, double g) { add(i, i, g); }

  /// Sort + merge into an immutable CSR. The builder is left empty.
  [[nodiscard]] CsrMatrix build();

 private:
  struct Entry {
    std::size_t col;
    double v;
  };
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<Entry>> row_entries_;
};

}  // namespace dh::math::sparse
