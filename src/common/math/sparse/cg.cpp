#include "common/math/sparse/cg.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/math/linalg.hpp"

namespace dh::math::sparse {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

CgResult pcg_solve(const LinearOp& apply_a, std::span<const double> b,
                   const Preconditioner& m, std::vector<double>& x,
                   const CgOptions& opts) {
  const std::size_t n = b.size();
  x.resize(n, 0.0);
  CgResult result;

  const double b_norm = norm2(b);
  // Absolute floor keeps the b = 0 case (and denormal-range b) exact.
  const double target = opts.rel_tolerance * b_norm + 1e-300;
  const std::size_t max_iter =
      opts.max_iterations > 0 ? opts.max_iterations : 10 * n + 200;

  std::vector<double> r(n), z, p(n), ap;
  apply_a(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  double r_norm = norm2(r);
  std::vector<double> best_x = x;
  double best_norm = r_norm;
  std::size_t last_gain_iter = 0;

  if (r_norm > target) {
    m.apply(r, z);
    double rz = dot(r, z);
    if (rz < 0.0) {
      throw Error{"PCG: preconditioner produced r'M^-1r = " +
                  std::to_string(rz) + " < 0 — preconditioner is not SPD"};
    }
    p.assign(z.begin(), z.end());
    for (std::size_t it = 1; it <= max_iter; ++it) {
      apply_a(p, ap);
      const double p_ap = dot(p, ap);
      if (!(p_ap > 0.0)) {
        // A genuine SPD operator gives p'Ap > 0 for every nonzero search
        // direction; anything else means the assembly broke the contract.
        throw Error{"PCG: curvature p'Ap = " + std::to_string(p_ap) +
                    " at iteration " + std::to_string(it) +
                    " — operator is not positive definite"};
      }
      const double alpha = rz / p_ap;
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i];
      for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
      result.iterations = it;
      r_norm = norm2(r);
      if (r_norm < best_norm) {
        if (r_norm < 0.99 * best_norm) last_gain_iter = it;
        best_norm = r_norm;
        best_x = x;
      }
      if (r_norm <= target) break;
      if (opts.stagnation_window > 0 &&
          it - last_gain_iter >= opts.stagnation_window) {
        break;  // rounding floor: return the best iterate found
      }
      m.apply(r, z);
      const double rz_new = dot(r, z);
      if (rz_new < 0.0) {
        throw Error{"PCG: preconditioner produced r'M^-1r = " +
                    std::to_string(rz_new) + " < 0 at iteration " +
                    std::to_string(it) + " — preconditioner is not SPD"};
      }
      const double beta = rz_new / rz;
      rz = rz_new;
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
  }

  x = std::move(best_x);
  // Recurred residuals drift from the true one near the rounding floor;
  // report (and judge convergence by) the actual ||b - A x||.
  apply_a(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  result.residual_norm = norm2(r);
  result.converged = result.residual_norm <= std::max(target, 1e-300);
  return result;
}

}  // namespace dh::math::sparse
