#include "common/math/sparse/direct.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace dh::math::sparse {

namespace {

[[noreturn]] void raise_not_spd(const char* factor, std::size_t i,
                                std::size_t n, double pivot) {
  throw Error{std::string{factor} + ": pivot " + std::to_string(pivot) +
              " at row " + std::to_string(i) + " of " + std::to_string(n) +
              " is not positive — matrix is singular or not positive "
              "definite"};
}

/// Smallest pivot accepted when factoring `a`. Relative to the largest
/// diagonal entry so that an exactly-singular system (e.g. an ungrounded
/// Laplacian, whose final pivot is pure rounding noise) is rejected
/// instead of producing a garbage factor, while merely ill-conditioned
/// but solvable systems pass.
double pivot_floor(const CsrMatrix& a) {
  double max_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    max_diag = std::max(max_diag, std::abs(a.at(i, i)));
  }
  const double rel = static_cast<double>(a.rows()) *
                     std::numeric_limits<double>::epsilon() * max_diag;
  return std::max(rel, 1e-300);
}

}  // namespace

TridiagonalCholesky::TridiagonalCholesky(const CsrMatrix& a) {
  DH_REQUIRE(a.rows() == a.cols(),
             "tridiagonal factorization requires a square matrix");
  DH_REQUIRE(a.bandwidth() <= 1,
             "tridiagonal factorization requires bandwidth <= 1");
  const std::size_t n = a.rows();
  d_.resize(n);
  l_.resize(n > 0 ? n - 1 : 0);
  const double floor = pivot_floor(a);
  double prev_d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double di = a.at(i, i);
    if (i > 0) {
      const double e = a.at(i, i - 1);
      const double li = e / prev_d;
      l_[i - 1] = li;
      di -= li * e;
    }
    if (!(di > floor) || !std::isfinite(di)) {
      raise_not_spd("tridiagonal LDL^T", i, n, di);
    }
    d_[i] = di;
    prev_d = di;
  }
}

void TridiagonalCholesky::solve(std::span<const double> b,
                                std::vector<double>& x) const {
  const std::size_t n = d_.size();
  DH_REQUIRE(b.size() == n, "tridiagonal solve dimension mismatch");
  x.assign(b.begin(), b.end());
  for (std::size_t i = 1; i < n; ++i) x[i] -= l_[i - 1] * x[i - 1];
  for (std::size_t i = 0; i < n; ++i) x[i] /= d_[i];
  for (std::size_t i = n - 1; i-- > 0;) x[i] -= l_[i] * x[i + 1];
}

BandedCholesky::BandedCholesky(const CsrMatrix& a)
    : n_(a.rows()), band_(a.bandwidth()) {
  DH_REQUIRE(a.rows() == a.cols(),
             "banded Cholesky requires a square matrix");
  l_.assign(n_ * (band_ + 1), 0.0);
  // Seed the band with A's lower triangle, then factor in place.
  const auto& ptr = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = ptr[i]; k < ptr[i + 1]; ++k) {
      if (col[k] <= i) l(i, col[k]) = val[k];
    }
  }
  const double floor = pivot_floor(a);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j0 = i > band_ ? i - band_ : 0;
    for (std::size_t j = j0; j < i; ++j) {
      double acc = l(i, j);
      const std::size_t k0 = std::max(j0, j > band_ ? j - band_ : 0);
      for (std::size_t k = k0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
    double acc = l(i, i);
    for (std::size_t k = j0; k < i; ++k) acc -= l(i, k) * l(i, k);
    if (!(acc > floor) || !std::isfinite(acc)) {
      raise_not_spd("banded Cholesky", i, n_, acc);
    }
    l(i, i) = std::sqrt(acc);
  }
}

void BandedCholesky::solve(std::span<const double> b,
                           std::vector<double>& x) const {
  DH_REQUIRE(b.size() == n_, "banded solve dimension mismatch");
  x.assign(b.begin(), b.end());
  // L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = x[i];
    const std::size_t j0 = i > band_ ? i - band_ : 0;
    for (std::size_t j = j0; j < i; ++j) acc -= l(i, j) * x[j];
    x[i] = acc / l(i, i);
  }
  // L^T x = y, scattered row-wise (row access only).
  for (std::size_t i = n_; i-- > 0;) {
    const double xi = x[i] / l(i, i);
    x[i] = xi;
    const std::size_t j0 = i > band_ ? i - band_ : 0;
    for (std::size_t j = j0; j < i; ++j) x[j] -= l(i, j) * xi;
  }
}

}  // namespace dh::math::sparse
