// Facade over the sparse engine: picks the right factorization for an
// SPD system from its structure and exposes one solve() plus the
// stale-factor drift-refinement solve the PDN cache contract needs.
//
// Method selection (see DESIGN.md "Solver engine"):
//   bandwidth <= 1        -> tridiagonal LDL^T          (1-D chains)
//   n <= direct_max_dim   -> banded Cholesky            (small meshes)
//   otherwise             -> IC(0)-preconditioned CG    (large meshes)
//   factorization breakdown (symmetric but numerically indefinite)
//                         -> dense LU fallback, recorded as kDenseLu so
//                            guard tests can detect a silent regression.
// Asymmetric input throws dh::Error up front (the SPD contract is
// structural); a singular matrix throws from whichever factorization
// runs, with a descriptive pivot message.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/math/linalg.hpp"
#include "common/math/sparse/cg.hpp"
#include "common/math/sparse/csr.hpp"

namespace dh::math::sparse {

class BandedCholesky;

enum class SpdMethod { kTridiagonal, kBandedCholesky, kIc0Cg, kDenseLu };

[[nodiscard]] const char* to_string(SpdMethod m);

struct SpdSolverOptions {
  /// Largest dimension still factored directly (banded Cholesky). Above
  /// this, IC(0)+CG wins: O(nnz) per iteration vs O(n b^2) to factor.
  std::size_t direct_max_dim = 512;
  CgOptions cg;
  /// Quality target. A CG solve that stagnates above `cg.rel_tolerance`
  /// (its double-precision floor rises with grid size) is still accepted
  /// outright when its true relative residual is at or below this bound;
  /// above it, the engine escalates — direct rescue factorization for
  /// CG, factor-preconditioned iterative refinement for direct solves —
  /// before judging again.
  double accept_rel_residual = 1e-10;
  /// Rejection bound after escalation. Severely ill-conditioned but
  /// solvable systems (aged grids whose broken segments spread the
  /// conductances across ~12 decades) bottom out around 1e-7 relative —
  /// the double-precision floor any engine shares, dense LU included —
  /// and are accepted with the achieved residual recorded in the
  /// `solver.residual` gauge. A genuinely singular matrix (pivots made
  /// of rounding noise) stalls at O(1) and throws.
  double reject_rel_residual = 1e-4;
};

/// Per-solve observability: which engine ran, how hard CG worked, and the
/// true residual of the returned solution.
struct SpdSolveInfo {
  SpdMethod method = SpdMethod::kTridiagonal;
  std::size_t cg_iterations = 0;
  double residual_norm = 0.0;   // ||b - A x||_2
  double relative_residual = 0.0;  // residual_norm / ||b||_2 (0 for b=0)
};

class SpdSolver {
 public:
  explicit SpdSolver(CsrMatrix a, SpdSolverOptions opts = {});
  ~SpdSolver();  // = default in the .cpp, where BandedCholesky is complete

  /// Solves A x = b with the factorized engine. Direct methods
  /// back-substitute; kIc0Cg runs preconditioned CG on A itself. Records
  /// into the `solver.cg_iters` histogram / `solver.residual` gauge.
  /// Throws dh::Error (with iteration diagnostics) if CG cannot reach
  /// tolerance — on an SPD system that means singular/ill-posed input.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b,
                                          SpdSolveInfo* info = nullptr) const;

  /// Solves `true_op x = b` where true_op is a *drifted* neighbour of the
  /// factorized matrix (the PDN cache's stale-factor mode): CG on the
  /// true operator, preconditioned by this factor. Returns false (leaving
  /// `x` at the best iterate) instead of throwing when CG stalls, so the
  /// caller can refactorize — mirroring the dense cache's refinement
  /// fallback.
  [[nodiscard]] bool solve_drifted(const LinearOp& true_op,
                                   std::span<const double> b,
                                   std::vector<double>& x,
                                   SpdSolveInfo* info = nullptr) const;

  [[nodiscard]] SpdMethod method() const { return method_; }
  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  [[nodiscard]] std::size_t dim() const { return a_.rows(); }

  /// Which engine a system with this structure would get (no assembly or
  /// factorization) — lets callers and guard tests reason about the plan.
  [[nodiscard]] static SpdMethod planned_method(
      std::size_t n, std::size_t bandwidth,
      const SpdSolverOptions& opts = {});

  /// Whether the lazy CG rescue factorization has been built. Part of the
  /// checkpoint contract: a restored solver must take the same solve path
  /// (rescued direct vs IC(0)-CG) as the original, or results drift at
  /// the rounding level.
  [[nodiscard]] bool cg_rescue_built() const { return cg_rescue_ != nullptr; }

  /// Force-build the rescue factorization (checkpoint restore). No-op on
  /// non-CG engines or when already built.
  void build_cg_rescue() const;

 private:
  void record(const SpdSolveInfo& info) const;

  CsrMatrix a_;
  SpdSolverOptions opts_;
  SpdMethod method_;
  std::unique_ptr<Preconditioner> factor_;     // tridiag / banded / IC(0)
  std::unique_ptr<LuFactorization> dense_lu_;  // breakdown fallback only
  /// Built lazily the first time IC(0)-CG stagnates above the acceptance
  /// bound (EM aging can spread conductances across enough decades that
  /// IC(0) stops preconditioning well); later solves go direct through
  /// it. Logically an acceleration-structure swap, hence mutable.
  mutable std::unique_ptr<BandedCholesky> cg_rescue_;
};

}  // namespace dh::math::sparse
