#include "common/math/ode.hpp"

#include "common/error.hpp"

namespace dh::math {

void rk4_step(const OdeRhs& f, double t, double dt, std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

void rk4_integrate(const OdeRhs& f, double t0, double t1, int steps,
                   std::vector<double>& y) {
  DH_REQUIRE(steps > 0, "RK4 needs a positive step count");
  const double dt = (t1 - t0) / steps;
  double t = t0;
  for (int s = 0; s < steps; ++s) {
    rk4_step(f, t, dt, y);
    t += dt;
  }
}

double rk4_scalar(const std::function<double(double, double)>& f, double t0,
                  double t1, int steps, double y0) {
  std::vector<double> y{y0};
  const OdeRhs rhs = [&f](double t, std::span<const double> yy,
                          std::span<double> dydt) {
    dydt[0] = f(t, yy[0]);
  };
  rk4_integrate(rhs, t0, t1, steps, y);
  return y[0];
}

}  // namespace dh::math
