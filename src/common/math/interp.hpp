// Piecewise-linear interpolation and quadrature on tabulated functions —
// used by the trap-density calibration and the Korhonen grid.
#pragma once

#include <span>
#include <vector>

namespace dh::math {

/// Linear interpolation of (xs, ys) at x, clamped to the table range.
/// xs must be strictly increasing.
[[nodiscard]] double interp_linear(std::span<const double> xs,
                                   std::span<const double> ys, double x);

/// Trapezoidal integral of tabulated ys over xs.
[[nodiscard]] double trapezoid(std::span<const double> xs,
                               std::span<const double> ys);

/// Uniformly spaced grid of n points on [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t n);

/// Geometrically stretched grid from x0 with first cell `dx0`, growth
/// ratio `ratio`, covering [x0, x1]; used for the EM solver where all the
/// action is within a few diffusion lengths of the cathode. Returns node
/// coordinates including both endpoints.
[[nodiscard]] std::vector<double> stretched_grid(double x0, double x1,
                                                 double dx0, double ratio);

}  // namespace dh::math
