#include "common/math/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dh::math {

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  DH_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
             "interpolation table needs >= 2 matched points");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double w = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] * (1.0 - w) + ys[hi] * w;
}

double trapezoid(std::span<const double> xs, std::span<const double> ys) {
  DH_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
             "quadrature table needs >= 2 matched points");
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    acc += 0.5 * (ys[i] + ys[i + 1]) * (xs[i + 1] - xs[i]);
  }
  return acc;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  DH_REQUIRE(n >= 2, "linspace needs >= 2 points");
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return xs;
}

std::vector<double> stretched_grid(double x0, double x1, double dx0,
                                   double ratio) {
  DH_REQUIRE(x1 > x0, "grid interval must be non-empty");
  DH_REQUIRE(dx0 > 0.0 && ratio >= 1.0, "grid stretching parameters invalid");
  std::vector<double> xs{x0};
  double dx = dx0;
  double x = x0;
  while (x + dx < x1) {
    x += dx;
    xs.push_back(x);
    dx *= ratio;
  }
  if (x1 - xs.back() < 0.25 * (xs.back() - xs[xs.size() - 2]) &&
      xs.size() > 2) {
    xs.back() = x1;  // merge a sliver cell into its neighbour
  } else {
    xs.push_back(x1);
  }
  return xs;
}

}  // namespace dh::math
