#include "common/math/roots.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dh::math {

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  DH_REQUIRE(flo * fhi <= 0.0, "bisection requires a sign change");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || hi - lo < tol) return mid;
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  throw ConvergenceError("bisection failed to converge");
}

double brent_root(const std::function<double(double)>& f, double lo,
                  double hi, double tol, int max_iter) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  DH_REQUIRE(fa * fb <= 0.0, "Brent's method requires a sign change");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::abs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) return b;
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::abs(d) > tol1) {
      b += d;
    } else {
      b += xm > 0.0 ? tol1 : -tol1;
    }
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw ConvergenceError("Brent's method failed to converge");
}

double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double tol, int max_iter) {
  DH_REQUIRE(hi > lo, "minimization interval must be non-empty");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace dh::math
