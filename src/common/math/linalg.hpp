// Dense linear algebra kernels used by the MNA circuit solver, the
// thermal grid, and the PDN IR-drop solver, plus the Thomas algorithm used
// by the Korhonen EM PDE integrator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dh::math {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void fill(double v);

  /// y = A x.
  [[nodiscard]] std::vector<double> multiply(
      std::span<const double> x) const;

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (in place), reusable for
/// repeated solves against the same matrix (e.g. linear circuits, thermal
/// grids with fixed conductances).
class LuFactorization {
 public:
  /// Factorizes a copy of `a`. Throws dh::Error if `a` is singular to
  /// working precision.
  explicit LuFactorization(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// One-shot dense solve: A x = b.
[[nodiscard]] std::vector<double> solve_dense(const Matrix& a,
                                              std::span<const double> b);

/// Thomas algorithm for a tridiagonal system. `lower` has n-1 entries
/// (sub-diagonal), `diag` n entries, `upper` n-1 entries. Overwrites
/// nothing; returns the solution.
[[nodiscard]] std::vector<double> solve_tridiagonal(
    std::span<const double> lower, std::span<const double> diag,
    std::span<const double> upper, std::span<const double> rhs);

/// Caller-owned scratch for the in-place Thomas solve below, so repeated
/// solves (e.g. every backward-Euler substep of every Korhonen wire)
/// allocate nothing after the first call.
struct TridiagonalWorkspace {
  std::vector<double> c_prime;
  std::vector<double> d_prime;
};

/// In-place Thomas solve writing the solution into `x` (n entries).
/// `x` may alias `rhs`; the band spans are read-only. Scratch comes from
/// `ws`, grown on first use and reused afterwards.
void solve_tridiagonal(std::span<const double> lower,
                       std::span<const double> diag,
                       std::span<const double> upper,
                       std::span<const double> rhs, std::span<double> x,
                       TridiagonalWorkspace& ws);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> v);

/// Infinity norm.
[[nodiscard]] double norm_inf(std::span<const double> v);

}  // namespace dh::math
