// A simple (time, value) series used to record every simulated waveform:
// ring-oscillator frequency under BTI, wire resistance under EM, node
// voltages in the circuit simulator, core fmax in the system simulator.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dh {

namespace ckpt {
class Serializer;
class Deserializer;
}  // namespace ckpt

class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  /// Append a sample; time must be non-decreasing.
  void append(Seconds t, double value);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }

  [[nodiscard]] Seconds time_at(std::size_t i) const;
  [[nodiscard]] double value_at(std::size_t i) const;

  [[nodiscard]] Seconds front_time() const;
  [[nodiscard]] Seconds back_time() const;
  [[nodiscard]] double front_value() const;
  [[nodiscard]] double back_value() const;

  /// Linear interpolation at time t (clamped to the series range).
  [[nodiscard]] double sample(Seconds t) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

  /// First time the series crosses `threshold` going upward (linear
  /// interpolation between samples); returns negative Seconds if never.
  [[nodiscard]] Seconds first_upcross(double threshold) const;

  /// Resample onto a uniform grid of n points across the series range.
  [[nodiscard]] TimeSeries resampled(std::size_t n) const;

  /// Series with every value multiplied by `factor`.
  [[nodiscard]] TimeSeries scaled(double factor) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& unit() const { return unit_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<double>& raw_times() const { return times_; }
  [[nodiscard]] const std::vector<double>& raw_values() const {
    return values_;
  }

  /// Checkpoint support: bit-exact snapshot of name, unit, and samples.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

 private:
  std::string name_;
  std::string unit_;
  std::vector<double> times_;   // seconds
  std::vector<double> values_;
};

/// Write one or more series (sharing no time base; each gets its own
/// time column) as CSV: t_<name>,<name>,t_<name2>,<name2>,...
void write_csv(std::ostream& os, const std::vector<TimeSeries>& series);

/// Render aligned series values at shared sample times for terminal
/// output; used by the figure-reproduction benches.
void print_series_table(std::ostream& os, const std::vector<TimeSeries>& series,
                        std::size_t rows);

}  // namespace dh
