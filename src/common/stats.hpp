// Descriptive statistics + lognormal lifetime fitting (Black's-equation EM
// TTF populations are classically lognormal).
#pragma once

#include <span>
#include <vector>

namespace dh::stats {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // sample (n-1)
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);

/// p in [0,1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

struct LognormalFit {
  double mu = 0.0;     // mean of ln(x)
  double sigma = 0.0;  // stddev of ln(x)
  /// Median lifetime exp(mu).
  [[nodiscard]] double t50() const;
  /// Quantile t(p): time by which fraction p of the population has failed.
  [[nodiscard]] double quantile(double p) const;
};

/// Fits a lognormal by the method of moments on ln(x). All samples must be
/// positive.
[[nodiscard]] LognormalFit fit_lognormal(std::span<const double> samples);

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9
/// relative accuracy), exposed for the lifetime quantile math.
[[nodiscard]] double inverse_normal_cdf(double p);

}  // namespace dh::stats
