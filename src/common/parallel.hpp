// Deterministic parallel-execution layer.
//
// A small fixed-size thread pool (no work stealing, one job at a time)
// exposing `parallel_for(n, fn)` and `parallel_map(n, fn)`. Tasks are
// indexed 0..n-1 and claimed dynamically via an atomic counter, but each
// index is executed exactly once and results are stored by index, so the
// *result* of a parallel_map is bit-identical regardless of the thread
// count or scheduling order. Stochastic tasks must derive their random
// stream from the task index (see Rng::stream in common/rng.hpp), never
// from a shared Rng drawn inside the task body — that is the repo-wide
// seed-forking discipline that keeps population statistics reproducible.
//
// The global pool is sized from the DH_THREADS environment variable when
// set (clamped to [1, 256]), else from std::thread::hardware_concurrency.
// `set_global_thread_count` rebuilds the global pool — call it only from
// a single thread with no parallel work in flight (tests/benchmarks).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dh {

class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// 0 means `default_thread_count()`. A pool of 1 runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a job (workers + caller).
  [[nodiscard]] std::size_t thread_count() const {
    return workers_.size() + 1;
  }

  /// Invoke fn(i) for every i in [0, n), distributing indices across the
  /// pool. Blocks until all indices complete. The first exception thrown
  /// by any task is rethrown on the caller after the job drains.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Map i -> fn(i) into a vector ordered by index. The result type must
  /// be default-constructible (slots are pre-allocated, filled in place).
  template <typename Fn>
  [[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using R = std::decay_t<decltype(fn(std::size_t{0}))>;
    static_assert(!std::is_same_v<R, bool>,
                  "parallel_map<bool> would race on vector<bool> bits; "
                  "map to char/int instead");
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// DH_THREADS when set, else hardware_concurrency (min 1).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};  // next unclaimed index
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_loop();
  /// Claims and runs indices until the job drains; returns how many this
  /// thread executed (feeds the pool.tasks.* telemetry split).
  static std::size_t run_indices(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a job
  std::condition_variable done_cv_;   // caller waits for drain
  Job* job_ = nullptr;                // current job (guarded by mu_)
  std::size_t active_workers_ = 0;    // workers inside the current job
  bool stop_ = false;
};

/// Process-wide pool used by the library's parallel call sites.
[[nodiscard]] ThreadPool& global_pool();

/// Rebuild the global pool with `threads` total threads (0 = default).
/// Not safe while parallel work is in flight.
void set_global_thread_count(std::size_t threads);

/// Thread count of the global pool (creating it on first use).
[[nodiscard]] std::size_t global_thread_count();

/// parallel_for over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallel_map over the global pool.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn) {
  return global_pool().parallel_map(n, std::forward<Fn>(fn));
}

}  // namespace dh
