#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dh::stats {

double mean(std::span<const double> xs) {
  DH_REQUIRE(!xs.empty(), "mean of empty sample");
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  DH_REQUIRE(xs.size() >= 2, "sample variance needs >= 2 points");
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double percentile(std::span<const double> xs, double p) {
  DH_REQUIRE(!xs.empty(), "percentile of empty sample");
  DH_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::ranges::sort(sorted);
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double w = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - w) + sorted[hi] * w;
}

double LognormalFit::t50() const { return std::exp(mu); }

double LognormalFit::quantile(double p) const {
  return std::exp(mu + sigma * inverse_normal_cdf(p));
}

LognormalFit fit_lognormal(std::span<const double> samples) {
  DH_REQUIRE(samples.size() >= 2, "lognormal fit needs >= 2 samples");
  std::vector<double> logs;
  logs.reserve(samples.size());
  for (const double s : samples) {
    DH_REQUIRE(s > 0.0, "lognormal samples must be positive");
    logs.push_back(std::log(s));
  }
  LognormalFit fit;
  fit.mu = mean(logs);
  fit.sigma = stddev(logs);
  return fit;
}

double inverse_normal_cdf(double p) {
  DH_REQUIRE(p > 0.0 && p < 1.0, "inverse normal CDF needs p in (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q;
  double r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace dh::stats
