// Physical constants used across the wearout models.
#pragma once

namespace dh::constants {

/// Boltzmann constant in eV/K (the natural unit for activation energies).
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Boltzmann constant in J/K.
inline constexpr double kBoltzmannJ = 1.380649e-23;

/// Elementary charge in C.
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Atomic volume of copper in m^3 (FCC lattice, a = 3.615 Å).
inline constexpr double kCopperAtomicVolume = 1.182e-29;

/// Electrical resistivity of copper at 20 °C in Ohm·m (thin-film value,
/// slightly above bulk because of surface/grain-boundary scattering).
inline constexpr double kCopperResistivity20C = 2.0e-8;

/// Temperature coefficient of resistance for copper, 1/K, referenced to
/// 20 °C.
inline constexpr double kCopperTcr = 3.93e-3;

/// Effective bulk modulus for confined damascene copper lines, Pa.
inline constexpr double kCopperEffectiveModulus = 1.0e11;

}  // namespace dh::constants
