// Strong types for physical quantities.
//
// Every quantity that crosses a public API boundary is wrapped in a
// dimension-tagged type so that a Kelvin can never be passed where a
// Celsius is expected and a current density can never be confused with a
// current. Internal numerical kernels unwrap to double via .value().
#pragma once

#include <cmath>
#include <compare>

namespace dh {

/// Dimension-tagged scalar. Tag types are empty structs; one alias per
/// physical quantity below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.v_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.v_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{a.v_ * s};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.v_ / s};
  }
  /// Ratio of two same-dimension quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double v_ = 0.0;
};

struct SecondsTag {};
struct KelvinTag {};
struct CelsiusTag {};
struct VoltsTag {};
struct AmpsTag {};
struct OhmsTag {};
struct WattsTag {};
struct MetersTag {};
struct AmpsPerM2Tag {};  // current density
struct PascalsTag {};    // mechanical (EM hydrostatic) stress
struct HertzTag {};
struct FaradsTag {};
struct ElectronVoltsTag {};  // activation energies

using Seconds = Quantity<SecondsTag>;
using Kelvin = Quantity<KelvinTag>;
using Celsius = Quantity<CelsiusTag>;
using Volts = Quantity<VoltsTag>;
using Amps = Quantity<AmpsTag>;
using Ohms = Quantity<OhmsTag>;
using Watts = Quantity<WattsTag>;
using Meters = Quantity<MetersTag>;
using AmpsPerM2 = Quantity<AmpsPerM2Tag>;
using Pascals = Quantity<PascalsTag>;
using Hertz = Quantity<HertzTag>;
using Farads = Quantity<FaradsTag>;
using ElectronVolts = Quantity<ElectronVoltsTag>;

// ---- Temperature conversions -------------------------------------------

inline constexpr double kCelsiusOffset = 273.15;

[[nodiscard]] constexpr Kelvin to_kelvin(Celsius c) {
  return Kelvin{c.value() + kCelsiusOffset};
}
[[nodiscard]] constexpr Celsius to_celsius(Kelvin k) {
  return Celsius{k.value() - kCelsiusOffset};
}

// ---- Duration helpers ----------------------------------------------------

[[nodiscard]] constexpr Seconds seconds(double s) { return Seconds{s}; }
[[nodiscard]] constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }
[[nodiscard]] constexpr Seconds hours(double h) { return Seconds{h * 3600.0}; }
[[nodiscard]] constexpr Seconds days(double d) { return Seconds{d * 86400.0}; }
[[nodiscard]] constexpr Seconds years(double y) {
  return Seconds{y * 365.25 * 86400.0};
}

[[nodiscard]] constexpr double in_minutes(Seconds s) {
  return s.value() / 60.0;
}
[[nodiscard]] constexpr double in_hours(Seconds s) {
  return s.value() / 3600.0;
}
[[nodiscard]] constexpr double in_years(Seconds s) {
  return s.value() / (365.25 * 86400.0);
}

// ---- Scale helpers -------------------------------------------------------

[[nodiscard]] constexpr Meters micrometers(double um) {
  return Meters{um * 1e-6};
}
[[nodiscard]] constexpr Meters nanometers(double nm) { return Meters{nm * 1e-9}; }
[[nodiscard]] constexpr Meters millimeters(double mm) {
  return Meters{mm * 1e-3};
}
[[nodiscard]] constexpr AmpsPerM2 mega_amps_per_cm2(double ma) {
  // 1 MA/cm^2 = 1e6 A / 1e-4 m^2 = 1e10 A/m^2.
  return AmpsPerM2{ma * 1e10};
}
[[nodiscard]] constexpr Pascals megapascals(double mpa) {
  return Pascals{mpa * 1e6};
}

// ---- A few physically meaningful cross-type operations ------------------

[[nodiscard]] constexpr Volts operator*(Amps i, Ohms r) {
  return Volts{i.value() * r.value()};
}
[[nodiscard]] constexpr Volts operator*(Ohms r, Amps i) { return i * r; }
[[nodiscard]] constexpr Amps operator/(Volts v, Ohms r) {
  return Amps{v.value() / r.value()};
}
[[nodiscard]] constexpr Watts operator*(Volts v, Amps i) {
  return Watts{v.value() * i.value()};
}

}  // namespace dh
