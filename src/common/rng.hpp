// Deterministic random-number utilities.
//
// All stochastic models take an Rng& explicitly (no global state) so that
// every simulation, test, and benchmark is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dh {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>{lo, hi}(engine_);
  }

  /// Standard normal deviate scaled to (mean, sigma).
  [[nodiscard]] double normal(double mean, double sigma) {
    return std::normal_distribution<double>{mean, sigma}(engine_);
  }

  /// Lognormal deviate with the given log-domain parameters.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Exponential deviate with the given rate (lambda).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>{rate}(engine_);
  }

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Derive an independent child stream (useful for per-component RNGs).
  [[nodiscard]] Rng fork() {
    return Rng{static_cast<std::uint64_t>(engine_()) ^ 0xD1B54A32D192ED03ull};
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dh
