// Deterministic random-number utilities.
//
// All stochastic models take an Rng& explicitly (no global state) so that
// every simulation, test, and benchmark is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dh {

namespace detail {

/// splitmix64 finalizer: full-avalanche 64-bit mix (Steele et al.). Every
/// input bit affects every output bit, so nearby inputs (consecutive task
/// indices, consecutive raw engine draws) map to statistically independent
/// seeds.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The splitmix64 sequence increment (golden-ratio constant).
inline constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

}  // namespace detail

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>{lo, hi}(engine_);
  }

  /// Standard normal deviate scaled to (mean, sigma).
  [[nodiscard]] double normal(double mean, double sigma) {
    return std::normal_distribution<double>{mean, sigma}(engine_);
  }

  /// Lognormal deviate with the given log-domain parameters.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Exponential deviate with the given rate (lambda).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>{rate}(engine_);
  }

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Derive an independent child stream (useful for per-component RNGs).
  /// The child seed is a raw engine draw pushed through the splitmix64
  /// finalizer: consecutive forks land on unrelated points of the child
  /// seed space instead of the correlated raw-draw-XOR-constant scheme.
  [[nodiscard]] Rng fork() {
    return Rng{detail::mix64(engine_() + detail::kGolden)};
  }

  /// Seed of child stream `index` of `root_seed` — the index-th output of
  /// the splitmix64 sequence started at root_seed. Order-independent:
  /// stream i is the same no matter which streams were derived before it,
  /// which is what makes parallel Monte-Carlo populations bit-identical
  /// at any thread count.
  [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t root_seed,
                                                std::uint64_t index) {
    return detail::mix64(root_seed + (index + 1) * detail::kGolden);
  }

  /// Child stream `index` of `root_seed` (see stream_seed).
  [[nodiscard]] static Rng stream(std::uint64_t root_seed,
                                  std::uint64_t index) {
    return Rng{stream_seed(root_seed, index)};
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dh
